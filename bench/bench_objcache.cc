// The assembled-object cache tier, measured: skewed Get mixes over every
// storage model, cache enabled vs disabled, mem and mmap backends.
//
// The buffer pool already removes the *page I/O* cost of a hot working set;
// what remains on every Get is the transformation cost — region reads,
// flat-format decoding, per-attribute heap allocation — of re-assembling
// the NF² tuple. The object cache removes that second cost for hot
// objects, and this bench quantifies the effect:
//
//   * hot mix  — 90% of Gets hit a 10% hot set (the cache's home turf);
//   * cold mix — uniform Gets over a working set larger than the cache
//     budget (eviction-dominated; the honest lower bound).
//
// Every enabled row reports the assembly-hit ratio next to the page-hit
// ratio, the disabled row alongside it is the baseline, and the
// per-model speedup (enabled/disabled on the hot mix) is printed at the
// end — the tier pays for itself when that number clears 1, and on
// assembly-heavy models it should clear 2.
//
// Plain NSM has no by-ref access, so the cache is not applicable; its rows
// run the same mixes through GetByKey (uncached by design) and report an
// assembly-hit ratio of 0 — the model sweep stays complete without
// pretending NSM has an object cache to measure.
//
// Writes BENCH_objcache.json.
//
// Usage:
//   bench_objcache [--tiny] [--backend mem|mmap|both]
//                  [--min-hot-speedup X]
//
//   --tiny              CI-sized run (fewer objects, fewer ops)
//   --min-hot-speedup   fail unless the best hot-mix enabled/disabled
//                       speedup across models reaches X (off by default;
//                       timing gates belong on quiet machines)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "benchmark/generator.h"
#include "core/complex_object_store.h"
#include "util/random.h"

namespace starfish {
namespace {

using Clock = std::chrono::steady_clock;

struct BenchConfig {
  size_t n_objects = 400;
  uint64_t ops = 60000;
  int repetitions = 3;
};

struct RowResult {
  std::string name;
  std::string model;
  std::string backend;
  std::string mix;
  bool enabled = false;
  double ops_per_sec = 0;
  double ns_per_op = 0;
  double assembly_hit_ratio = 0;
  double page_hit_ratio = 0;
  uint64_t total_ops = 0;
};

void Fatal(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_objcache: %s: %s\n", what,
               st.ToString().c_str());
  std::exit(1);
}

/// The skewed access pattern: 90% of draws land in the first
/// `hot_count` refs, the rest are uniform over everything.
size_t DrawIndex(Rng* rng, size_t n, size_t hot_count, bool hot_mix) {
  if (!hot_mix) return rng->Uniform(n);
  if (rng->Uniform(10) != 0) return rng->Uniform(hot_count);
  return rng->Uniform(n);
}

RowResult RunMix(const bench::BenchmarkDatabase& db, StorageModelKind model,
                 VolumeKind backend, bool enabled, bool hot_mix,
                 const BenchConfig& config, const std::string& dir) {
  StoreOptions options;
  options.model = model;
  options.backend = backend;
  options.path = dir;
  options.objcache.enabled = enabled;
  // Cold mix: budget ~1/4 of the working set (floor 64 KiB), so eviction
  // stays hot. Hot mix: budget comfortably above the hot set. The
  // serialized size understates the assembled footprint (heap overheads),
  // so the cold ratio lands below 1/4 — which is the point.
  const auto working_set = static_cast<size_t>(
      db.stats().avg_object_bytes * static_cast<double>(db.objects().size()));
  options.objcache.capacity_bytes =
      hot_mix ? (64ull << 20) : std::max<size_t>(working_set / 4, 64 << 10);
  auto store_or = ComplexObjectStore::Open(db.schema(), options);
  if (!store_or.ok()) Fatal("open store", store_or.status());
  auto store = std::move(store_or).value();
  for (const auto& object : db.objects()) {
    Status st = store->Put(object.ref, object.tuple);
    if (!st.ok()) Fatal("put", st);
  }

  const bool by_ref = store->model()->SupportsGetByRef();
  const size_t n = db.objects().size();
  const size_t hot_count = std::max<size_t>(n / 10, 1);
  const Projection all = Projection::All(*db.schema());

  double best_seconds = 1e30;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    store->InvalidateObjectCache();
    store->ResetStats();
    Rng rng(0x0BC5 + static_cast<uint64_t>(rep));
    const auto start = Clock::now();
    for (uint64_t i = 0; i < config.ops; ++i) {
      const size_t idx = DrawIndex(&rng, n, hot_count, hot_mix);
      const auto& object = db.objects()[idx];
      auto got = by_ref ? store->Get(object.ref)
                        : store->GetByKey(object.key, all);
      if (!got.ok()) Fatal("get", got.status());
    }
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (elapsed.count() < best_seconds) best_seconds = elapsed.count();
  }

  const ObjCacheStats cache = store->objcache_stats();
  const BufferStats buffer = store->stats().buffer;
  RowResult r;
  r.model = ToString(model);
  r.backend = ToString(backend);
  r.mix = hot_mix ? "hot" : "cold";
  r.enabled = enabled;
  std::string model_slug = r.model;
  for (char& c : model_slug) {
    if (c == '-' || c == '+') c = '_';
  }
  r.name = "objcache_" + model_slug + "_" + r.backend + "_" + r.mix + "_" +
           (enabled ? "on" : "off");
  r.total_ops = config.ops;
  r.ops_per_sec = static_cast<double>(config.ops) / best_seconds;
  r.ns_per_op = best_seconds * 1e9 / static_cast<double>(config.ops);
  r.assembly_hit_ratio = cache.HitRatio();
  r.page_hit_ratio =
      buffer.fixes == 0
          ? 0.0
          : static_cast<double>(buffer.hits) / static_cast<double>(buffer.fixes);
  return r;
}

void WriteJson(const std::vector<RowResult>& results, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_objcache: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RowResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"model\": \"%s\", "
                 "\"backend\": \"%s\", \"mix\": \"%s\", \"enabled\": %s, "
                 "\"ops_per_sec\": %.0f, \"ns_per_op\": %.2f, "
                 "\"assembly_hit_ratio\": %.4f, \"page_hit_ratio\": %.4f, "
                 "\"total_ops\": %llu}%s\n",
                 r.name.c_str(), r.model.c_str(), r.backend.c_str(),
                 r.mix.c_str(), r.enabled ? "true" : "false", r.ops_per_sec,
                 r.ns_per_op, r.assembly_hit_ratio, r.page_hit_ratio,
                 static_cast<unsigned long long>(r.total_ops),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace starfish

int main(int argc, char** argv) {
  using namespace starfish;
  BenchConfig config;
  bool run_mem = true, run_mmap = true;
  double min_hot_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      config.n_objects = 64;
      config.ops = 4000;
      config.repetitions = 2;
    } else if (arg == "--backend" && i + 1 < argc) {
      const std::string backend = argv[++i];
      if (backend == "mem") {
        run_mmap = false;
      } else if (backend == "mmap") {
        run_mem = false;
      } else if (backend != "both") {
        std::fprintf(stderr, "unknown backend '%s' (mem|mmap|both)\n",
                     backend.c_str());
        return 2;
      }
    } else if (arg == "--min-hot-speedup" && i + 1 < argc) {
      min_hot_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--tiny] [--backend mem|mmap|both] "
                   "[--min-hot-speedup X]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::GeneratorConfig gen;
  gen.n_objects = config.n_objects;
  gen.seed = 4242;
  auto db_or = bench::BenchmarkDatabase::Generate(gen);
  if (!db_or.ok()) Fatal("generate database", db_or.status());
  const bench::BenchmarkDatabase db = std::move(db_or).value();

  std::printf("objects: %zu (avg %.0f bytes), ops/mix: %llu\n",
              db.objects().size(), db.stats().avg_object_bytes,
              static_cast<unsigned long long>(config.ops));
  std::printf("%-44s %12s %10s %9s %9s\n", "benchmark", "ops/sec", "ns/op",
              "asm-hit", "page-hit");

  const StorageModelKind kModels[] = {
      StorageModelKind::kDsm, StorageModelKind::kDasdbsDsm,
      StorageModelKind::kNsm, StorageModelKind::kNsmIndexed,
      StorageModelKind::kDasdbsNsm};
  std::vector<VolumeKind> backends;
  if (run_mem) backends.push_back(VolumeKind::kMem);
  if (run_mmap) backends.push_back(VolumeKind::kMmap);

  const std::string dir_base =
      (std::filesystem::temp_directory_path() /
       ("starfish_bench_objcache_" +
        std::to_string(static_cast<uint64_t>(
            Clock::now().time_since_epoch().count()))))
          .string();
  int dir_counter = 0;

  std::vector<RowResult> results;
  double best_speedup = 0.0;
  std::string best_row;
  for (StorageModelKind model : kModels) {
    for (VolumeKind backend : backends) {
      for (bool hot : {true, false}) {
        double per_enabled[2] = {0, 0};
        for (bool enabled : {false, true}) {
          std::string dir;
          if (backend == VolumeKind::kMmap) {
            dir = dir_base + "_" + std::to_string(dir_counter++);
            std::filesystem::remove_all(dir);
          }
          RowResult r =
              RunMix(db, model, backend, enabled, hot, config, dir);
          std::printf("%-44s %12.0f %10.2f %8.1f%% %8.1f%%\n",
                      r.name.c_str(), r.ops_per_sec, r.ns_per_op,
                      r.assembly_hit_ratio * 100, r.page_hit_ratio * 100);
          per_enabled[enabled ? 1 : 0] = r.ops_per_sec;
          results.push_back(std::move(r));
          if (!dir.empty()) std::filesystem::remove_all(dir);
        }
        if (hot && model != StorageModelKind::kNsm &&
            per_enabled[0] > 0.0) {
          const double speedup = per_enabled[1] / per_enabled[0];
          if (speedup > best_speedup) {
            best_speedup = speedup;
            best_row = results.back().name;
          }
        }
      }
    }
  }

  std::printf("\nbest hot-mix speedup (enabled/disabled): %.2fx (%s)\n",
              best_speedup, best_row.c_str());
  WriteJson(results, "BENCH_objcache.json");
  std::printf("wrote BENCH_objcache.json\n");

  if (min_hot_speedup > 0.0 && best_speedup < min_hot_speedup) {
    std::fprintf(stderr,
                 "bench_objcache: best hot-mix speedup %.2fx below required "
                 "%.2fx\n",
                 best_speedup, min_hot_speedup);
    return 1;
  }
  return 0;
}
