// Multi-threaded read-path benchmark of the sharded buffer pool.
//
// Measures hit-path and miss-path Fix throughput at 1/2/4/8 reader threads
// over one shared BufferManager in concurrent mode (sharded, per-shard
// mutexes), plus two single-thread overhead rows that isolate what the
// sharding refactor costs when nothing contends:
//
//   mt_fix_hit_cycle64_single_t1   default pool (1 shard, unlocked), the
//                                  exact loop shape of the hot-path bench's
//                                  buffer_fix_hit_cycle64 — diffable 1:1
//                                  against the committed hot-path reference
//                                  (the CI gate for refactor overhead).
//   mt_fix_hit_cycle64_locked_t1   same loop on a sharded pool: the row
//                                  shows the absolute cost of real mutexes
//                                  on a ~7 ns operation. An uncontended
//                                  lock/unlock pair is tens of ns, so this
//                                  is gated with its own generous bound —
//                                  it exists to catch *structural*
//                                  regressions (a global lock, O(shards)
//                                  work per fix), not to pretend locks are
//                                  free.
//
// --backend direct (PR 8) replaces the page-cache rows with the device
// rows that motivated the per-thread-ring rework: 1/2/4/8 threads each
// keep a pipeline of chained 8-page reads in flight through
// SubmitReadChained/CompleteRead, once with per-thread io_uring rings and
// once with the pre-rework single-ring-mutex baseline
// (DirectVolumeOptions::RingMode::kShared). The aggregate pages/sec of
// per-thread at >= 4 threads against the shared-mutex rows is the
// acceptance number of the rework. Skip-tolerant: on a filesystem without
// O_DIRECT the binary records "direct_skipped": true and exits 0.
//
// Writes BENCH_mt_read.json (BENCH_mt_read_mmap.json for --backend mmap,
// BENCH_mt_read_direct.json for --backend direct).
//
// Usage:
//   bench_mt_read [--backend mem|mmap|direct]
//                 [--compare-hotpath REF.json] [--max-regress PCT]
//                 [--max-locked-overhead PCT] [--min-speedup X]
//
//   --compare-hotpath      gate the single-thread rows against the hot-path
//                          reference's buffer_fix_hit_cycle64 entry:
//                          the unlocked row at --max-regress (default 25),
//                          the locked row at --max-locked-overhead
//                          (default 700).
//   --min-speedup          fail unless hit-path ops/sec at 8 threads is at
//                          least X times the 1-thread row. Off by default:
//                          speedup is a property of the machine's core
//                          count, so CI asserts it only where cores exist.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/generator.h"
#include "buffer/buffer_manager.h"
#include "core/complex_object_store.h"
#include "disk/direct_volume.h"
#include "disk/volume.h"
#include "util/aligned_buffer.h"
#include "util/random.h"

namespace starfish {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kRepetitions = 5;
constexpr uint32_t kThreadCounts[] = {1, 2, 4, 8};
constexpr uint32_t kShards = 64;

VolumeKind g_backend = VolumeKind::kMem;
int g_volume_counter = 0;

void Fatal(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_mt_read: %s: %s\n", what, st.ToString().c_str());
  std::exit(1);
}

/// A fresh volume of the selected backend; mmap volumes are throwaway
/// directories removed by the wrapper's destructor.
struct ScopedVolume {
  std::unique_ptr<Volume> volume;
  std::string dir;

  ScopedVolume() = default;
  ScopedVolume(ScopedVolume&& other) noexcept
      : volume(std::move(other.volume)), dir(std::move(other.dir)) {
    other.dir.clear();
  }
  ScopedVolume& operator=(ScopedVolume&&) = delete;

  ~ScopedVolume() {
    volume.reset();  // unmap before removing the files
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
  Volume* operator->() { return volume.get(); }
  Volume& operator*() { return *volume; }
};

ScopedVolume MakeDisk(DiskOptions options = {}) {
  ScopedVolume scoped;
  if (g_backend == VolumeKind::kMmap) {
    static const uint64_t token =
        static_cast<uint64_t>(Clock::now().time_since_epoch().count());
    scoped.dir = (std::filesystem::temp_directory_path() /
                  ("starfish_bench_mt_" + std::to_string(token) + "_" +
                   std::to_string(g_volume_counter++)))
                     .string();
    std::filesystem::remove_all(scoped.dir);
  }
  auto volume_or = CreateVolume(g_backend, options, scoped.dir);
  if (!volume_or.ok()) Fatal("create volume", volume_or.status());
  scoped.volume = std::move(volume_or).value();
  return scoped;
}

struct BenchResult {
  std::string name;
  uint32_t threads = 1;
  double ops_per_sec = 0;  ///< aggregate over all threads
  double ns_per_op = 0;    ///< wall ns per op (aggregate)
  uint64_t total_ops = 0;
  /// Object-cache hit ratio of the run — meaningful for the store-level
  /// mt_get_objcache rows, 0 for the page-level rows (no cache in play).
  double assembly_hit_ratio = 0;
};

/// Runs `body(thread_index)` on `threads` threads behind a start barrier and
/// returns the wall seconds of the slowest repetition's best run.
template <typename Body>
double TimedThreads(uint32_t threads, Body&& body) {
  double best_seconds = 1e30;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    std::atomic<uint32_t> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        body(t);
      });
    }
    while (ready.load() != threads) {
    }
    const auto start = Clock::now();
    go.store(true, std::memory_order_release);
    for (auto& th : pool) th.join();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (elapsed.count() < best_seconds) best_seconds = elapsed.count();
  }
  return best_seconds;
}

// Hit path: a shared working set fully resident in a sharded pool; every
// Fix is a hit. Near-linear scaling = shard mutexes don't serialize reads.
BenchResult BenchHit(uint32_t threads) {
  constexpr uint32_t kPages = 1024;
  constexpr uint64_t kOpsPerThread = 1 << 19;
  auto disk = MakeDisk();
  const PageId first = disk->AllocateRun(kPages).value();
  BufferOptions options;
  options.frame_count = 2 * kPages;  // no eviction on the hit path
  options.shard_count = kShards;
  BufferManager bm(&*disk, options);
  for (uint32_t i = 0; i < kPages; ++i) {
    auto g = bm.Fix(first + i);
    if (!g.ok()) Fatal("warm-up fix", g.status());
  }

  const double seconds = TimedThreads(threads, [&](uint32_t t) {
    // Per-thread deterministic RNG: threads walk the shared working set in
    // different reproducible orders.
    Rng rng(0x1234567 + t * 0x9E3779B9ull);
    for (uint64_t i = 0; i < kOpsPerThread; ++i) {
      const PageId id = first + static_cast<PageId>(rng.Uniform(kPages));
      auto g = bm.Fix(id);
      if (!g.ok()) Fatal("fix", g.status());
    }
  });

  BenchResult r;
  r.name = "mt_fix_hit_t" + std::to_string(threads);
  r.threads = threads;
  r.total_ops = kOpsPerThread * threads;
  r.ops_per_sec = static_cast<double>(r.total_ops) / seconds;
  r.ns_per_op = seconds * 1e9 / static_cast<double>(r.total_ops);
  return r;
}

// Miss path: the working set is many times the pool, so nearly every Fix
// reads a page from the volume and evicts a victim, all concurrently.
BenchResult BenchMiss(uint32_t threads) {
  constexpr uint32_t kPages = 8192;
  constexpr uint32_t kFrames = 512;
  constexpr uint64_t kOpsPerThread = 1 << 15;
  auto disk = MakeDisk();
  const PageId first = disk->AllocateRun(kPages).value();
  BufferOptions options;
  options.frame_count = kFrames;
  options.shard_count = kShards;
  BufferManager bm(&*disk, options);

  const double seconds = TimedThreads(threads, [&](uint32_t t) {
    Rng rng(0xFEDCBA9 + t * 0x9E3779B9ull);
    for (uint64_t i = 0; i < kOpsPerThread; ++i) {
      const PageId id = first + static_cast<PageId>(rng.Uniform(kPages));
      auto g = bm.Fix(id);
      if (!g.ok()) Fatal("fix", g.status());
    }
  });

  BenchResult r;
  r.name = "mt_fix_miss_t" + std::to_string(threads);
  r.threads = threads;
  r.total_ops = kOpsPerThread * threads;
  r.ops_per_sec = static_cast<double>(r.total_ops) / seconds;
  r.ns_per_op = seconds * 1e9 / static_cast<double>(r.total_ops);
  return r;
}

// Single-thread overhead rows: the exact loop of the hot-path bench's
// buffer_fix_hit_cycle64, on (a) the default unlocked pool — sharding
// refactor overhead, gated tightly — and (b) a sharded locked pool — mutex
// cost, gated loosely.
BenchResult BenchCycle64SingleThread(bool locked) {
  constexpr uint64_t kOps = 1 << 21;
  auto disk = MakeDisk();
  const PageId first = disk->AllocateRun(64).value();
  BufferOptions options;
  options.frame_count = 128;
  if (locked) options.shard_count = kShards;
  BufferManager bm(&*disk, options);
  for (uint32_t i = 0; i < 64; ++i) {
    auto g = bm.Fix(first + i);
    if (!g.ok()) Fatal("warm-up fix", g.status());
  }

  const double seconds = TimedThreads(1, [&](uint32_t) {
    for (uint64_t i = 0; i < kOps; ++i) {
      auto g = bm.Fix(first + static_cast<PageId>(i & 63));
      if (!g.ok()) Fatal("fix", g.status());
    }
  });

  BenchResult r;
  r.name = locked ? "mt_fix_hit_cycle64_locked_t1"
                  : "mt_fix_hit_cycle64_single_t1";
  r.threads = 1;
  r.total_ops = kOps;
  r.ops_per_sec = static_cast<double>(kOps) / seconds;
  r.ns_per_op = seconds * 1e9 / static_cast<double>(kOps);
  return r;
}

// Store-level rows: skewed Gets (90% on a 10% hot set) through concurrent
// ReadSessions over one sharded-buffer store with the assembled-object
// cache on — the tier the page-level rows sit underneath. Scaling here
// means the object-cache shards don't serialize readers; the JSON row
// carries the run's assembly-hit ratio next to the page-level rows'
// numbers.
BenchResult BenchStoreGet(uint32_t threads,
                          const bench::BenchmarkDatabase& db) {
  constexpr uint64_t kOpsPerThread = 1 << 15;
  std::string dir;
  if (g_backend == VolumeKind::kMmap) {
    dir = (std::filesystem::temp_directory_path() /
           ("starfish_bench_mt_store_" + std::to_string(g_volume_counter++)))
              .string();
    std::filesystem::remove_all(dir);
  }
  StoreOptions options;
  options.model = StorageModelKind::kDasdbsNsm;
  options.backend = g_backend;
  options.path = dir;
  options.buffer_shards = kShards;
  options.objcache.enabled = true;
  auto store_or = ComplexObjectStore::Open(db.schema(), options);
  if (!store_or.ok()) Fatal("open store", store_or.status());
  auto store = std::move(store_or).value();
  for (const auto& object : db.objects()) {
    Status st = store->Put(object.ref, object.tuple);
    if (!st.ok()) Fatal("put", st);
  }
  const size_t n = db.objects().size();
  const size_t hot = n / 10 == 0 ? 1 : n / 10;
  store->ResetStats();

  const double seconds = TimedThreads(threads, [&](uint32_t t) {
    ReadSession session = store->OpenReadSession();
    Rng rng(0x57042E + t * 0x9E3779B9ull);
    for (uint64_t i = 0; i < kOpsPerThread; ++i) {
      const size_t idx = rng.Uniform(10) != 0
                             ? static_cast<size_t>(rng.Uniform(hot))
                             : static_cast<size_t>(rng.Uniform(n));
      auto got = session.Get(db.objects()[idx].ref);
      if (!got.ok()) Fatal("get", got.status());
    }
  });

  BenchResult r;
  r.name = "mt_get_objcache_t" + std::to_string(threads);
  r.threads = threads;
  r.total_ops = kOpsPerThread * threads;
  r.ops_per_sec = static_cast<double>(r.total_ops) / seconds;
  r.ns_per_op = seconds * 1e9 / static_cast<double>(r.total_ops);
  r.assembly_hit_ratio = store->objcache_stats().HitRatio();
  store.reset();  // unmap before removing the directory
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return r;
}

// Direct-backend ring rows: raw device read throughput through the async
// submit/complete split, no buffer pool in the way. Each thread pipelines
// kInFlight chained 8-page batches (the DASDBS fetch shape) over its own
// ring — or over the one mutex-serialized ring in the kShared baseline.
// The per-thread rows must pull ahead of the shared rows as threads grow:
// that gap is what the rework bought.
BenchResult BenchDirectChained(uint32_t threads, bool shared_ring,
                               const std::string& dir) {
  constexpr uint32_t kObjPages = 8;
  constexpr uint32_t kInFlight = 4;
  constexpr uint32_t kBatchesPerThread = 512;  // 16 MiB read per thread

  DirectVolumeOptions ring;
  ring.ring_mode = shared_ring ? DirectVolumeOptions::RingMode::kShared
                               : DirectVolumeOptions::RingMode::kPerThread;
  auto disk_or = DirectVolume::Open(dir, DiskOptions{4096, 4u << 20}, ring);
  if (!disk_or.ok()) Fatal("reopen direct volume", disk_or.status());
  auto disk = std::move(disk_or).value();
  const uint32_t page = disk->page_size();
  const uint64_t n_objects = disk->page_count() / kObjPages;

  const double seconds = TimedThreads(threads, [&](uint32_t t) {
    AlignedBuffer staging;
    if (!staging.Reserve(
            static_cast<size_t>(kInFlight) * kObjPages * page,
            std::max<size_t>(4096, disk->io_buffer_alignment()))) {
      Fatal("staging", Status::ResourceExhausted("staging alloc"));
    }
    disk->RegisterIoMemory(staging.data(),
                           static_cast<size_t>(kInFlight) * kObjPages * page);
    Rng rng(0xD10C0DE + t * 0x9E3779B9ull);
    std::vector<PageId> ids(kObjPages);
    std::vector<char*> outs(kObjPages);
    uint64_t tickets[kInFlight] = {};
    bool live[kInFlight] = {};
    for (uint32_t b = 0; b < kBatchesPerThread + kInFlight; ++b) {
      const uint32_t slot = b % kInFlight;
      if (live[slot]) {
        if (auto st = disk->CompleteRead(tickets[slot]); !st.ok()) {
          Fatal("complete", st);
        }
        live[slot] = false;
      }
      if (b >= kBatchesPerThread) continue;  // drain phase
      const PageId root =
          static_cast<PageId>(rng.Uniform(n_objects) * kObjPages);
      char* base =
          staging.data() + static_cast<size_t>(slot) * kObjPages * page;
      for (uint32_t p = 0; p < kObjPages; ++p) {
        ids[p] = root + p;
        outs[p] = base + static_cast<size_t>(p) * page;
      }
      auto ticket_or = disk->SubmitReadChained(ids, outs);
      if (!ticket_or.ok()) Fatal("submit", ticket_or.status());
      tickets[slot] = ticket_or.value();
      live[slot] = true;
    }
    disk->UnregisterIoMemory(staging.data());
  });

  BenchResult r;
  r.name = std::string("mt_dio_chained_") +
           (shared_ring ? "shared" : "perthread") + "_t" +
           std::to_string(threads);
  r.threads = threads;
  r.total_ops = static_cast<uint64_t>(threads) * kBatchesPerThread * kObjPages;
  r.ops_per_sec = static_cast<double>(r.total_ops) / seconds;  // pages/sec
  r.ns_per_op = seconds * 1e9 / static_cast<double>(r.total_ops);
  return r;
}

void WriteJson(const std::vector<BenchResult>& results, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_mt_read: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    // ns_per_op stays on the row's line: the CI gate and
    // --compare-hotpath parse rows by line.
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"threads\": %u, "
                 "\"ops_per_sec\": %.0f, \"ns_per_op\": %.2f, "
                 "\"assembly_hit_ratio\": %.4f, \"total_ops\": %llu}%s\n",
                 r.name.c_str(), r.threads, r.ops_per_sec, r.ns_per_op,
                 r.assembly_hit_ratio,
                 static_cast<unsigned long long>(r.total_ops),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// ns_per_op of one benchmark in a JSON file this binary or
/// bench_hotpath_buffer writes; exits if absent.
double ReadReferenceRow(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_mt_read: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t name_key = line.find("\"name\": \"" + name + "\"");
    const size_t ns_key = line.find("\"ns_per_op\": ");
    if (name_key == std::string::npos || ns_key == std::string::npos) continue;
    return std::atof(line.c_str() + ns_key + std::strlen("\"ns_per_op\": "));
  }
  std::fprintf(stderr, "bench_mt_read: no '%s' row in %s\n", name.c_str(),
               path.c_str());
  std::exit(1);
}

const BenchResult& FindRow(const std::vector<BenchResult>& results,
                           const std::string& name) {
  for (const BenchResult& r : results) {
    if (r.name == name) return r;
  }
  std::fprintf(stderr, "bench_mt_read: missing own row %s\n", name.c_str());
  std::exit(1);
}

}  // namespace
}  // namespace starfish

int main(int argc, char** argv) {
  using namespace starfish;
  std::string compare_hotpath;
  double max_regress_pct = 25.0;
  // Generous: an uncontended pthread lock/unlock pair alone runs 20-40 ns
  // on small VMs against a ~6-8 ns reference row. The bound exists to catch
  // an accidental global lock or a lock on the unlocked path, which shows
  // up at far more than one mutex round-trip per fix.
  double max_locked_overhead_pct = 700.0;
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--backend" && i + 1 < argc) {
      const std::string backend = argv[++i];
      if (backend == "mem") {
        g_backend = VolumeKind::kMem;
      } else if (backend == "mmap") {
        g_backend = VolumeKind::kMmap;
      } else if (backend == "direct") {
        g_backend = VolumeKind::kDirect;
      } else {
        std::fprintf(stderr, "unknown backend '%s' (mem|mmap|direct)\n",
                     backend.c_str());
        return 2;
      }
    } else if (arg == "--compare-hotpath" && i + 1 < argc) {
      compare_hotpath = argv[++i];
    } else if (arg == "--max-regress" && i + 1 < argc) {
      max_regress_pct = std::atof(argv[++i]);
    } else if (arg == "--max-locked-overhead" && i + 1 < argc) {
      max_locked_overhead_pct = std::atof(argv[++i]);
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--backend mem|mmap] [--compare-hotpath "
                   "REF.json] [--max-regress PCT] [--max-locked-overhead "
                   "PCT] [--min-speedup X]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("backend: %s, hardware threads: %u, pool shards: %u\n",
              ToString(g_backend).c_str(),
              std::thread::hardware_concurrency(), kShards);

  if (g_backend == VolumeKind::kDirect) {
    // Device rows only: per-thread rings vs the single-ring-mutex
    // baseline, raw SubmitReadChained pipelines, no buffer pool. The
    // page-cache rows of the other backends would just measure memcpy.
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("starfish_bench_mt_dio_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);
    constexpr uint32_t kPages = 16384;  // 64 MiB at 4 KiB pages
    {
      auto disk_or = DirectVolume::Open(dir, DiskOptions{4096, 4u << 20});
      if (!disk_or.ok()) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        if (disk_or.status().IsNotSupported()) {
          std::printf("direct backend skipped: %s\n",
                      disk_or.status().ToString().c_str());
          std::ofstream out("BENCH_mt_read_direct.json");
          out << "{\n  \"benchmarks\": [],\n  \"direct_skipped\": true\n}\n";
          std::printf("wrote BENCH_mt_read_direct.json\n");
          return 0;
        }
        Fatal("open direct volume", disk_or.status());
      }
      auto disk = std::move(disk_or).value();
      if (auto id = disk->AllocateRun(kPages); !id.ok()) {
        Fatal("allocate", id.status());
      }
      std::vector<char> chunk(64 * 4096);
      for (uint32_t first = 0; first < kPages; first += 64) {
        std::memset(chunk.data(), static_cast<int>('A' + first % 23),
                    chunk.size());
        if (auto st = disk->WriteRun(first, 64, chunk.data()); !st.ok()) {
          Fatal("load", st);
        }
      }
      if (auto st = disk->Sync(); !st.ok()) Fatal("sync", st);
      std::printf("ring model: %s\n",
                  disk->io_uring_active() ? "io_uring" : "pread fallback");
    }

    std::vector<BenchResult> rows;
    for (const bool shared : {true, false}) {
      for (uint32_t t : kThreadCounts) {
        rows.push_back(BenchDirectChained(t, shared, dir));
      }
    }
    {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }

    std::printf("%-30s %8s %14s %12s\n", "benchmark", "threads",
                "pages/sec", "ns/page");
    for (const BenchResult& r : rows) {
      std::printf("%-30s %8u %14.0f %12.2f\n", r.name.c_str(), r.threads,
                  r.ops_per_sec, r.ns_per_op);
    }
    const double shared4 =
        FindRow(rows, "mt_dio_chained_shared_t4").ops_per_sec;
    const double perthread4 =
        FindRow(rows, "mt_dio_chained_perthread_t4").ops_per_sec;
    const double shared1 =
        FindRow(rows, "mt_dio_chained_shared_t1").ops_per_sec;
    const double perthread8 =
        FindRow(rows, "mt_dio_chained_perthread_t8").ops_per_sec;
    std::printf("\nper-thread vs shared-mutex at 4 threads: %.2fx\n",
                perthread4 / shared4);
    std::printf("per-thread t8 vs shared-mutex t1 baseline: %.2fx\n",
                perthread8 / shared1);
    WriteJson(rows, "BENCH_mt_read_direct.json");
    std::printf("wrote BENCH_mt_read_direct.json\n");
    int failures = 0;
    if (min_speedup > 0.0 && perthread4 / shared4 < min_speedup) {
      std::fprintf(stderr,
                   "bench_mt_read: per-thread-ring speedup %.2fx at 4 "
                   "threads below required %.2fx\n",
                   perthread4 / shared4, min_speedup);
      ++failures;
    }
    return failures > 0 ? 1 : 0;
  }

  std::vector<BenchResult> results;
  results.push_back(BenchCycle64SingleThread(/*locked=*/false));
  results.push_back(BenchCycle64SingleThread(/*locked=*/true));
  for (uint32_t t : kThreadCounts) results.push_back(BenchHit(t));
  for (uint32_t t : kThreadCounts) results.push_back(BenchMiss(t));
  {
    bench::GeneratorConfig gen;
    gen.n_objects = 256;
    gen.seed = 4242;
    auto db_or = bench::BenchmarkDatabase::Generate(gen);
    if (!db_or.ok()) Fatal("generate database", db_or.status());
    const bench::BenchmarkDatabase db = std::move(db_or).value();
    for (uint32_t t : kThreadCounts) results.push_back(BenchStoreGet(t, db));
  }

  std::printf("%-30s %8s %14s %12s %9s\n", "benchmark", "threads", "ops/sec",
              "ns/op", "asm-hit");
  for (const BenchResult& r : results) {
    std::printf("%-30s %8u %14.0f %12.2f %8.1f%%\n", r.name.c_str(),
                r.threads, r.ops_per_sec, r.ns_per_op,
                r.assembly_hit_ratio * 100);
  }

  const double hit1 = FindRow(results, "mt_fix_hit_t1").ops_per_sec;
  const double hit8 = FindRow(results, "mt_fix_hit_t8").ops_per_sec;
  const double miss1 = FindRow(results, "mt_fix_miss_t1").ops_per_sec;
  const double miss8 = FindRow(results, "mt_fix_miss_t8").ops_per_sec;
  std::printf("\nhit-path speedup  t8/t1: %.2fx\n", hit8 / hit1);
  std::printf("miss-path speedup t8/t1: %.2fx\n", miss8 / miss1);
  if (std::thread::hardware_concurrency() < 4) {
    std::printf(
        "note: %u hardware thread(s) — parallel speedup is bounded by the "
        "machine, not the pool.\n",
        std::thread::hardware_concurrency());
  }

  const char* json = g_backend == VolumeKind::kMem ? "BENCH_mt_read.json"
                                                   : "BENCH_mt_read_mmap.json";
  WriteJson(results, json);
  std::printf("\nwrote %s\n", json);

  int failures = 0;
  if (!compare_hotpath.empty()) {
    const double ref =
        ReadReferenceRow(compare_hotpath, "buffer_fix_hit_cycle64");
    struct GateRow {
      const char* name;
      double bound_pct;
    } gates[] = {
        {"mt_fix_hit_cycle64_single_t1", max_regress_pct},
        {"mt_fix_hit_cycle64_locked_t1", max_locked_overhead_pct},
    };
    std::printf("\n1-thread overhead gate vs %s (buffer_fix_hit_cycle64 = "
                "%.2f ns/op)\n",
                compare_hotpath.c_str(), ref);
    for (const GateRow& gate : gates) {
      const BenchResult& row = FindRow(results, gate.name);
      const double delta_pct = (row.ns_per_op - ref) / ref * 100.0;
      const bool fail = delta_pct > gate.bound_pct;
      std::printf("%-30s %12.2f %+8.1f%% (bound +%.0f%%)%s\n",
                  gate.name, row.ns_per_op, delta_pct, gate.bound_pct,
                  fail ? "  <-- REGRESSION" : "");
      if (fail) ++failures;
    }
  }
  if (min_speedup > 0.0 && hit8 / hit1 < min_speedup) {
    std::fprintf(stderr,
                 "bench_mt_read: hit-path speedup %.2fx below required "
                 "%.2fx\n",
                 hit8 / hit1, min_speedup);
    ++failures;
  }
  return failures > 0 ? 1 : 0;
}
