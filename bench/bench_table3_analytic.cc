// Reproduces Table 3: "Estimates of the number of page I/Os" — the
// analytical best-case estimates for every query and storage model,
// including the primed (no-waste) variants and NSM+index.

#include <cstdio>

#include "cost/analytical_model.h"
#include "harness.h"
#include "models/dasdbs_nsm_model.h"
#include "models/direct_model.h"
#include "models/nsm_model.h"

namespace starfish::bench {
namespace {

void AddRow(TablePrinter* table, const std::string& label,
            const cost::QueryEstimates& e) {
  auto cell = [](double v) { return v < 0 ? std::string("-") : Cell(v); };
  table->AddRow({label, cell(e.q1a), cell(e.q1b), cell(e.q1c), cell(e.q2a),
                 cell(e.q2b), cell(e.q3a), cell(e.q3b)});
}

int Run() {
  PrintBanner("Table 3",
              "Analytical estimates of page I/Os per query: query 1 per "
              "object, queries 2/3 per loop; unbounded cache (best case); "
              "primed rows (') assume no wasted disk space.");

  auto db = BenchmarkDatabase::Generate(GeneratorConfig{});
  if (!db.ok()) return 1;
  auto workload = DeriveWorkloadParams(*db, /*loops=*/300, 2012);
  if (!workload.ok()) return 1;

  // Calibrate the relation parameters from loaded models (our Table 2).
  cost::RelationParams direct_rel;
  {
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = db->schema();
    auto model = DirectModel::Create(&engine, mc, DirectModelOptions{});
    if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
    auto rel = CalibrateDirect(model->get(), *db);
    if (!rel.ok()) return 1;
    direct_rel = rel.value();
  }
  std::vector<cost::RelationParams> nsm_rels;
  cost::NormalizedLayout layout;
  {
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = db->schema();
    auto model = NsmModel::Create(&engine, mc, NsmModelOptions{});
    if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
    auto rels = CalibrateNsm(model->get(), *db);
    if (!rels.ok()) return 1;
    nsm_rels = rels.value();
    layout = DeriveNormalizedLayout(model->get()->decomposition());
  }
  std::vector<cost::RelationParams> dnsm_rels;
  {
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = db->schema();
    auto model = DasdbsNsmModel::Create(&engine, mc);
    if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
    auto rels = CalibrateDasdbsNsm(model->get(), *db);
    if (!rels.ok()) return 1;
    dnsm_rels = rels.value();
  }

  auto strip_all = [&](const std::vector<cost::RelationParams>& rels) {
    std::vector<cost::RelationParams> out;
    out.reserve(rels.size());
    for (const auto& rel : rels) out.push_back(cost::StripWaste(rel, 2012));
    return out;
  };

  TablePrinter table({"MODEL", "1a (A)", "1b (B)", "1c (C)", "2a (A)",
                      "2b (B)", "3a (A)", "3b (B)"});
  AddRow(&table, "DSM", cost::EstimateDsm(direct_rel, *workload));
  AddRow(&table, "DSM'",
         cost::EstimateDsm(cost::StripWaste(direct_rel, 2012), *workload));
  AddRow(&table, "DASDBS-DSM", cost::EstimateDasdbsDsm(direct_rel, *workload));
  AddRow(&table, "DASDBS-DSM'",
         cost::EstimateDasdbsDsm(cost::StripWaste(direct_rel, 2012), *workload));
  table.AddSeparator();
  AddRow(&table, "NSM",
         cost::EstimateNsm(nsm_rels, layout, *workload, /*with_index=*/false));
  AddRow(&table, "NSM+index",
         cost::EstimateNsm(nsm_rels, layout, *workload, /*with_index=*/true));
  AddRow(&table, "DASDBS-NSM",
         cost::EstimateDasdbsNsm(dnsm_rels, layout, *workload));
  AddRow(&table, "DASDBS-NSM'",
         cost::EstimateDasdbsNsm(strip_all(dnsm_rels), layout, *workload));
  table.Print();

  std::printf(
      "\nPaper anchors (legible cells of its Table 3):\n"
      "  DSM:        1a 4.00 | 1b 6000 | 1c 4.00 | 2a 86.9 | 2b 19.7 | "
      "3a 154 | 3b 39.1\n"
      "  DASDBS-DSM: 1a 3.00 | 1b 4500 | 1c 3.00\n"
      "  NSM+index:  1a 5.96 | 1b 121  | 1c 2.47 | 2a 23.2\n"
      "  DASDBS-NSM': 1a 5.00 | 1b 120 | 1c 2.55 | 2b ~2.25 | 3b ~2.39\n"
      "Differences track our slightly leaner record format (Table 2).\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
