#pragma once

#include <optional>
#include <string>
#include <vector>

#include "benchmark/calibration.h"
#include "benchmark/runner.h"
#include "util/table_printer.h"

/// \file harness.h
/// Shared plumbing for the table/figure reproduction binaries.
///
/// Every `bench_table*` / `bench_fig*` binary reproduces one experiment of
/// the paper and prints the same rows/series the paper reports, plus the
/// paper's legible anchor values for side-by-side comparison. All binaries
/// run without arguments in a few seconds.

namespace starfish::bench {

/// Prints the experiment banner.
void PrintBanner(const std::string& experiment, const std::string& what);

/// The paper's measurement configuration: 1500 objects, 1200-frame buffer,
/// 300 loops.
RunnerOptions PaperRunnerOptions();

/// Formats a measurement value the way the paper prints them, "-" for n/a.
std::string Cell(double value);
std::string Cell(const std::optional<QueryMeasurement>& m,
                 double (QueryMeasurement::*metric)() const);

/// Row label per model, in the paper's table order.
std::string ModelLabel(StorageModelKind kind);

/// Runs the full suite for all five models over one database.
Result<std::vector<ModelRunResult>> RunAllModels(const BenchmarkDatabase& db,
                                                 const BufferOptions& buffer,
                                                 const QueryConfig& query);

/// Prints one metric (pages / calls / fixes) of a full run as the paper's
/// 7-query table.
void PrintQueryTable(const std::vector<ModelRunResult>& results,
                     double (QueryMeasurement::*metric)() const);

}  // namespace starfish::bench
