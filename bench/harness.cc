#include "harness.h"

#include <cstdio>

namespace starfish::bench {

void PrintBanner(const std::string& experiment, const std::string& what) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("Paper: Teeuw, Rich, Scholl, Blanken — \"An Evaluation of "
              "Physical Disk I/Os for Complex Object Processing\", ICDE "
              "1993.\n\n");
}

RunnerOptions PaperRunnerOptions() {
  RunnerOptions options;
  options.generator.n_objects = 1500;
  options.buffer.frame_count = 1200;
  options.query.loops = 300;
  options.query.q1a_samples = 50;
  options.query.q2a_samples = 20;
  return options;
}

std::string Cell(double value) {
  return TablePrinter::FormatValue(value);
}

std::string Cell(const std::optional<QueryMeasurement>& m,
                 double (QueryMeasurement::*metric)() const) {
  if (!m.has_value()) return "-";
  return Cell(((*m).*metric)());
}

std::string ModelLabel(StorageModelKind kind) { return ToString(kind); }

Result<std::vector<ModelRunResult>> RunAllModels(const BenchmarkDatabase& db,
                                                 const BufferOptions& buffer,
                                                 const QueryConfig& query) {
  std::vector<ModelRunResult> results;
  for (StorageModelKind kind : AllStorageModelKinds()) {
    STARFISH_ASSIGN_OR_RETURN(ModelRunResult result,
                              BenchmarkRunner::RunOne(kind, db, buffer, query));
    results.push_back(std::move(result));
  }
  return results;
}

void PrintQueryTable(const std::vector<ModelRunResult>& results,
                     double (QueryMeasurement::*metric)() const) {
  TablePrinter table({"STORAGE MODEL", "1a (A)", "1b (B)", "1c (C)", "2a (A)",
                      "2b (B)", "3a (A)", "3b (B)"});
  for (const ModelRunResult& r : results) {
    const QuerySuiteResults& q = r.queries;
    table.AddRow({ModelLabel(r.kind), Cell(q.q1a, metric),
                  Cell((q.q1b.*metric)()), Cell((q.q1c.*metric)()),
                  Cell((q.q2a.*metric)()), Cell((q.q2b.*metric)()),
                  Cell((q.q3a.*metric)()), Cell((q.q3b.*metric)())});
  }
  table.Print();
}

}  // namespace starfish::bench
