// Microbenchmarks of the substrate (google-benchmark): slotted-page ops,
// buffer fixes, complex-record reads, serializer, B+-tree and the Yao
// formula. These measure the simulator itself, not the paper's metrics —
// useful when extending the library.

#include <benchmark/benchmark.h>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"
#include "cost/formulas.h"
#include "index/bplus_tree.h"
#include "nf2/serializer.h"
#include "storage/complex_record.h"
#include "storage/storage_engine.h"
#include "util/random.h"

namespace starfish {
namespace {

void BM_SlottedPageInsert(benchmark::State& state) {
  std::vector<char> data(kDefaultPageSize);
  const std::string record(100, 'x');
  for (auto _ : state) {
    SlottedPage page(data.data(), kDefaultPageSize);
    page.Init(0, PageType::kSlotted);
    for (int i = 0; i < 19; ++i) {
      benchmark::DoNotOptimize(page.Insert(record));
    }
  }
  state.SetItemsProcessed(state.iterations() * 19);
}
BENCHMARK(BM_SlottedPageInsert);

void BM_SlottedPageRead(benchmark::State& state) {
  std::vector<char> data(kDefaultPageSize);
  SlottedPage page(data.data(), kDefaultPageSize);
  page.Init(0, PageType::kSlotted);
  for (int i = 0; i < 19; ++i) (void)page.Insert(std::string(100, 'x'));
  for (auto _ : state) {
    for (uint16_t s = 0; s < 19; ++s) {
      benchmark::DoNotOptimize(page.Read(s));
    }
  }
  state.SetItemsProcessed(state.iterations() * 19);
}
BENCHMARK(BM_SlottedPageRead);

void BM_BufferFixHit(benchmark::State& state) {
  StorageEngine engine;
  auto segment = engine.CreateSegment("s").value();
  const PageId page = segment->AllocatePage(PageType::kSlotted).value();
  for (auto _ : state) {
    auto guard = engine.buffer()->Fix(page);
    benchmark::DoNotOptimize(guard);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferFixHit);

void BM_BufferFixMissEvict(benchmark::State& state) {
  StorageEngineOptions options;
  options.buffer.frame_count = 64;
  StorageEngine engine(options);
  auto segment = engine.CreateSegment("s").value();
  (void)segment->AllocateRun(512, PageType::kSlotted);
  (void)engine.Flush();
  PageId next = 0;
  for (auto _ : state) {
    auto guard = engine.buffer()->Fix(next % 512);
    benchmark::DoNotOptimize(guard);
    next += 7;  // stride larger than the pool: mostly misses
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferFixMissEvict);

void BM_SerializeStation(benchmark::State& state) {
  bench::GeneratorConfig config;
  config.n_objects = 64;
  auto db = bench::BenchmarkDatabase::Generate(config).value();
  ObjectSerializer serializer(db.schema());
  size_t i = 0;
  for (auto _ : state) {
    auto regions = serializer.ToRegions(db.objects()[i++ % 64].tuple);
    benchmark::DoNotOptimize(regions);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SerializeStation);

void BM_DeserializeStation(benchmark::State& state) {
  bench::GeneratorConfig config;
  config.n_objects = 64;
  auto db = bench::BenchmarkDatabase::Generate(config).value();
  ObjectSerializer serializer(db.schema());
  std::vector<std::vector<RecordRegion>> serialized;
  for (const auto& object : db.objects()) {
    serialized.push_back(serializer.ToRegions(object.tuple).value());
  }
  size_t i = 0;
  for (auto _ : state) {
    auto tuple = serializer.FromRegionsAll(serialized[i++ % 64]);
    benchmark::DoNotOptimize(tuple);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeserializeStation);

void BM_SegmentAllocatePage(benchmark::State& state) {
  // The bulk-load allocate+format path (ROADMAP "batched allocation"):
  // fresh pages are materialized as zero-filled frames with no metered
  // read. Write-back of the dirty formatted pages is part of the loop cost,
  // as it is in a real load.
  StorageEngineOptions options;
  options.buffer.frame_count = 4096;
  StorageEngine engine(options);
  auto segment = engine.CreateSegment("alloc").value();
  for (auto _ : state) {
    auto id = segment->AllocatePage(PageType::kSlotted);
    benchmark::DoNotOptimize(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentAllocatePage);

void BM_ComplexRecordReadAll(benchmark::State& state) {
  StorageEngine engine;
  auto segment = engine.CreateSegment("objs").value();
  ComplexRecordStore store(segment);
  std::vector<RecordRegion> regions;
  for (uint32_t i = 0; i < 12; ++i) {
    regions.push_back(RecordRegion{i, std::string(300, 'r')});
  }
  const Tid tid = store.Insert(regions).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.ReadAll(tid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ComplexRecordReadAll);

void BM_BPlusTreeInsert(benchmark::State& state) {
  StorageEngine engine;
  auto segment = engine.CreateSegment("idx").value();
  BPlusTree tree(segment);
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(key++ % 100000, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeFind(benchmark::State& state) {
  StorageEngine engine;
  auto segment = engine.CreateSegment("idx").value();
  BPlusTree tree(segment);
  for (int64_t k = 0; k < 50000; ++k) (void)tree.Insert(k, k);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(rng.Uniform(50000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeFind);

void BM_YaoFormula(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost::YaoPages(167, 2813, 4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_YaoFormula);

void BM_GenerateDatabase(benchmark::State& state) {
  for (auto _ : state) {
    bench::GeneratorConfig config;
    config.n_objects = static_cast<uint64_t>(state.range(0));
    benchmark::DoNotOptimize(bench::BenchmarkDatabase::Generate(config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateDatabase)->Arg(100)->Arg(1500);

}  // namespace
}  // namespace starfish

BENCHMARK_MAIN();
