// Reproduces Table 4: "Measurements of the number of physical page I/Os
// X_IO_pages" — the simulator stands in for the DASDBS testbed (same page
// size, same 1200-frame write-back buffer, same query protocols).

#include <cstdio>

#include "harness.h"

namespace starfish::bench {
namespace {

int Run() {
  PrintBanner("Table 4",
              "Measured physical page I/Os per query: query 1 normalized "
              "per object, queries 2/3 per loop. 1500 Stations, 1200-frame "
              "buffer, 300 loops (the paper's measurement setup).");

  const RunnerOptions options = PaperRunnerOptions();
  BenchmarkRunner runner(options);
  auto results = runner.Run();
  if (!results.ok()) {
    std::fprintf(stderr, "run: %s\n", results.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated averages: %.2f Platforms / %.2f Connections / %.2f "
              "Sightseeings per Station (paper: 1.59 / 4.04 / 7.64).\n\n",
              runner.database().stats().avg_platforms,
              runner.database().stats().avg_connections,
              runner.database().stats().avg_sightseeings);

  PrintQueryTable(results.value(), &QueryMeasurement::Pages);

  std::printf(
      "\nPaper anchors (legible cells of its Table 4):\n"
      "  NSM:        1b 3820 | 1c 2.55 | 2a 700 | 2b 2.33 | 3a 703 | 3b 3.38\n"
      "  DASDBS-NSM: 1a 9.00 | 1c 2.18 | 2a 18.0 | 2b 2.05 | 3a 22.0 | 3b 3.10\n"
      "  Direct models: ~3.02 pages/object for queries 1b/1c (header + 2.02\n"
      "  data pages); query 2b shows the buffer overflow of the direct\n"
      "  models (cf. Figure 6).\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
