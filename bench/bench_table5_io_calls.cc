// Reproduces Table 5: "Measurements of the number of I/O calls" — one call
// can move a run of pages (DASDBS issued separate calls for the root page,
// remaining header pages and data pages; write-back is batched).

#include <cstdio>

#include "harness.h"

namespace starfish::bench {
namespace {

int Run() {
  PrintBanner("Table 5",
              "Measured I/O calls per query (one chained call may move many "
              "pages): query 1 per object, queries 2/3 per loop.");

  const RunnerOptions options = PaperRunnerOptions();
  BenchmarkRunner runner(options);
  auto results = runner.Run();
  if (!results.ok()) {
    std::fprintf(stderr, "run: %s\n", results.status().ToString().c_str());
    return 1;
  }
  PrintQueryTable(results.value(), &QueryMeasurement::Calls);

  // Pages-per-call, the ratio the paper discusses in §5.2 ("With DSM we
  // retrieve the largest number of pages per call... NSM even reads only a
  // single page per retrieval call").
  std::printf("\nPages per I/O call (query 1c / query 3b):\n");
  TablePrinter ratio({"STORAGE MODEL", "1c pages/call", "3b pages/call"});
  for (const ModelRunResult& r : results.value()) {
    const double c1 = r.queries.q1c.Calls();
    const double c3 = r.queries.q3b.Calls();
    ratio.AddRow({ModelLabel(r.kind),
                  Cell(c1 > 0 ? r.queries.q1c.Pages() / c1 : 0),
                  Cell(c3 > 0 ? r.queries.q3b.Pages() / c3 : 0)});
  }
  ratio.Print();
  std::printf(
      "\nPaper anchors: NSM reads ~1 page per call; DSM about 2; write-back "
      "batches 20-30 pages per call for the direct models in query 3.\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
