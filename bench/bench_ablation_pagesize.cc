// Ablation: page size.
//
// The paper fixes the DASDBS page size (2 KiB). Sweeping it shows the
// trade-off its cost model implies: small pages sharpen DASDBS-DSM's
// partial-read advantage (finer retrieval granularity) but inflate call
// counts; large pages help sequential scans and hurt selective access.
// The Eq.-1 service-time model turns both into milliseconds.

#include <cstdio>

#include "disk/disk_timing.h"
#include "harness.h"

namespace starfish::bench {
namespace {

int Run() {
  PrintBanner("Ablation: page size",
              "Queries 1c (scan) and 2b (navigation) under page sizes from "
              "512 B to 8 KiB; estimated times via Equation 1 "
              "(d1 = 24 ms/call, d2 proportional to the page size).");

  GeneratorConfig config;
  config.n_objects = 1000;
  auto db = BenchmarkDatabase::Generate(config);
  if (!db.ok()) return 1;

  QueryConfig query;
  query.loops = 200;

  for (StorageModelKind kind :
       {StorageModelKind::kDsm, StorageModelKind::kDasdbsDsm,
        StorageModelKind::kDasdbsNsm}) {
    std::printf("\n%s:\n", ModelLabel(kind).c_str());
    TablePrinter table({"page bytes", "1c pages/obj", "1c est. ms/obj",
                        "2b pages/loop", "2b calls/loop", "2b est. ms/loop"});
    for (uint32_t page_size : {512u, 1024u, 2048u, 4096u, 8192u}) {
      // Scale the buffer to hold the same number of BYTES as the paper's
      // 1200 x 2 KiB setup, so only the layout granularity varies.
      BufferOptions buffer;
      buffer.frame_count = 1200u * 2048u / page_size;
      // Build the model on an engine with this page size.
      StorageEngineOptions eo;
      eo.disk.page_size = page_size;
      eo.buffer = buffer;
      StorageEngine engine(eo);
      ModelConfig mc;
      mc.schema = db->schema();
      auto model = CreateStorageModel(kind, &engine, mc);
      if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
      QueryRunner runner(model->get(), &engine, db.operator->(), query);
      auto q1c = runner.Query1c();
      auto q2b = runner.Query2b();
      if (!q1c.ok() || !q2b.ok()) return 1;

      PhysicalTimingModel physical;
      physical.page_size_bytes = page_size;
      const LinearTimingModel timing = physical.ToLinear();
      table.AddRow({std::to_string(page_size), Cell(q1c->Pages()),
                    Cell(timing.Cost(q1c->delta.io) / q1c->normalizer),
                    Cell(q2b->Pages()), Cell(q2b->Calls()),
                    Cell(timing.Cost(q2b->delta.io) / q2b->normalizer)});
    }
    table.Print();
  }

  std::printf(
      "\nReading: page counts halve as pages double (same bytes moved), but "
      "Eq.-1 time is dominated by calls — large pages win scans, while "
      "selective navigation (DASDBS-NSM) is nearly size-insensitive once "
      "its working set is cached.\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
