// Reproduces Figure 5: X_IO_pages for queries 1c, 2b and 3b while the
// maximum number of Sightseeings is 0, 15 and 30 — growing *unused*
// sub-objects inflates DSM, barely touches DASDBS-DSM's navigation, and
// leaves DASDBS-NSM's queries 2b/3b unchanged (their relations are never
// read). NSM is dropped, as in the paper ("'pure' NSM has not shown to be
// particularly suited ... we do not consider this storage model any
// longer").

#include <cstdio>
#include <map>

#include "harness.h"

namespace starfish::bench {
namespace {

const StorageModelKind kModels[] = {StorageModelKind::kDsm,
                                    StorageModelKind::kDasdbsDsm,
                                    StorageModelKind::kDasdbsNsm};
const uint32_t kMaxSights[] = {0, 15, 30};

int Run() {
  PrintBanner("Figure 5",
              "Measured page I/Os for queries 1c / 2b / 3b with the maximum "
              "number of Sightseeings set to 0, 15 and 30.");

  // results[model][sights] = suite
  std::map<StorageModelKind, std::map<uint32_t, QuerySuiteResults>> results;
  for (uint32_t sights : kMaxSights) {
    GeneratorConfig config;
    config.n_objects = 1500;
    config.max_sightseeings = sights;
    auto db = BenchmarkDatabase::Generate(config);
    if (!db.ok()) return 1;
    std::printf("max sightseeings %2u: drawn average %.2f per Station\n",
                sights, db->stats().avg_sightseeings);
    BufferOptions buffer;
    buffer.frame_count = 1200;
    QueryConfig query;
    query.loops = 300;
    query.q2a_samples = 10;
    query.q1a_samples = 20;
    for (StorageModelKind kind : kModels) {
      auto result = BenchmarkRunner::RunOne(kind, *db, buffer, query);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      results[kind][sights] = result->queries;
    }
  }

  auto print_series = [&](const char* title,
                          const QueryMeasurement&(*pick)(const QuerySuiteResults&)) {
    std::printf("\n%s (pages, per object for 1c / per loop for 2b, 3b):\n",
                title);
    TablePrinter table({"STORAGE MODEL", "sights<=0", "sights<=15",
                        "sights<=30"});
    for (StorageModelKind kind : kModels) {
      table.AddRow({ModelLabel(kind),
                    Cell(pick(results[kind][0]).Pages()),
                    Cell(pick(results[kind][15]).Pages()),
                    Cell(pick(results[kind][30]).Pages())});
    }
    table.Print();
  };

  print_series("QUERY 1c", [](const QuerySuiteResults& r) -> const QueryMeasurement& {
    return r.q1c;
  });
  print_series("QUERY 2b", [](const QuerySuiteResults& r) -> const QueryMeasurement& {
    return r.q2b;
  });
  print_series("QUERY 3b", [](const QuerySuiteResults& r) -> const QueryMeasurement& {
    return r.q3b;
  });

  std::printf(
      "\nPaper anchors (Fig. 5): query 2b DASDBS-NSM flat at 2.05 for all "
      "three sizes; query 3b DASDBS-NSM flat at 3.48; DSM grows steeply "
      "with object size; DASDBS-DSM updates stay expensive even for small "
      "objects (the change-attribute page pool).\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
