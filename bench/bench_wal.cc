// WAL commit-latency benchmark: what a durability acknowledgement costs
// per writer, across sync policies and writer counts.
//
// Each cell opens a fresh mmap-backed store, partitions a generated object
// set across N writer threads, and has every thread Put its slice while
// timing each call individually (a Put under kAlways/kGroup blocks until
// the record is fsync-durable, so the per-call wall time IS the commit
// latency). The interesting comparison is down the policy axis at fixed
// writer count:
//
//   none    the pre-WAL contract — commit returns after the in-memory
//           append; the floor the paper benches run at.
//   always  every commit waits for durability but the leader batches all
//           contemporaries into one fsync, so mean latency should FALL as
//           writers rise — the Samsung-IO-stack observation that one fsync
//           can carry many writers' durability work.
//   group   same, after the leader waits group_interval_us for more
//           committers to join the epoch: higher per-commit latency, fewer
//           fsyncs per acknowledged commit.
//
// Two further sections ride along:
//
//   * apply scaling — kDsm with write_stripes {1, 4}, wal_sync none, N
//     writers on disjoint stripes: how much of the write path actually
//     runs in parallel once per-segment latches replace the store-wide
//     write mutex (the stripes=1 row IS the serialized baseline).
//   * transactions — one writer under kAlways comparing 8 autonomous Puts
//     (8 durability waits) against Begin + 8 Puts + Commit (one wait) and
//     Begin + 8 Puts + Rollback (compensations + abort marker).
//
// Writes BENCH_wal.json. Ungated in CI (fsync latency is runner hardware;
// archive the artifact and watch the trend until the numbers stabilize).
//
// Usage: bench_wal [--ops N] [--group-interval-us N] [--dir PATH]
//                  [--txn] [--tiny]
//   --ops                per-writer Put count per cell (default 192;
//                        fsync-bound cells dominate the runtime)
//   --group-interval-us  kGroup accumulation window (default 100)
//   --dir                scratch directory root (default: system temp —
//                        point it at a real disk to measure real fsyncs)
//   --txn                run only the apply-scaling and transaction
//                        sections (the ci/check.sh txn stage)
//   --tiny               shrink op counts for a smoke run (no JSON)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/generator.h"
#include "core/complex_object_store.h"

namespace starfish {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kWriterCounts[] = {1, 2, 4, 8};

struct Policy {
  const char* name;
  WalSyncPolicy sync;
};

struct CellResult {
  std::string name;
  const char* policy;
  uint32_t writers = 0;
  uint64_t total_ops = 0;
  double ops_per_sec = 0;
  double mean_us = 0;  ///< mean per-commit latency
  double p50_us = 0;
  double p99_us = 0;
};

void Fatal(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_wal: %s: %s\n", what, st.ToString().c_str());
  std::exit(1);
}

/// One benchmark cell: N writers Put their slices concurrently; per-call
/// latencies are collected, merged and summarized.
CellResult RunCell(const bench::BenchmarkDatabase& db, const Policy& policy,
                   uint32_t writers, uint64_t ops_per_writer,
                   uint32_t group_interval_us, const std::string& dir) {
  std::filesystem::remove_all(dir);
  StoreOptions options;
  options.backend = VolumeKind::kMmap;
  options.path = dir;
  options.wal_sync = policy.sync;
  options.wal_group_interval_us = group_interval_us;
  auto store_or = ComplexObjectStore::Open(db.schema(), options);
  if (!store_or.ok()) Fatal("open store", store_or.status());
  auto store = std::move(store_or).value();

  std::vector<std::vector<double>> latencies(writers);
  std::atomic<uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(writers);
  for (uint32_t w = 0; w < writers; ++w) {
    pool.emplace_back([&, w] {
      latencies[w].reserve(ops_per_writer);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < ops_per_writer; ++i) {
        const auto& object = db.objects()[w * ops_per_writer + i];
        const auto start = Clock::now();
        const Status st = store->Put(object.ref, object.tuple);
        const std::chrono::duration<double, std::micro> took =
            Clock::now() - start;
        if (!st.ok()) Fatal("put", st);
        latencies[w].push_back(took.count());
      }
    });
  }
  while (ready.load() != writers) {
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  store.reset();  // checkpoint + truncate outside the timed region
  std::filesystem::remove_all(dir);

  std::vector<double> merged;
  merged.reserve(writers * ops_per_writer);
  for (const auto& per_thread : latencies) {
    merged.insert(merged.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(merged.begin(), merged.end());

  CellResult r;
  r.policy = policy.name;
  r.writers = writers;
  r.name = std::string("wal_commit_") + policy.name + "_t" +
           std::to_string(writers);
  r.total_ops = merged.size();
  r.ops_per_sec = static_cast<double>(r.total_ops) / elapsed.count();
  double sum = 0;
  for (double us : merged) sum += us;
  r.mean_us = sum / static_cast<double>(merged.size());
  r.p50_us = merged[merged.size() / 2];
  r.p99_us = merged[merged.size() * 99 / 100];
  return r;
}

/// Apply-scaling cell: N writers Put disjoint ref slices into a striped
/// kDsm store, wal_sync none (no fsync in the loop — the measured work is
/// apply + log append). Writer w takes objects with index ≡ w (mod
/// writers); generated refs are dense, so with writers == stripes every
/// writer stays inside its own stripe and the applies share no latch.
CellResult RunApplyCell(const bench::BenchmarkDatabase& db, uint32_t stripes,
                        uint32_t writers, uint64_t ops_per_writer,
                        const std::string& dir) {
  std::filesystem::remove_all(dir);
  StoreOptions options;
  options.backend = VolumeKind::kMmap;
  options.path = dir;
  options.model = StorageModelKind::kDsm;
  options.wal_sync = WalSyncPolicy::kNone;
  options.write_stripes = stripes;
  options.buffer_shards = 0;  // thread-safe pool, derived shard count
  auto store_or = ComplexObjectStore::Open(db.schema(), options);
  if (!store_or.ok()) Fatal("open store", store_or.status());
  auto store = std::move(store_or).value();

  const uint64_t total = writers * ops_per_writer;
  std::atomic<uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(writers);
  std::atomic<uint64_t> done{0};
  for (uint32_t w = 0; w < writers; ++w) {
    pool.emplace_back([&, w] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      uint64_t ops = 0;
      for (uint64_t i = w; i < total; i += writers) {
        const auto& object = db.objects()[i];
        const Status st = store->Put(object.ref, object.tuple);
        if (!st.ok()) Fatal("striped put", st);
        ++ops;
      }
      done.fetch_add(ops);
    });
  }
  while (ready.load() != writers) {
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  store.reset();
  std::filesystem::remove_all(dir);

  CellResult r;
  r.policy = "none";
  r.writers = writers;
  r.name = "wal_apply_dsm_s" + std::to_string(stripes) + "_t" +
           std::to_string(writers);
  r.total_ops = done.load();
  r.ops_per_sec = static_cast<double>(r.total_ops) / elapsed.count();
  const double mean_us = 1e6 * elapsed.count() / static_cast<double>(r.total_ops);
  r.mean_us = r.p50_us = r.p99_us = mean_us;  // throughput cell: no per-op dist
  return r;
}

/// Transaction-latency cell: one writer under kAlways, timing batches of
/// `batch` ops shaped per `mode` ("auto" = autonomous Puts, "commit" =
/// Begin..Commit, "abort" = Begin..Rollback).
CellResult RunTxnCell(const bench::BenchmarkDatabase& db,
                      const std::string& mode, uint64_t batches,
                      uint32_t batch, uint32_t group_interval_us,
                      const std::string& dir) {
  std::filesystem::remove_all(dir);
  StoreOptions options;
  options.backend = VolumeKind::kMmap;
  options.path = dir;
  options.wal_sync = WalSyncPolicy::kAlways;
  options.wal_group_interval_us = group_interval_us;
  auto store_or = ComplexObjectStore::Open(db.schema(), options);
  if (!store_or.ok()) Fatal("open store", store_or.status());
  auto store = std::move(store_or).value();

  std::vector<double> latencies;
  latencies.reserve(batches);
  const auto run_start = Clock::now();
  for (uint64_t b = 0; b < batches; ++b) {
    // The abort batch reuses one slice: Rollback frees its refs again.
    const uint64_t base = (mode == "abort") ? 0 : b * batch;
    const auto start = Clock::now();
    if (mode == "auto") {
      for (uint32_t i = 0; i < batch; ++i) {
        const auto& object = db.objects()[base + i];
        const Status st = store->Put(object.ref, object.tuple);
        if (!st.ok()) Fatal("autonomous put", st);
      }
    } else {
      auto txn_or = store->Begin();
      if (!txn_or.ok()) Fatal("begin", txn_or.status());
      StoreTransaction txn = std::move(txn_or).value();
      for (uint32_t i = 0; i < batch; ++i) {
        const auto& object = db.objects()[base + i];
        const Status st = txn.Put(object.ref, object.tuple);
        if (!st.ok()) Fatal("txn put", st);
      }
      const Status end =
          (mode == "commit") ? txn.Commit() : txn.Rollback();
      if (!end.ok()) Fatal(mode.c_str(), end);
    }
    const std::chrono::duration<double, std::micro> took =
        Clock::now() - start;
    latencies.push_back(took.count());
  }
  const std::chrono::duration<double> elapsed = Clock::now() - run_start;
  store.reset();
  std::filesystem::remove_all(dir);

  std::sort(latencies.begin(), latencies.end());
  CellResult r;
  r.policy = "always";
  r.writers = 1;
  r.name = "wal_txn_" + mode + std::to_string(batch);
  r.total_ops = batches * batch;
  r.ops_per_sec = static_cast<double>(r.total_ops) / elapsed.count();
  double sum = 0;
  for (double us : latencies) sum += us;
  r.mean_us = sum / static_cast<double>(latencies.size());
  r.p50_us = latencies[latencies.size() / 2];
  r.p99_us = latencies[latencies.size() * 99 / 100];
  return r;
}

void WriteJson(const std::vector<CellResult>& results, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_wal: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"policy\": \"%s\", "
                 "\"writers\": %u, \"total_ops\": %llu, "
                 "\"ops_per_sec\": %.0f, \"mean_us\": %.2f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f}%s\n",
                 r.name.c_str(), r.policy, r.writers,
                 static_cast<unsigned long long>(r.total_ops), r.ops_per_sec,
                 r.mean_us, r.p50_us, r.p99_us,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace starfish

int main(int argc, char** argv) {
  using namespace starfish;
  uint64_t ops_per_writer = 192;
  uint32_t group_interval_us = 100;
  std::string dir_root;
  bool txn_only = false;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ops" && i + 1 < argc) {
      ops_per_writer = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--group-interval-us" && i + 1 < argc) {
      group_interval_us =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--dir" && i + 1 < argc) {
      dir_root = argv[++i];
    } else if (arg == "--txn") {
      txn_only = true;
    } else if (arg == "--tiny") {
      tiny = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--ops N] [--group-interval-us N] [--dir "
                   "PATH] [--txn] [--tiny]\n",
                   argv[0]);
      return 2;
    }
  }
  if (tiny) ops_per_writer = std::min<uint64_t>(ops_per_writer, 24);
  if (dir_root.empty()) {
    dir_root = (std::filesystem::temp_directory_path() /
                ("starfish_bench_wal_" +
                 std::to_string(static_cast<uint64_t>(
                     Clock::now().time_since_epoch().count()))))
                   .string();
  }

  uint32_t max_writers = 1;
  for (uint32_t w : kWriterCounts) max_writers = std::max(max_writers, w);
  bench::GeneratorConfig config;
  config.n_objects = max_writers * ops_per_writer;
  config.seed = 191;
  auto db_or = bench::BenchmarkDatabase::Generate(config);
  if (!db_or.ok()) Fatal("generate objects", db_or.status());
  const auto db = std::move(db_or).value();

  const Policy policies[] = {
      {"none", WalSyncPolicy::kNone},
      {"always", WalSyncPolicy::kAlways},
      {"group", WalSyncPolicy::kGroup},
  };

  std::printf(
      "mmap backend at %s, %llu puts/writer, group interval %u us\n\n",
      dir_root.c_str(), static_cast<unsigned long long>(ops_per_writer),
      group_interval_us);
  std::printf("%-22s %8s %12s %10s %10s %10s\n", "cell", "writers", "ops/sec",
              "mean us", "p50 us", "p99 us");

  std::vector<CellResult> results;
  auto show = [&](CellResult r) {
    std::printf("%-22s %8u %12.0f %10.2f %10.2f %10.2f\n", r.name.c_str(),
                r.writers, r.ops_per_sec, r.mean_us, r.p50_us, r.p99_us);
    results.push_back(std::move(r));
  };

  if (!txn_only) {
    for (const Policy& policy : policies) {
      for (uint32_t writers : kWriterCounts) {
        show(RunCell(db, policy, writers, ops_per_writer, group_interval_us,
                     dir_root + "_cell"));
      }
    }
  }

  // Apply scaling: the stripes=1 rows are the serialized baseline the
  // per-segment latches are measured against.
  for (uint32_t stripes : {1u, 4u}) {
    for (uint32_t writers : {1u, 4u}) {
      show(RunApplyCell(db, stripes, writers, ops_per_writer,
                        dir_root + "_cell"));
    }
  }

  // Transactions: batch of 8 ops, autonomous vs one-commit vs rollback.
  const uint32_t batch = 8;
  const uint64_t batches =
      std::max<uint64_t>(1, ops_per_writer * kWriterCounts[0] / batch);
  for (const char* mode : {"auto", "commit", "abort"}) {
    show(RunTxnCell(db, mode, batches, batch, group_interval_us,
                    dir_root + "_cell"));
  }

  if (tiny) {
    std::printf("\n--tiny smoke run: BENCH_wal.json left untouched\n");
    return 0;
  }
  WriteJson(results, "BENCH_wal.json");
  std::printf("\nwrote BENCH_wal.json\n");
  return 0;
}
