// Ablation: buffer size and replacement policy.
//
// Figure 6 varies the database against a fixed 1200-frame buffer; this
// ablation holds the database fixed (1500 objects) and sweeps the buffer,
// then compares LRU / CLOCK / FIFO for the most cache-sensitive model (DSM).

#include <cstdio>

#include "harness.h"

namespace starfish::bench {
namespace {

int Run() {
  PrintBanner("Ablation: buffer",
              "Query 2b pages/loop vs buffer size (fixed 1500-object "
              "database), plus replacement-policy comparison for DSM.");

  GeneratorConfig config;
  config.n_objects = 1500;
  auto db = BenchmarkDatabase::Generate(config);
  if (!db.ok()) return 1;

  QueryConfig query;
  query.loops = 300;

  const StorageModelKind kinds[] = {StorageModelKind::kDsm,
                                    StorageModelKind::kDasdbsDsm,
                                    StorageModelKind::kDasdbsNsm};
  std::printf("Buffer sweep (LRU):\n");
  TablePrinter sweep({"frames", "DSM 2b", "DASDBS-DSM 2b", "DASDBS-NSM 2b"});
  for (uint32_t frames : {50u, 150u, 400u, 800u, 1200u, 2400u, 4800u}) {
    std::vector<std::string> row{std::to_string(frames)};
    for (StorageModelKind kind : kinds) {
      BufferOptions buffer;
      buffer.frame_count = frames;
      auto result = BenchmarkRunner::RunOne(kind, *db, buffer, query);
      if (!result.ok()) return 1;
      row.push_back(Cell(result->queries.q2b.Pages()));
    }
    sweep.AddRow(row);
  }
  sweep.Print();

  std::printf("\nReplacement policy (DSM, the most overflow-sensitive "
              "model):\n");
  TablePrinter policies({"frames", "LRU", "CLOCK", "FIFO"});
  for (uint32_t frames : {400u, 1200u, 2400u}) {
    std::vector<std::string> row{std::to_string(frames)};
    for (ReplacementPolicy policy :
         {ReplacementPolicy::kLru, ReplacementPolicy::kClock,
          ReplacementPolicy::kFifo}) {
      BufferOptions buffer;
      buffer.frame_count = frames;
      buffer.policy = policy;
      auto result = BenchmarkRunner::RunOne(StorageModelKind::kDsm, *db,
                                            buffer, query);
      if (!result.ok()) return 1;
      row.push_back(Cell(result->queries.q2b.Pages()));
    }
    policies.AddRow(row);
  }
  policies.Print();

  std::printf(
      "\nReading: DASDBS-NSM's ~600-page working set is cache-resident from "
      "modest buffer sizes on, while DSM needs several thousand frames to "
      "escape its worst case — buffer capacity, not policy, is the "
      "first-order effect (CLOCK/FIFO track LRU within a few pages).\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
