// Reproduces Table 2: "Average DASDBS-sizes of benchmark tuples" — the
// placement parameters (S_tuple, k, p, m) of every relation of every
// storage model, derived by analyzing our storage structures exactly the
// way the paper analyzed DASDBS's.

#include <cstdio>

#include "harness.h"
#include "models/dasdbs_nsm_model.h"
#include "models/direct_model.h"
#include "models/nsm_model.h"

namespace starfish::bench {
namespace {

void AddRelationRow(TablePrinter* table, const cost::RelationParams& rel,
                    const std::string& paper_anchor) {
  table->AddRow({rel.name, Cell(rel.tuples_per_object),
                 Cell(rel.total_tuples), Cell(rel.tuple_bytes),
                 rel.is_large ? "-" : Cell(rel.k),
                 rel.is_large ? Cell(rel.p) : "-", Cell(rel.m),
                 paper_anchor});
}

int Run() {
  PrintBanner("Table 2",
              "Average sizes of the benchmark tuples: tuples per Station, "
              "tuples in total, stored tuple bytes (S_tuple), tuples per "
              "page (k), pages per tuple (p), pages per relation (m).");

  auto db = BenchmarkDatabase::Generate(GeneratorConfig{});
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated database: %zu Stations, drawn averages %.2f "
              "Platforms / %.2f Connections / %.2f Sightseeings per object "
              "(paper: 1.60 / 4.10 / 7.50 expected; 1.59 / 4.04 / 7.64 "
              "drawn).\n\n",
              db->objects().size(), db->stats().avg_platforms,
              db->stats().avg_connections, db->stats().avg_sightseeings);

  TablePrinter table({"RELATION", "TUPLES/OBJ", "TUPLES TOTAL", "S_tuple",
                      "k", "p", "m", "paper (S,k|p,m)"});

  // Direct models (one relation each; identical layout for both).
  {
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = db->schema();
    auto model = DirectModel::Create(&engine, mc, DirectModelOptions{});
    if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
    auto rel = CalibrateDirect(model->get(), *db);
    if (!rel.ok()) return 1;
    rel->name = "(DASDBS-)DSM_Station";
    AddRelationRow(&table, rel.value(), "6078, p=4, m=6000");
    std::printf("Direct model: avg %.2f header + %.2f data pages per object "
                "(paper: \"a header page and 2.02 data pages\").\n",
                rel->header_pages, rel->data_pages);
  }
  table.AddSeparator();

  // NSM relations.
  {
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = db->schema();
    auto model = NsmModel::Create(&engine, mc, NsmModelOptions{});
    if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
    auto rels = CalibrateNsm(model->get(), *db);
    if (!rels.ok()) return 1;
    const char* anchors[] = {"m=116", "-", "170, k=11, m=559",
                             "456, k=4, m=2813"};
    for (size_t i = 0; i < rels->size(); ++i) {
      AddRelationRow(&table, (*rels)[i], anchors[i]);
    }
  }
  table.AddSeparator();

  // DASDBS-NSM relations.
  {
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = db->schema();
    auto model = DasdbsNsmModel::Create(&engine, mc);
    if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
    auto rels = CalibrateDasdbsNsm(model->get(), *db);
    if (!rels.ok()) return 1;
    const char* anchors[] = {"m=116", "-", "m=500", "p=3, m=4500"};
    for (size_t i = 0; i < rels->size(); ++i) {
      AddRelationRow(&table, (*rels)[i], anchors[i]);
    }
  }

  table.Print();
  std::printf(
      "\nNotes: S_tuple of page-spanning tuples counts occupied bytes "
      "including internal waste, as the paper does (6078 ~= 3.02 pages x "
      "2012 usable bytes). Absolute sizes differ a few %% from DASDBS's "
      "(different record admin bytes); the derived k/p/m drive Table 3.\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
