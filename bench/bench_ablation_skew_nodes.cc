// Ablation: data skew under distributed placement (§5.5's closing remark).
//
// "Notice, however, that in a distributed system the data skew might cause
// more effects ... with data skew the disk I/Os are likely to be less
// equally distributed over the nodes if we store a single object on a
// single node." This bench hashes objects onto N nodes, replays the
// query-2b access stream, and reports the per-node I/O imbalance for the
// default and the skewed database.

#include <cstdio>
#include <vector>

#include "harness.h"
#include "util/random.h"

namespace starfish::bench {
namespace {

struct Imbalance {
  double max_over_mean = 0;  // hottest node vs average
  double top_node_share = 0; // fraction of all accesses on the hottest node
};

/// Replays the benchmark's query-2b navigation (300 loops) and attributes
/// each object visit to its node (visit weight = pages the object's
/// navigation step costs; 1 for children reads, 1 for root records —
/// relative load is what matters).
Imbalance MeasureImbalance(const BenchmarkDatabase& db, uint32_t nodes,
                           uint32_t loops, uint64_t seed) {
  std::vector<uint64_t> load(nodes, 0);
  Rng rng(seed);
  const auto& objects = db.objects();
  auto node_of = [&](ObjectRef ref) { return ref % nodes; };
  auto children_of = [&](ObjectRef ref) {
    std::vector<ObjectRef> out;
    for (const Tuple& platform :
         objects[ref].tuple.values[StationAttrs::kPlatforms].as_relation()) {
      for (const Tuple& conn : platform.values[4].as_relation()) {
        out.push_back(conn.values[2].as_link());
      }
    }
    return out;
  };
  for (uint32_t loop = 0; loop < loops; ++loop) {
    const ObjectRef root = rng.Uniform(objects.size());
    ++load[node_of(root)];
    for (ObjectRef child : children_of(root)) {
      ++load[node_of(child)];
      for (ObjectRef grand : children_of(child)) {
        ++load[node_of(grand)];
      }
    }
  }
  uint64_t total = 0, max_load = 0;
  for (uint64_t l : load) {
    total += l;
    max_load = std::max(max_load, l);
  }
  Imbalance result;
  const double mean = static_cast<double>(total) / nodes;
  result.max_over_mean = mean > 0 ? max_load / mean : 0;
  result.top_node_share = total > 0 ? static_cast<double>(max_load) / total : 0;
  return result;
}

int Run() {
  PrintBanner("Ablation: skew x distribution",
              "Per-node access imbalance of the query-2b stream when "
              "objects are placed one-per-node-hash, default vs skewed "
              "database (probability 0.2, fan-out 8).");

  GeneratorConfig normal;
  normal.n_objects = 1500;
  GeneratorConfig skewed = normal;
  skewed.creation_probability = 0.2;
  skewed.fanout = 8;
  auto normal_db = BenchmarkDatabase::Generate(normal);
  auto skewed_db = BenchmarkDatabase::Generate(skewed);
  if (!normal_db.ok() || !skewed_db.ok()) return 1;

  TablePrinter table({"nodes", "default max/mean", "default top-share",
                      "skewed max/mean", "skewed top-share"});
  for (uint32_t nodes : {4u, 8u, 16u, 32u}) {
    const Imbalance a = MeasureImbalance(*normal_db, nodes, 300, 99);
    const Imbalance b = MeasureImbalance(*skewed_db, nodes, 300, 99);
    table.AddRow({std::to_string(nodes), Cell(a.max_over_mean),
                  Cell(a.top_node_share), Cell(b.max_over_mean),
                  Cell(b.top_node_share)});
  }
  table.Print();

  std::printf(
      "\nReading: aggregate I/O is skew-insensitive (Table 7), but with "
      "one-object-per-node placement the skewed database concentrates "
      "navigation on hot nodes — max/mean grows with node count, confirming "
      "the paper's conjecture that skew would start to matter in a "
      "shared-nothing setting.\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
