// Ablation: projection pushdown into scans.
//
// The paper models query 1b as a full relation scan for the direct models
// (Table 3: 4500-6000 pages), yet its measured DASDBS-DSM scan cost (1c =
// 1.82 pages/object) sits *below* the whole-object cost — DASDBS's scans
// evidently avoided part of each object. This ablation implements that
// capability explicitly: a pushdown scan reads only header + root-region
// pages of non-matching objects, and skips data pages holding only
// unselected sub-tuples.

#include <cstdio>

#include "harness.h"
#include "models/direct_model.h"

namespace starfish::bench {
namespace {

int Run() {
  PrintBanner("Ablation: scan pushdown",
              "DASDBS-DSM value selection (1b) and projected scan with and "
              "without projection pushdown into the scan.");

  GeneratorConfig config;
  config.n_objects = 1500;
  auto db = BenchmarkDatabase::Generate(config);
  if (!db.ok()) return 1;
  auto nav_proj = Projection::OfPaths(*db->schema(),
                                      {StationPaths::kStation,
                                       StationPaths::kPlatform,
                                       StationPaths::kConnection});
  if (!nav_proj.ok()) return 1;

  TablePrinter table({"variant", "1b pages", "1b calls",
                      "projected scan pages/obj", "1c (all) pages/obj"});
  for (bool pushdown : {false, true}) {
    StorageEngineOptions eo;
    eo.buffer.frame_count = 1200;
    StorageEngine engine(eo);
    ModelConfig mc;
    mc.schema = db->schema();
    DirectModelOptions options;
    options.partial_reads = true;
    options.change_attr_updates = true;
    options.scan_pushdown = pushdown;
    auto model = DirectModel::Create(&engine, mc, options);
    if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;

    // 1b: retrieve one object by key value.
    if (!engine.DropCache().ok()) return 1;
    engine.ResetStats();
    if (!model.value()->GetByKey(750, Projection::All(*db->schema())).ok()) {
      return 1;
    }
    const double q1b_pages = static_cast<double>(engine.stats().io.pages_read);
    const double q1b_calls = static_cast<double>(engine.stats().io.read_calls);

    // Projected scan: all objects, navigation projection (no sightseeings).
    if (!engine.DropCache().ok()) return 1;
    engine.ResetStats();
    size_t seen = 0;
    if (!model.value()
             ->ScanAll(nav_proj.value(),
                       [&](int64_t, const Tuple&) {
                         ++seen;
                         return Status::OK();
                       })
             .ok() ||
        seen != db->objects().size()) {
      return 1;
    }
    const double proj_scan =
        static_cast<double>(engine.stats().io.pages_read) / seen;

    // 1c with Projection::All — pushdown cannot help, sanity anchor.
    if (!engine.DropCache().ok()) return 1;
    engine.ResetStats();
    seen = 0;
    if (!model.value()
             ->ScanAll(Projection::All(*db->schema()),
                       [&](int64_t, const Tuple&) {
                         ++seen;
                         return Status::OK();
                       })
             .ok()) {
      return 1;
    }
    const double full_scan =
        static_cast<double>(engine.stats().io.pages_read) / seen;

    table.AddRow({pushdown ? "pushdown" : "paper protocol", Cell(q1b_pages),
                  Cell(q1b_calls), Cell(proj_scan), Cell(full_scan)});
  }
  table.Print();

  std::printf(
      "\nReading: pushdown cuts the value-selection scan from whole-object "
      "cost (~3.4 pages/object, the paper's Table 3 model) to ~2 "
      "pages/object (header + root-region page) — right at the paper's "
      "anomalous measured 1c of 1.82 pages/object, supporting the mini-page "
      "explanation in EXPERIMENTS.md. Full-object scans are unchanged, as "
      "they must be.\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
