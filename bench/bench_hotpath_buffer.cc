// Wall-clock microbenchmark of the disk->buffer hot path.
//
// Unlike the bench_table*/bench_fig* binaries, which reproduce the paper's
// *counted* I/O metrics, this bench measures how fast the simulator itself
// executes the hot loops: buffer fix-hit, fix-miss/evict, chained prefetch,
// sequential run prefetch into the buffer, and raw sequential
// ReadRun/WriteRun. It writes BENCH_hotpath.json to the working directory so
// successive PRs can track the perf trajectory.
//
// Methodology: each loop is calibrated to a fixed iteration count, then run
// several times and the FASTEST run is reported (best-of-N rejects scheduler
// noise on shared machines; the minimum is the closest observable to the
// true cost of the loop).
//
// Run without arguments; finishes in a few seconds.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "disk/sim_disk.h"

namespace starfish {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kRepetitions = 7;
constexpr double kTargetRunSeconds = 0.12;

struct BenchResult {
  std::string name;
  double ops_per_sec = 0;
  double ns_per_op = 0;
  uint64_t iterations = 0;
  std::string unit;  // what one "op" is
};

/// Calibrates the iteration count so one run of `body(iters)` lasts about
/// kTargetRunSeconds, then reports the fastest of kRepetitions runs.
/// `body` must perform exactly `iters` operations.
template <typename Body>
BenchResult Measure(const std::string& name, const std::string& unit,
                    Body&& body) {
  uint64_t iters = 1024;
  for (;;) {
    const auto start = Clock::now();
    body(iters);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (elapsed.count() >= kTargetRunSeconds / 4 || iters >= (1ull << 30)) {
      const double scale =
          elapsed.count() > 0 ? kTargetRunSeconds / elapsed.count() : 4.0;
      if (scale > 1.0) {
        iters = static_cast<uint64_t>(static_cast<double>(iters) * scale);
      }
      break;
    }
    iters *= 8;
  }

  double best_seconds = 1e30;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto start = Clock::now();
    body(iters);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (elapsed.count() < best_seconds) best_seconds = elapsed.count();
  }

  BenchResult r;
  r.name = name;
  r.unit = unit;
  r.iterations = iters;
  r.ops_per_sec = static_cast<double>(iters) / best_seconds;
  r.ns_per_op = best_seconds * 1e9 / static_cast<double>(iters);
  return r;
}

void Fatal(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_hotpath_buffer: %s: %s\n", what,
               st.ToString().c_str());
  std::exit(1);
}

// One hot page fixed over and over: the pure lookup + pin + LRU-touch path
// (same shape as micro_substrate's BM_BufferFixHit).
BenchResult BenchFixHit() {
  SimDisk disk;
  const PageId id = disk.Allocate();
  BufferOptions options;
  options.frame_count = 128;
  BufferManager bm(&disk, options);
  {
    auto g = bm.Fix(id);
    if (!g.ok()) Fatal("warm-up fix", g.status());
  }
  return Measure("buffer_fix_hit", "fix", [&](uint64_t iters) {
    for (uint64_t i = 0; i < iters; ++i) {
      auto g = bm.Fix(id);
      if (!g.ok()) Fatal("fix", g.status());
    }
  });
}

// A 64-page working set cycled in order: every hit reorders the LRU list.
BenchResult BenchFixHitCycle() {
  SimDisk disk;
  const PageId first = disk.AllocateRun(64);
  BufferOptions options;
  options.frame_count = 128;
  BufferManager bm(&disk, options);
  for (uint32_t i = 0; i < 64; ++i) {
    auto g = bm.Fix(first + i);
    if (!g.ok()) Fatal("warm-up fix", g.status());
  }
  return Measure("buffer_fix_hit_cycle64", "fix", [&](uint64_t iters) {
    for (uint64_t i = 0; i < iters; ++i) {
      auto g = bm.Fix(first + static_cast<PageId>(i & 63));
      if (!g.ok()) Fatal("fix", g.status());
    }
  });
}

// Working set twice the pool: every fix misses, reads one page and evicts a
// victim (clean — the page is never dirtied).
BenchResult BenchFixMissEvict() {
  SimDisk disk;
  constexpr uint32_t kPool = 256;
  constexpr uint32_t kPages = 2 * kPool;
  const PageId first = disk.AllocateRun(kPages);
  BufferOptions options;
  options.frame_count = kPool;
  BufferManager bm(&disk, options);
  return Measure("buffer_fix_miss_evict", "fix", [&](uint64_t iters) {
    for (uint64_t i = 0; i < iters; ++i) {
      auto g = bm.Fix(first + static_cast<PageId>(i % kPages));
      if (!g.ok()) Fatal("fix", g.status());
    }
  });
}

// One chained prefetch of a complex object's pages into a cold-ish buffer;
// DropAll between rounds so every prefetch really reads.
BenchResult BenchPrefetchChained() {
  SimDisk disk;
  constexpr uint32_t kObjectPages = 32;
  const PageId first = disk.AllocateRun(kObjectPages);
  BufferOptions options;
  options.frame_count = 64;
  BufferManager bm(&disk, options);
  std::vector<PageId> ids;
  for (uint32_t i = 0; i < kObjectPages; ++i) ids.push_back(first + i);
  return Measure("prefetch_chained", "page", [&](uint64_t iters) {
    for (uint64_t done = 0; done < iters; done += kObjectPages) {
      Status st = bm.Prefetch(ids, PrefetchMode::kChained);
      if (!st.ok()) Fatal("prefetch", st);
      st = bm.DropAll();
      if (!st.ok()) Fatal("drop", st);
    }
  });
}

// Sequential scan through the buffer: 64-page contiguous runs prefetched
// with kContiguousRuns (the segment-scan read path — disk ReadRun feeding
// buffer frames), dropped between rounds so every run really reads.
BenchResult BenchBufferReadRunSeq() {
  SimDisk disk;
  constexpr uint32_t kRun = 64;
  const PageId first = disk.AllocateRun(kRun);
  BufferOptions options;
  options.frame_count = 128;
  BufferManager bm(&disk, options);
  std::vector<PageId> ids;
  for (uint32_t i = 0; i < kRun; ++i) ids.push_back(first + i);
  return Measure("buffer_read_run_seq", "page", [&](uint64_t iters) {
    for (uint64_t done = 0; done < iters; done += kRun) {
      Status st = bm.Prefetch(ids, PrefetchMode::kContiguousRuns);
      if (!st.ok()) Fatal("prefetch", st);
      st = bm.DropAll();
      if (!st.ok()) Fatal("drop", st);
    }
  });
}

// Raw sequential disk read into a private buffer, 64 pages per call, over a
// 16 MiB volume. Dominated by memcpy/memory bandwidth by design — this is
// the floor the copying API cannot go below.
BenchResult BenchReadRunSequential() {
  SimDisk disk;
  constexpr uint32_t kRun = 64;
  constexpr uint32_t kVolumePages = 8192;  // 16 MiB at 2 KiB pages
  const PageId first = disk.AllocateRun(kVolumePages);
  std::vector<char> buf(static_cast<size_t>(kRun) * disk.page_size());
  return Measure("disk_read_run_seq", "page", [&](uint64_t iters) {
    PageId at = first;
    for (uint64_t done = 0; done < iters; done += kRun) {
      Status st = disk.ReadRun(at, kRun, buf.data());
      if (!st.ok()) Fatal("read", st);
      at += kRun;
      if (at + kRun > first + kVolumePages) at = first;
    }
  });
}

#ifndef STARFISH_BENCH_NO_ZEROCOPY
// The zero-copy read path: same accounting as ReadRun, no copy at all.
BenchResult BenchReadRunZeroCopy() {
  SimDisk disk;
  constexpr uint32_t kRun = 64;
  constexpr uint32_t kVolumePages = 8192;
  const PageId first = disk.AllocateRun(kVolumePages);
  std::vector<const char*> views;
  return Measure("disk_read_run_seq_zerocopy", "page", [&](uint64_t iters) {
    PageId at = first;
    for (uint64_t done = 0; done < iters; done += kRun) {
      Status st = disk.ReadRunZeroCopy(at, kRun, &views);
      if (!st.ok()) Fatal("read", st);
      at += kRun;
      if (at + kRun > first + kVolumePages) at = first;
    }
  });
}
#endif

// Raw sequential disk write, 64 pages per call.
BenchResult BenchWriteRunSequential() {
  SimDisk disk;
  constexpr uint32_t kRun = 64;
  constexpr uint32_t kVolumePages = 8192;
  const PageId first = disk.AllocateRun(kVolumePages);
  std::vector<char> buf(static_cast<size_t>(kRun) * disk.page_size(), 'w');
  return Measure("disk_write_run_seq", "page", [&](uint64_t iters) {
    PageId at = first;
    for (uint64_t done = 0; done < iters; done += kRun) {
      Status st = disk.WriteRun(at, kRun, buf.data());
      if (!st.ok()) Fatal("write", st);
      at += kRun;
      if (at + kRun > first + kVolumePages) at = first;
    }
  });
}

void WriteJson(const std::vector<BenchResult>& results, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_hotpath_buffer: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"unit\": \"%s\", "
                 "\"ops_per_sec\": %.0f, \"ns_per_op\": %.2f, "
                 "\"iterations\": %llu}%s\n",
                 r.name.c_str(), r.unit.c_str(), r.ops_per_sec, r.ns_per_op,
                 static_cast<unsigned long long>(r.iterations),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace starfish

int main() {
  using namespace starfish;
  std::vector<BenchResult> results;
  results.push_back(BenchFixHit());
  results.push_back(BenchFixHitCycle());
  results.push_back(BenchFixMissEvict());
  results.push_back(BenchPrefetchChained());
  results.push_back(BenchBufferReadRunSeq());
  results.push_back(BenchReadRunSequential());
#ifndef STARFISH_BENCH_NO_ZEROCOPY
  results.push_back(BenchReadRunZeroCopy());
#endif
  results.push_back(BenchWriteRunSequential());

  std::printf("%-26s %14s %12s   per-op unit\n", "benchmark", "ops/sec",
              "ns/op");
  for (const BenchResult& r : results) {
    std::printf("%-26s %14.0f %12.2f   %s\n", r.name.c_str(), r.ops_per_sec,
                r.ns_per_op, r.unit.c_str());
  }
  WriteJson(results, "BENCH_hotpath.json");
  std::printf("\nwrote BENCH_hotpath.json\n");
  return 0;
}
