// Wall-clock microbenchmark of the disk->buffer hot path.
//
// Unlike the bench_table*/bench_fig* binaries, which reproduce the paper's
// *counted* I/O metrics, this bench measures how fast the simulator itself
// executes the hot loops: buffer fix-hit, fix-miss/evict, chained prefetch,
// sequential run prefetch into the buffer, and raw sequential
// ReadRun/WriteRun. It writes BENCH_hotpath.json (BENCH_hotpath_mmap.json
// for --backend mmap) to the working directory so successive PRs can track
// the perf trajectory.
//
// Usage:
//   bench_hotpath_buffer [--backend mem|mmap]
//                        [--compare REF.json] [--max-regress PCT]
//
//   --backend      which Volume implementation to drive (default mem;
//                  mmap uses throwaway volumes under $TMPDIR)
//   --compare      after measuring, diff ns/op against a reference JSON
//                  emitted by this binary and exit non-zero when any
//                  benchmark regressed by more than --max-regress percent
//                  (default 25) — the CI perf gate.
//
// Methodology: each loop is calibrated to a fixed iteration count, then run
// several times and the FASTEST run is reported (best-of-N rejects scheduler
// noise on shared machines; the minimum is the closest observable to the
// true cost of the loop).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>


#include "buffer/buffer_manager.h"
#include "disk/volume.h"

namespace starfish {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kRepetitions = 7;
constexpr double kTargetRunSeconds = 0.12;

VolumeKind g_backend = VolumeKind::kMem;
int g_volume_counter = 0;

/// A fresh volume of the selected backend; mmap volumes are throwaway
/// directories removed by the wrapper's destructor.
struct ScopedVolume {
  std::unique_ptr<Volume> volume;
  std::string dir;

  ScopedVolume() = default;
  ScopedVolume(ScopedVolume&& other) noexcept
      : volume(std::move(other.volume)), dir(std::move(other.dir)) {
    other.dir.clear();
  }
  ScopedVolume& operator=(ScopedVolume&&) = delete;

  ~ScopedVolume() {
    volume.reset();  // unmap before removing the files
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
  Volume* operator->() { return volume.get(); }
  Volume& operator*() { return *volume; }
};

void Fatal(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_hotpath_buffer: %s: %s\n", what,
               st.ToString().c_str());
  std::exit(1);
}

ScopedVolume MakeDisk(DiskOptions options = {}) {
  ScopedVolume scoped;
  if (g_backend == VolumeKind::kMmap) {
    // A per-process token keeps parallel runs from clobbering each other.
    static const uint64_t token =
        static_cast<uint64_t>(Clock::now().time_since_epoch().count());
    scoped.dir = (std::filesystem::temp_directory_path() /
                  ("starfish_bench_mmap_" + std::to_string(token) + "_" +
                   std::to_string(g_volume_counter++)))
                     .string();
    std::filesystem::remove_all(scoped.dir);
  }
  auto volume_or = CreateVolume(g_backend, options, scoped.dir);
  if (!volume_or.ok()) Fatal("create volume", volume_or.status());
  scoped.volume = std::move(volume_or).value();
  return scoped;
}

struct BenchResult {
  std::string name;
  double ops_per_sec = 0;
  double ns_per_op = 0;
  uint64_t iterations = 0;
  std::string unit;  // what one "op" is
};

/// Calibrates the iteration count so one run of `body(iters)` lasts about
/// kTargetRunSeconds, then reports the fastest of kRepetitions runs.
/// `body` must perform exactly `iters` operations.
template <typename Body>
BenchResult Measure(const std::string& name, const std::string& unit,
                    Body&& body) {
  uint64_t iters = 1024;
  for (;;) {
    const auto start = Clock::now();
    body(iters);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (elapsed.count() >= kTargetRunSeconds / 4 || iters >= (1ull << 30)) {
      const double scale =
          elapsed.count() > 0 ? kTargetRunSeconds / elapsed.count() : 4.0;
      if (scale > 1.0) {
        iters = static_cast<uint64_t>(static_cast<double>(iters) * scale);
      }
      break;
    }
    iters *= 8;
  }

  double best_seconds = 1e30;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto start = Clock::now();
    body(iters);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (elapsed.count() < best_seconds) best_seconds = elapsed.count();
  }

  BenchResult r;
  r.name = name;
  r.unit = unit;
  r.iterations = iters;
  r.ops_per_sec = static_cast<double>(iters) / best_seconds;
  r.ns_per_op = best_seconds * 1e9 / static_cast<double>(iters);
  return r;
}

// One hot page fixed over and over: the pure lookup + pin + LRU-touch path
// (same shape as micro_substrate's BM_BufferFixHit).
BenchResult BenchFixHit() {
  auto disk = MakeDisk();
  const PageId id = disk->Allocate().value();
  BufferOptions options;
  options.frame_count = 128;
  BufferManager bm(&*disk, options);
  {
    auto g = bm.Fix(id);
    if (!g.ok()) Fatal("warm-up fix", g.status());
  }
  return Measure("buffer_fix_hit", "fix", [&](uint64_t iters) {
    for (uint64_t i = 0; i < iters; ++i) {
      auto g = bm.Fix(id);
      if (!g.ok()) Fatal("fix", g.status());
    }
  });
}

// A 64-page working set cycled in order: every hit reorders the LRU list.
BenchResult BenchFixHitCycle() {
  auto disk = MakeDisk();
  const PageId first = disk->AllocateRun(64).value();
  BufferOptions options;
  options.frame_count = 128;
  BufferManager bm(&*disk, options);
  for (uint32_t i = 0; i < 64; ++i) {
    auto g = bm.Fix(first + i);
    if (!g.ok()) Fatal("warm-up fix", g.status());
  }
  return Measure("buffer_fix_hit_cycle64", "fix", [&](uint64_t iters) {
    for (uint64_t i = 0; i < iters; ++i) {
      auto g = bm.Fix(first + static_cast<PageId>(i & 63));
      if (!g.ok()) Fatal("fix", g.status());
    }
  });
}

// Working set twice the pool: every fix misses, reads one page and evicts a
// victim (clean — the page is never dirtied).
BenchResult BenchFixMissEvict() {
  auto disk = MakeDisk();
  constexpr uint32_t kPool = 256;
  constexpr uint32_t kPages = 2 * kPool;
  const PageId first = disk->AllocateRun(kPages).value();
  BufferOptions options;
  options.frame_count = kPool;
  BufferManager bm(&*disk, options);
  return Measure("buffer_fix_miss_evict", "fix", [&](uint64_t iters) {
    for (uint64_t i = 0; i < iters; ++i) {
      auto g = bm.Fix(first + static_cast<PageId>(i % kPages));
      if (!g.ok()) Fatal("fix", g.status());
    }
  });
}

// One chained prefetch of a complex object's pages into a cold-ish buffer;
// DropAll between rounds so every prefetch really reads.
BenchResult BenchPrefetchChained() {
  auto disk = MakeDisk();
  constexpr uint32_t kObjectPages = 32;
  const PageId first = disk->AllocateRun(kObjectPages).value();
  BufferOptions options;
  options.frame_count = 64;
  BufferManager bm(&*disk, options);
  std::vector<PageId> ids;
  for (uint32_t i = 0; i < kObjectPages; ++i) ids.push_back(first + i);
  return Measure("prefetch_chained", "page", [&](uint64_t iters) {
    for (uint64_t done = 0; done < iters; done += kObjectPages) {
      Status st = bm.Prefetch(ids, PrefetchMode::kChained);
      if (!st.ok()) Fatal("prefetch", st);
      st = bm.DropAll();
      if (!st.ok()) Fatal("drop", st);
    }
  });
}

// Sequential scan through the buffer: 64-page contiguous runs prefetched
// with kContiguousRuns (the segment-scan read path — disk ReadRun feeding
// buffer frames), dropped between rounds so every run really reads.
BenchResult BenchBufferReadRunSeq() {
  auto disk = MakeDisk();
  constexpr uint32_t kRun = 64;
  const PageId first = disk->AllocateRun(kRun).value();
  BufferOptions options;
  options.frame_count = 128;
  BufferManager bm(&*disk, options);
  std::vector<PageId> ids;
  for (uint32_t i = 0; i < kRun; ++i) ids.push_back(first + i);
  return Measure("buffer_read_run_seq", "page", [&](uint64_t iters) {
    for (uint64_t done = 0; done < iters; done += kRun) {
      Status st = bm.Prefetch(ids, PrefetchMode::kContiguousRuns);
      if (!st.ok()) Fatal("prefetch", st);
      st = bm.DropAll();
      if (!st.ok()) Fatal("drop", st);
    }
  });
}

// Raw sequential disk read into a private buffer, 64 pages per call, over a
// 16 MiB volume. Dominated by memcpy/memory bandwidth by design — this is
// the floor the copying API cannot go below.
BenchResult BenchReadRunSequential() {
  auto disk = MakeDisk();
  constexpr uint32_t kRun = 64;
  constexpr uint32_t kVolumePages = 8192;  // 16 MiB at 2 KiB pages
  const PageId first = disk->AllocateRun(kVolumePages).value();
  std::vector<char> buf(static_cast<size_t>(kRun) * disk->page_size());
  return Measure("disk_read_run_seq", "page", [&](uint64_t iters) {
    PageId at = first;
    for (uint64_t done = 0; done < iters; done += kRun) {
      Status st = disk->ReadRun(at, kRun, buf.data());
      if (!st.ok()) Fatal("read", st);
      at += kRun;
      if (at + kRun > first + kVolumePages) at = first;
    }
  });
}

#ifndef STARFISH_BENCH_NO_ZEROCOPY
// The zero-copy read path: same accounting as ReadRun, no copy at all.
BenchResult BenchReadRunZeroCopy() {
  auto disk = MakeDisk();
  constexpr uint32_t kRun = 64;
  constexpr uint32_t kVolumePages = 8192;
  const PageId first = disk->AllocateRun(kVolumePages).value();
  std::vector<const char*> views;
  return Measure("disk_read_run_seq_zerocopy", "page", [&](uint64_t iters) {
    PageId at = first;
    for (uint64_t done = 0; done < iters; done += kRun) {
      Status st = disk->ReadRunZeroCopy(at, kRun, &views);
      if (!st.ok()) Fatal("read", st);
      at += kRun;
      if (at + kRun > first + kVolumePages) at = first;
    }
  });
}
#endif

// Raw sequential disk write, 64 pages per call.
BenchResult BenchWriteRunSequential() {
  auto disk = MakeDisk();
  constexpr uint32_t kRun = 64;
  constexpr uint32_t kVolumePages = 8192;
  const PageId first = disk->AllocateRun(kVolumePages).value();
  std::vector<char> buf(static_cast<size_t>(kRun) * disk->page_size(), 'w');
  return Measure("disk_write_run_seq", "page", [&](uint64_t iters) {
    PageId at = first;
    for (uint64_t done = 0; done < iters; done += kRun) {
      Status st = disk->WriteRun(at, kRun, buf.data());
      if (!st.ok()) Fatal("write", st);
      at += kRun;
      if (at + kRun > first + kVolumePages) at = first;
    }
  });
}

void WriteJson(const std::vector<BenchResult>& results, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_hotpath_buffer: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"unit\": \"%s\", "
                 "\"ops_per_sec\": %.0f, \"ns_per_op\": %.2f, "
                 "\"iterations\": %llu}%s\n",
                 r.name.c_str(), r.unit.c_str(), r.ops_per_sec, r.ns_per_op,
                 static_cast<unsigned long long>(r.iterations),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Minimal reader for the JSON this binary writes: one benchmark object per
/// line with "name" and "ns_per_op" keys. Returns name -> ns_per_op.
std::map<std::string, double> ReadReference(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_hotpath_buffer: cannot read %s\n",
                 path.c_str());
    std::exit(1);
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t name_key = line.find("\"name\": \"");
    const size_t ns_key = line.find("\"ns_per_op\": ");
    if (name_key == std::string::npos || ns_key == std::string::npos) continue;
    const size_t name_start = name_key + std::strlen("\"name\": \"");
    const size_t name_end = line.find('"', name_start);
    if (name_end == std::string::npos) continue;
    out[line.substr(name_start, name_end - name_start)] =
        std::atof(line.c_str() + ns_key + std::strlen("\"ns_per_op\": "));
  }
  return out;
}

/// The CI perf gate: compares ns/op against the reference, fails on
/// regressions beyond `max_regress_pct`. Benchmarks present on one side
/// only are reported but do not fail the gate.
int Compare(const std::vector<BenchResult>& results,
            const std::string& reference_path, double max_regress_pct) {
  const std::map<std::string, double> reference =
      ReadReference(reference_path);
  std::printf("\nperf gate vs %s (fail above +%.0f%% ns/op)\n",
              reference_path.c_str(), max_regress_pct);
  std::printf("%-26s %12s %12s %9s\n", "benchmark", "ref ns/op", "now ns/op",
              "delta");
  int failures = 0;
  for (const BenchResult& r : results) {
    auto it = reference.find(r.name);
    if (it == reference.end()) {
      std::printf("%-26s %12s %12.2f %9s\n", r.name.c_str(), "-", r.ns_per_op,
                  "new");
      continue;
    }
    const double delta_pct = (r.ns_per_op - it->second) / it->second * 100.0;
    const bool fail = delta_pct > max_regress_pct;
    std::printf("%-26s %12.2f %12.2f %+8.1f%%%s\n", r.name.c_str(),
                it->second, r.ns_per_op, delta_pct,
                fail ? "  <-- REGRESSION" : "");
    if (fail) ++failures;
  }
  for (const auto& [name, ns] : reference) {
    bool measured = false;
    for (const BenchResult& r : results) measured |= (r.name == name);
    if (!measured) {
      std::printf("%-26s %12.2f %12s %9s\n", name.c_str(), ns, "-", "gone");
    }
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_hotpath_buffer: %d benchmark(s) regressed more than "
                 "%.0f%%\n",
                 failures, max_regress_pct);
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace starfish

int main(int argc, char** argv) {
  using namespace starfish;
  std::string compare_path;
  double max_regress_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--backend" && i + 1 < argc) {
      const std::string backend = argv[++i];
      if (backend == "mem") {
        g_backend = VolumeKind::kMem;
      } else if (backend == "mmap") {
        g_backend = VolumeKind::kMmap;
      } else {
        std::fprintf(stderr, "unknown backend '%s' (mem|mmap)\n",
                     backend.c_str());
        return 2;
      }
    } else if (arg == "--compare" && i + 1 < argc) {
      compare_path = argv[++i];
    } else if (arg == "--max-regress" && i + 1 < argc) {
      max_regress_pct = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--backend mem|mmap] [--compare REF.json] "
                   "[--max-regress PCT]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<BenchResult> results;
  results.push_back(BenchFixHit());
  results.push_back(BenchFixHitCycle());
  results.push_back(BenchFixMissEvict());
  results.push_back(BenchPrefetchChained());
  results.push_back(BenchBufferReadRunSeq());
  results.push_back(BenchReadRunSequential());
#ifndef STARFISH_BENCH_NO_ZEROCOPY
  results.push_back(BenchReadRunZeroCopy());
#endif
  results.push_back(BenchWriteRunSequential());

  std::printf("backend: %s\n", ToString(g_backend).c_str());
  std::printf("%-26s %14s %12s   per-op unit\n", "benchmark", "ops/sec",
              "ns/op");
  for (const BenchResult& r : results) {
    std::printf("%-26s %14.0f %12.2f   %s\n", r.name.c_str(), r.ops_per_sec,
                r.ns_per_op, r.unit.c_str());
  }
  const char* json = g_backend == VolumeKind::kMem ? "BENCH_hotpath.json"
                                                   : "BENCH_hotpath_mmap.json";
  WriteJson(results, json);
  std::printf("\nwrote %s\n", json);

  if (!compare_path.empty()) {
    return Compare(results, compare_path, max_regress_pct);
  }
  return 0;
}
