// Generated-workload throughput: every scenario family of the workload
// generator replayed against a config matrix (model x backend x objcache),
// reporting ops/sec and ns/op per cell. This is the traffic-shaped load
// source the ROADMAP's server item will reuse — the same seeded traces the
// differential tests verify, here replayed in bench mode (reads issued,
// oracle off) so the numbers measure the store, not the comparator.
//
// Each cell first does one VERIFIED replay of its trace (fresh store) so a
// cell that would publish numbers for a diverging configuration fails loudly
// instead; the timed repetitions then run unverified on fresh stores and
// the best wall-clock wins.
//
// Writes BENCH_scenarios.json.
//
// Usage:
//   bench_scenarios [--tiny] [--seed N]
//
//   --tiny   CI-sized run (short traces, one timed repetition)
//   --seed   base seed for the scenario families (default 20260809)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/complex_object_store.h"
#include "workload/replayer.h"
#include "workload/scenario.h"

namespace starfish::workload {
namespace {

using Clock = std::chrono::steady_clock;

struct BenchConfig {
  uint64_t seed = 20260809;
  uint32_t n_ops = 4000;
  int repetitions = 3;
};

struct RowResult {
  std::string name;
  std::string family;
  std::string model;
  std::string backend;
  bool objcache = false;
  double ops_per_sec = 0;
  double ns_per_op = 0;
  uint64_t ops = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t scans = 0;
};

void Fatal(const std::string& what, const Status& st) {
  std::fprintf(stderr, "bench_scenarios: %s: %s\n", what.c_str(),
               st.ToString().c_str());
  std::exit(1);
}

std::string Slug(std::string s) {
  for (char& c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    if (!ok) c = '_';
  }
  return s;
}

StoreOptions CellOptions(StorageModelKind model, VolumeKind backend,
                         bool objcache, const std::string& dir) {
  StoreOptions options;
  options.model = model;
  options.backend = backend;
  if (backend != VolumeKind::kMem) options.path = dir;
  options.buffer_frames = 96;  // small pool: replays churn pages, as in tests
  options.objcache.enabled = objcache;
  return options;
}

RowResult RunCell(const Scenario& scenario, const Trace& trace,
                  StorageModelKind model, VolumeKind backend, bool objcache,
                  const BenchConfig& config,
                  const std::shared_ptr<const Schema>& schema,
                  const std::string& dir) {
  // Guard replay: full oracle on. Numbers for a diverging config are noise.
  {
    std::filesystem::remove_all(dir);
    auto store_or = ComplexObjectStore::Open(
        schema, CellOptions(model, backend, objcache, dir));
    if (!store_or.ok()) Fatal("open store", store_or.status());
    auto store = std::move(store_or).value();
    TraceReplayer replayer(trace, schema);
    auto stats_or = replayer.Replay(store.get(), ReplayOptions{});
    if (!stats_or.ok()) Fatal(scenario.name + " verified replay",
                              stats_or.status());
    const Status final_state = replayer.VerifyFinalState(store.get());
    if (!final_state.ok()) Fatal(scenario.name + " final state", final_state);
  }

  // Timed repetitions: bench mode, fresh store each time, best run wins.
  double best_seconds = 1e30;
  ReplayStats stats;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    std::filesystem::remove_all(dir);
    auto store_or = ComplexObjectStore::Open(
        schema, CellOptions(model, backend, objcache, dir));
    if (!store_or.ok()) Fatal("open store", store_or.status());
    auto store = std::move(store_or).value();
    TraceReplayer replayer(trace, schema);
    ReplayOptions options;
    options.verify_reads = false;
    const auto start = Clock::now();
    auto stats_or = replayer.Replay(store.get(), options);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (!stats_or.ok()) Fatal(scenario.name + " bench replay",
                              stats_or.status());
    stats = stats_or.value();
    if (elapsed.count() < best_seconds) best_seconds = elapsed.count();
  }
  std::filesystem::remove_all(dir);

  RowResult r;
  r.family = scenario.name;
  r.model = ToString(model);
  r.backend = backend == VolumeKind::kMem ? "mem" : "mmap";
  r.objcache = objcache;
  r.name = "scenario_" + Slug(r.family) + "_" + Slug(r.model) + "_" +
           r.backend + "_" + (objcache ? "cache" : "plain");
  r.ops = stats.ops;
  r.reads = stats.reads;
  r.writes = stats.writes;
  r.scans = stats.scans;
  r.ops_per_sec = static_cast<double>(stats.ops) / best_seconds;
  r.ns_per_op = best_seconds * 1e9 / static_cast<double>(stats.ops);
  return r;
}

void WriteJson(const std::vector<RowResult>& results, uint64_t seed,
               const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scenarios: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"seed\": %llu,\n  \"benchmarks\": [\n",
               static_cast<unsigned long long>(seed));
  for (size_t i = 0; i < results.size(); ++i) {
    const RowResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"family\": \"%s\", "
                 "\"model\": \"%s\", \"backend\": \"%s\", \"objcache\": %s, "
                 "\"ops_per_sec\": %.0f, \"ns_per_op\": %.2f, "
                 "\"ops\": %llu, \"reads\": %llu, \"writes\": %llu, "
                 "\"scans\": %llu}%s\n",
                 r.name.c_str(), r.family.c_str(), r.model.c_str(),
                 r.backend.c_str(), r.objcache ? "true" : "false",
                 r.ops_per_sec, r.ns_per_op,
                 static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.reads),
                 static_cast<unsigned long long>(r.writes),
                 static_cast<unsigned long long>(r.scans),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace starfish::workload

int main(int argc, char** argv) {
  using namespace starfish;
  using namespace starfish::workload;
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      config.n_ops = 300;
      config.repetitions = 1;
    } else if (arg == "--seed" && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--tiny] [--seed N]\n", argv[0]);
      return 2;
    }
  }

  const auto schema = MakeWorkloadSchema();
  const auto families = ScenarioFamilies(config.seed);

  // The config axis: the paper's recommended NSM variant and the striped
  // direct model, mem (pure CPU path) and mmap (page I/O path), objcache
  // off and on. The full five-model sweep lives in the differential tests;
  // the bench keeps the matrix small enough to read.
  const StorageModelKind kModels[] = {StorageModelKind::kDasdbsNsm,
                                      StorageModelKind::kDsm};
  const VolumeKind kBackends[] = {VolumeKind::kMem, VolumeKind::kMmap};

  std::printf("scenario families: %zu, ops/trace: %u, seed: %llu\n",
              families.size(), config.n_ops,
              static_cast<unsigned long long>(config.seed));
  std::printf("%-52s %12s %10s %7s %7s\n", "benchmark", "ops/sec", "ns/op",
              "reads", "writes");

  const std::string dir_base =
      (std::filesystem::temp_directory_path() /
       ("starfish_bench_scenarios_" +
        std::to_string(static_cast<uint64_t>(
            Clock::now().time_since_epoch().count()))))
          .string();
  int dir_counter = 0;

  std::vector<RowResult> results;
  for (const Scenario& family : families) {
    ScenarioParams params = family.params;
    params.n_ops = config.n_ops;
    auto trace_or = GenerateTrace(params);
    if (!trace_or.ok()) Fatal(family.name + " generate", trace_or.status());
    const Trace& trace = trace_or.value();
    for (StorageModelKind model : kModels) {
      for (VolumeKind backend : kBackends) {
        for (bool objcache : {false, true}) {
          const std::string dir =
              dir_base + "_" + std::to_string(dir_counter++);
          RowResult r = RunCell(family, trace, model, backend, objcache,
                                config, schema, dir);
          std::printf("%-52s %12.0f %10.2f %7llu %7llu\n", r.name.c_str(),
                      r.ops_per_sec, r.ns_per_op,
                      static_cast<unsigned long long>(r.reads),
                      static_cast<unsigned long long>(r.writes));
          results.push_back(std::move(r));
        }
      }
    }
  }

  WriteJson(results, config.seed, "BENCH_scenarios.json");
  std::printf("wrote BENCH_scenarios.json (%zu rows)\n", results.size());
  return 0;
}
