// Reproduces Figure 6: query 2b page I/Os per loop as a function of the
// database size (log scale in the paper), with the analytic best case (Ab,
// unbounded cache) and worst case (Aw ~ query 2a, no cache hits) alongside
// the measured values. The direct models overflow the 1200-frame buffer
// once the database outgrows it and drift toward their worst case;
// DASDBS-NSM's working set stays cached.

#include <cstdio>
#include <string>
#include <vector>

#include "core/complex_object_store.h"
#include "cost/analytical_model.h"
#include "harness.h"
#include "models/dasdbs_nsm_model.h"
#include "models/direct_model.h"
#include "util/random.h"

namespace starfish::bench {
namespace {

struct SeriesPoint {
  uint64_t n_objects;
  double measured;
  double best_case;
  double worst_case;
};

/// One cache-tier row of the JSON artifact: the page-level hit ratio the
/// figure studies, next to the assembly-level hit ratio of the object
/// cache running a skewed Get mix over the same model. Paper stdout stays
/// byte-identical — these rows exist only in BENCH_fig6_cache.json.
struct CacheTierRow {
  std::string model;
  double page_hit_ratio = 0;
  double assembly_hit_ratio = 0;
};

Result<CacheTierRow> RunCacheTier(const BenchmarkDatabase& db,
                                  StorageModelKind kind) {
  StoreOptions options;
  options.model = kind;
  options.objcache.enabled = true;
  STARFISH_ASSIGN_OR_RETURN(auto store,
                            ComplexObjectStore::Open(db.schema(), options));
  for (const auto& object : db.objects()) {
    STARFISH_RETURN_NOT_OK(store->Put(object.ref, object.tuple));
  }
  store->ResetStats();
  const size_t n = db.objects().size();
  const size_t hot = n / 10 == 0 ? 1 : n / 10;
  Rng rng(0xF16C);
  for (int i = 0; i < 20000; ++i) {
    const size_t idx = rng.Uniform(10) != 0
                           ? static_cast<size_t>(rng.Uniform(hot))
                           : static_cast<size_t>(rng.Uniform(n));
    STARFISH_RETURN_NOT_OK(store->Get(db.objects()[idx].ref).status());
  }
  const BufferStats buffer = store->stats().buffer;
  CacheTierRow row;
  row.model = ModelLabel(kind);
  row.page_hit_ratio = buffer.fixes == 0 ? 0.0
                                         : static_cast<double>(buffer.hits) /
                                               static_cast<double>(buffer.fixes);
  row.assembly_hit_ratio = store->objcache_stats().HitRatio();
  return row;
}

void WriteJson(const std::vector<std::vector<SeriesPoint>>& series,
               const StorageModelKind* kinds,
               const std::vector<CacheTierRow>& cache_rows) {
  const char* path = "BENCH_fig6_cache.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_fig6_cache: cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"series\": [\n");
  for (size_t ki = 0; ki < series.size(); ++ki) {
    std::fprintf(f, "    {\"model\": \"%s\", \"points\": [\n",
                 ModelLabel(kinds[ki]).c_str());
    for (size_t i = 0; i < series[ki].size(); ++i) {
      const SeriesPoint& p = series[ki][i];
      std::fprintf(f,
                   "      {\"objects\": %llu, \"measured\": %.4f, "
                   "\"best_case\": %.4f, \"worst_case\": %.4f}%s\n",
                   static_cast<unsigned long long>(p.n_objects), p.measured,
                   p.best_case, p.worst_case,
                   i + 1 < series[ki].size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", ki + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"cache_tiers\": [\n");
  for (size_t i = 0; i < cache_rows.size(); ++i) {
    const CacheTierRow& r = cache_rows[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"page_hit_ratio\": %.4f, "
                 "\"assembly_hit_ratio\": %.4f}%s\n",
                 r.model.c_str(), r.page_hit_ratio, r.assembly_hit_ratio,
                 i + 1 < cache_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
}

int Run() {
  PrintBanner("Figure 6",
              "Query 2b page I/Os per loop vs database size (loops = n/5, "
              "1200-frame buffer). 'Ab' = analytic best case (unbounded "
              "cache), 'Aw' = analytic worst case (no cache hits).");

  const std::vector<uint64_t> sizes = {100, 250, 500, 1000, 1500, 2250, 3000};
  const StorageModelKind kinds[] = {StorageModelKind::kDsm,
                                    StorageModelKind::kDasdbsDsm,
                                    StorageModelKind::kDasdbsNsm};

  std::vector<std::vector<SeriesPoint>> series(3);
  for (uint64_t n : sizes) {
    GeneratorConfig config;
    config.n_objects = n;
    auto db = BenchmarkDatabase::Generate(config);
    if (!db.ok()) return 1;
    const uint32_t loops = static_cast<uint32_t>(n / 5);
    auto workload = DeriveWorkloadParams(*db, loops, 2012);
    if (!workload.ok()) return 1;

    BufferOptions buffer;
    buffer.frame_count = 1200;
    QueryConfig query;
    query.loops = loops;

    for (size_t ki = 0; ki < 3; ++ki) {
      auto result = BenchmarkRunner::RunOne(kinds[ki], *db, buffer, query);
      if (!result.ok()) return 1;

      // Analytic bounds from a freshly calibrated model.
      double best = 0, worst = 0;
      StorageEngine engine;
      ModelConfig mc;
      mc.schema = db->schema();
      if (kinds[ki] == StorageModelKind::kDasdbsNsm) {
        auto model = DasdbsNsmModel::Create(&engine, mc);
        if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
        auto rels = CalibrateDasdbsNsm(model->get(), *db);
        if (!rels.ok()) return 1;
        const auto layout =
            DeriveNormalizedLayout(model->get()->decomposition());
        const auto est =
            cost::EstimateDasdbsNsm(rels.value(), layout, *workload);
        best = est.q2b;
        worst = est.q2a;
      } else {
        DirectModelOptions options;
        options.partial_reads = kinds[ki] == StorageModelKind::kDasdbsDsm;
        options.change_attr_updates = options.partial_reads;
        auto model = DirectModel::Create(&engine, mc, options);
        if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
        auto rel = CalibrateDirect(model->get(), *db);
        if (!rel.ok()) return 1;
        const auto est = options.partial_reads
                             ? cost::EstimateDasdbsDsm(rel.value(), *workload)
                             : cost::EstimateDsm(rel.value(), *workload);
        best = est.q2b;
        worst = est.q2a;
      }
      series[ki].push_back(SeriesPoint{n, result->queries.q2b.Pages(), best,
                                       worst});
    }
  }

  for (size_t ki = 0; ki < 3; ++ki) {
    std::printf("\n%s — query 2b pages per loop:\n",
                ModelLabel(kinds[ki]).c_str());
    TablePrinter table({"objects", "measured", "Ab (best)", "Aw (worst)"});
    for (const SeriesPoint& p : series[ki]) {
      table.AddRow({std::to_string(p.n_objects), Cell(p.measured),
                    Cell(p.best_case), Cell(p.worst_case)});
    }
    table.Print();
  }

  std::printf(
      "\nPaper anchors (Fig. 6, 1500 objects): DSM ~16.5 pages/loop without "
      "overflow climbing toward ~65 with it; DASDBS-DSM ~8.5; DASDBS-NSM "
      "~2.1 throughout. Shape to check: measured ~= Ab for small databases, "
      "the direct models drift toward Aw once the database outgrows the "
      "buffer, DASDBS-NSM stays near Ab at every size.\n");

  // JSON artifact: the figure's series plus the object-cache tier's
  // assembly-hit ratio next to the page-hit ratio (a skewed Get mix over a
  // 1000-object store per model). Stdout above is golden-diffed in CI, so
  // nothing about this pass may print there.
  {
    GeneratorConfig config;
    config.n_objects = 1000;
    auto db = BenchmarkDatabase::Generate(config);
    if (!db.ok()) return 1;
    std::vector<CacheTierRow> cache_rows;
    for (size_t ki = 0; ki < 3; ++ki) {
      auto row = RunCacheTier(*db, kinds[ki]);
      if (!row.ok()) return 1;
      cache_rows.push_back(std::move(row).value());
    }
    WriteJson(series, kinds, cache_rows);
  }
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
