// Reproduces Figure 6: query 2b page I/Os per loop as a function of the
// database size (log scale in the paper), with the analytic best case (Ab,
// unbounded cache) and worst case (Aw ~ query 2a, no cache hits) alongside
// the measured values. The direct models overflow the 1200-frame buffer
// once the database outgrows it and drift toward their worst case;
// DASDBS-NSM's working set stays cached.

#include <cstdio>
#include <vector>

#include "cost/analytical_model.h"
#include "harness.h"
#include "models/dasdbs_nsm_model.h"
#include "models/direct_model.h"

namespace starfish::bench {
namespace {

struct SeriesPoint {
  uint64_t n_objects;
  double measured;
  double best_case;
  double worst_case;
};

int Run() {
  PrintBanner("Figure 6",
              "Query 2b page I/Os per loop vs database size (loops = n/5, "
              "1200-frame buffer). 'Ab' = analytic best case (unbounded "
              "cache), 'Aw' = analytic worst case (no cache hits).");

  const std::vector<uint64_t> sizes = {100, 250, 500, 1000, 1500, 2250, 3000};
  const StorageModelKind kinds[] = {StorageModelKind::kDsm,
                                    StorageModelKind::kDasdbsDsm,
                                    StorageModelKind::kDasdbsNsm};

  std::vector<std::vector<SeriesPoint>> series(3);
  for (uint64_t n : sizes) {
    GeneratorConfig config;
    config.n_objects = n;
    auto db = BenchmarkDatabase::Generate(config);
    if (!db.ok()) return 1;
    const uint32_t loops = static_cast<uint32_t>(n / 5);
    auto workload = DeriveWorkloadParams(*db, loops, 2012);
    if (!workload.ok()) return 1;

    BufferOptions buffer;
    buffer.frame_count = 1200;
    QueryConfig query;
    query.loops = loops;

    for (size_t ki = 0; ki < 3; ++ki) {
      auto result = BenchmarkRunner::RunOne(kinds[ki], *db, buffer, query);
      if (!result.ok()) return 1;

      // Analytic bounds from a freshly calibrated model.
      double best = 0, worst = 0;
      StorageEngine engine;
      ModelConfig mc;
      mc.schema = db->schema();
      if (kinds[ki] == StorageModelKind::kDasdbsNsm) {
        auto model = DasdbsNsmModel::Create(&engine, mc);
        if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
        auto rels = CalibrateDasdbsNsm(model->get(), *db);
        if (!rels.ok()) return 1;
        const auto layout =
            DeriveNormalizedLayout(model->get()->decomposition());
        const auto est =
            cost::EstimateDasdbsNsm(rels.value(), layout, *workload);
        best = est.q2b;
        worst = est.q2a;
      } else {
        DirectModelOptions options;
        options.partial_reads = kinds[ki] == StorageModelKind::kDasdbsDsm;
        options.change_attr_updates = options.partial_reads;
        auto model = DirectModel::Create(&engine, mc, options);
        if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
        auto rel = CalibrateDirect(model->get(), *db);
        if (!rel.ok()) return 1;
        const auto est = options.partial_reads
                             ? cost::EstimateDasdbsDsm(rel.value(), *workload)
                             : cost::EstimateDsm(rel.value(), *workload);
        best = est.q2b;
        worst = est.q2a;
      }
      series[ki].push_back(SeriesPoint{n, result->queries.q2b.Pages(), best,
                                       worst});
    }
  }

  for (size_t ki = 0; ki < 3; ++ki) {
    std::printf("\n%s — query 2b pages per loop:\n",
                ModelLabel(kinds[ki]).c_str());
    TablePrinter table({"objects", "measured", "Ab (best)", "Aw (worst)"});
    for (const SeriesPoint& p : series[ki]) {
      table.AddRow({std::to_string(p.n_objects), Cell(p.measured),
                    Cell(p.best_case), Cell(p.worst_case)});
    }
    table.Print();
  }

  std::printf(
      "\nPaper anchors (Fig. 6, 1500 objects): DSM ~16.5 pages/loop without "
      "overflow climbing toward ~65 with it; DASDBS-DSM ~8.5; DASDBS-NSM "
      "~2.1 throughout. Shape to check: measured ~= Ab for small databases, "
      "the direct models drift toward Aw once the database outgrows the "
      "buffer, DASDBS-NSM stays near Ab at every size.\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
