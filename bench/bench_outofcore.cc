// Out-of-core benchmark: the paper's access mixes against REAL device I/O.
//
// Every number in the paper-table benches flows through the in-memory
// arena (mem) or the kernel page cache (mmap) — a "miss" never touches a
// device, so the Equation-1 model (disk_timing.h) has never been compared
// against hardware. This bench scales a volume past the buffer pool (and
// ideally past memory), replays Table 5/6-style access mixes over the mmap
// and O_DIRECT backends, and reports modelled-vs-measured milliseconds per
// mix — the column that validates (or falsifies) TimedVolume's model.
//
// Access mixes (shaped after the paper's storage models' I/O patterns):
//   seq_scan_run32      sequential scan, 32-page prefetch runs (query 3)
//   fetch_nsm_calls     object fetch as 8 single-page calls (NSM-like:
//                       ~1 page per call, call-dominated)
//   fetch_dasdbs_chained object fetch as root fix + one chained call for
//                       the other 7 pages (DASDBS-like: 2 calls/object)
//   fetch_dsm_run       object fetch as one contiguous 8-page run
//                       (clustered, transfer-dominated)
//   hot_cold_fixes      Table 6-style fix mix: 80% of fixes in a hot 10%
//                       region, 20% uniform (hit/miss blend through LRU)
//
// The "model ranking" the paper cares about is the ORDER of the three
// object-fetch mixes: Eq. 1 says calls dominate (d1 >> d2), so NSM-like
// fetching must be slowest per object. The JSON reports the modelled order
// next to the measured order per backend.
//
// Memory-limit handling (documented best-effort): --mem-limit-mb (or the
// detected cgroup/total-RAM limit) is reported and compared against
// --data-mb. The bench cannot evict the kernel page cache without
// privileges, so mmap rows are only honest when data >> limit; the direct
// rows bypass the cache entirely and are honest at ANY size — that is the
// point of the backend. The buffer pool is always sized at 1/16 of the
// data, so pool misses are real in every configuration.
//
// Usage:
//   bench_outofcore [--backend mmap|direct|both] [--data-mb N]
//                   [--mem-limit-mb N] [--page-size N] [--dir PATH]
//                   [--tiny] [--keep]
//
//   --tiny    16 MiB of data (CI smoke); default is 256 MiB.
//   --keep    leave the volume directories behind for inspection.
//
// Writes BENCH_outofcore.json. Exits 0 with "direct_skipped": true when the
// filesystem rejects O_DIRECT (tmpfs/overlayfs) so CI can archive the mmap
// numbers unconditionally.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "disk/direct_volume.h"
#include "disk/disk_timing.h"
#include "disk/volume.h"
#include "util/aligned_buffer.h"
#include "util/random.h"

namespace starfish {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kPagesPerObject = 8;

struct Config {
  std::string backend = "both";
  uint64_t data_mb = 256;
  uint64_t mem_limit_mb = 0;  // 0 = detect
  uint32_t page_size = 4096;
  std::string dir = "bench_outofcore_volume";
  bool keep = false;
};

struct MixResult {
  std::string mix;
  std::string backend;
  uint64_t read_calls = 0;
  uint64_t pages_read = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  double measured_ms = 0;
  double modelled_ms = 0;
  double objects = 0;  ///< work units (objects / pages / fixes)
};

void Fatal(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_outofcore: %s: %s\n", what,
               st.ToString().c_str());
  std::exit(1);
}

/// First number in `path`, or 0 when absent/unparseable ("max" -> 0).
uint64_t ReadNumberFile(const char* path) {
  std::ifstream in(path);
  uint64_t value = 0;
  if (in && (in >> value)) return value;
  return 0;
}

/// Best-effort memory budget of this process: cgroup v2, cgroup v1, then
/// MemTotal. Returns bytes and names the source.
uint64_t DetectMemLimit(std::string* source) {
  if (uint64_t v2 = ReadNumberFile("/sys/fs/cgroup/memory.max"); v2 > 0) {
    *source = "cgroup v2 memory.max";
    return v2;
  }
  if (uint64_t v1 =
          ReadNumberFile("/sys/fs/cgroup/memory/memory.limit_in_bytes");
      v1 > 0 && v1 < (uint64_t{1} << 60)) {
    *source = "cgroup v1 limit_in_bytes";
    return v1;
  }
  std::ifstream meminfo("/proc/meminfo");
  std::string key;
  uint64_t kb = 0;
  while (meminfo >> key >> kb) {
    if (key == "MemTotal:") {
      *source = "/proc/meminfo MemTotal";
      return kb * 1024;
    }
    meminfo.ignore(1024, '\n');
  }
  *source = "unknown (no cgroup, no /proc/meminfo)";
  return 0;
}

/// Fills the volume with `n_pages` of patterned data, 64-page runs.
void LoadVolume(Volume* disk, uint64_t n_pages, uint32_t page_size) {
  const uint32_t run = 64;
  AlignedBuffer chunk;
  if (!chunk.Reserve(static_cast<size_t>(run) * page_size, 4096)) {
    Fatal("load", Status::ResourceExhausted("chunk alloc"));
  }
  for (uint64_t first = 0; first < n_pages; first += run) {
    const uint32_t n =
        static_cast<uint32_t>(std::min<uint64_t>(run, n_pages - first));
    if (auto id = disk->AllocateRun(n); !id.ok()) Fatal("alloc", id.status());
    for (uint32_t p = 0; p < n; ++p) {
      std::memset(chunk.data() + static_cast<size_t>(p) * page_size,
                  static_cast<int>('A' + (first + p) % 23), page_size);
    }
    if (auto st = disk->WriteRun(static_cast<PageId>(first), n, chunk.data());
        !st.ok()) {
      Fatal("load write", st);
    }
  }
  if (auto st = disk->Sync(); !st.ok()) Fatal("load sync", st);
}

/// One access mix over an already-loaded volume; returns counters + wall ms.
template <typename Body>
MixResult RunMix(const std::string& mix, const std::string& backend,
                 BufferManager* bm, Volume* disk, double objects,
                 const Body& body) {
  if (auto st = bm->DropAll(); !st.ok()) Fatal("drop", st);
  disk->ResetStats();
  bm->ResetStats();
  const auto start = Clock::now();
  body();
  const auto stop = Clock::now();
  const IoStats io = disk->stats();
  const BufferStats buffer = bm->stats();
  MixResult r;
  r.mix = mix;
  r.backend = backend;
  r.read_calls = io.read_calls;
  r.pages_read = io.pages_read;
  r.buffer_hits = buffer.hits;
  r.buffer_misses = buffer.misses;
  r.measured_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  r.modelled_ms = LinearTimingModel{}.Cost(io);  // the paper's Eq.-1 disk
  r.objects = objects;
  return r;
}

void FixOnce(BufferManager* bm, PageId id) {
  auto guard = bm->Fix(id);
  if (!guard.ok()) Fatal("fix", guard.status());
}

std::vector<MixResult> RunBackend(const std::string& backend, Volume* disk,
                                  uint64_t n_pages, uint32_t frames) {
  BufferOptions buffer_options;
  buffer_options.frame_count = frames;
  buffer_options.frame_alignment = disk->io_buffer_alignment();
  BufferManager bm(disk, buffer_options);

  const uint64_t n_objects = n_pages / kPagesPerObject;
  // Touch ~1/4 of the objects per fetch mix, in a deterministic shuffle.
  const uint64_t n_fetch = std::max<uint64_t>(1, n_objects / 4);
  std::vector<MixResult> results;

  results.push_back(RunMix(
      "seq_scan_run32", backend, &bm, disk, static_cast<double>(n_pages),
      [&] {
        std::vector<PageId> run;
        for (uint64_t first = 0; first < n_pages; first += 32) {
          const uint32_t n =
              static_cast<uint32_t>(std::min<uint64_t>(32, n_pages - first));
          run.clear();
          for (uint32_t i = 0; i < n; ++i) {
            run.push_back(static_cast<PageId>(first + i));
          }
          if (auto st = bm.Prefetch(run, PrefetchMode::kContiguousRuns);
              !st.ok()) {
            Fatal("prefetch", st);
          }
          for (PageId id : run) FixOnce(&bm, id);
        }
      }));

  // The three object-fetch shapes share one deterministic object sequence,
  // so the mixes differ ONLY in how the same pages are grouped into calls.
  const auto object_at = [n_objects](Rng& rng) {
    return static_cast<PageId>(rng.Uniform(n_objects) * kPagesPerObject);
  };

  results.push_back(RunMix(
      "fetch_nsm_calls", backend, &bm, disk, static_cast<double>(n_fetch),
      [&] {
        Rng rng(42);
        for (uint64_t i = 0; i < n_fetch; ++i) {
          const PageId root = object_at(rng);
          for (uint32_t p = 0; p < kPagesPerObject; ++p) {
            FixOnce(&bm, root + p);  // 8 single-page read calls
          }
        }
      }));

  results.push_back(RunMix(
      "fetch_dasdbs_chained", backend, &bm, disk,
      static_cast<double>(n_fetch), [&] {
        Rng rng(42);
        std::vector<PageId> rest;
        for (uint64_t i = 0; i < n_fetch; ++i) {
          const PageId root = object_at(rng);
          FixOnce(&bm, root);  // root page: one call
          rest.clear();
          for (uint32_t p = 1; p < kPagesPerObject; ++p) {
            rest.push_back(root + p);
          }
          if (auto st = bm.Prefetch(rest, PrefetchMode::kChained); !st.ok()) {
            Fatal("prefetch", st);
          }
          for (PageId id : rest) FixOnce(&bm, id);
        }
      }));

  results.push_back(RunMix(
      "fetch_dsm_run", backend, &bm, disk, static_cast<double>(n_fetch),
      [&] {
        Rng rng(42);
        std::vector<PageId> all;
        for (uint64_t i = 0; i < n_fetch; ++i) {
          const PageId root = object_at(rng);
          all.clear();
          for (uint32_t p = 0; p < kPagesPerObject; ++p) {
            all.push_back(root + p);
          }
          if (auto st = bm.Prefetch(all, PrefetchMode::kContiguousRuns);
              !st.ok()) {
            Fatal("prefetch", st);
          }
          for (PageId id : all) FixOnce(&bm, id);
        }
      }));

  const uint64_t n_fixes = std::max<uint64_t>(1000, n_pages / 2);
  results.push_back(RunMix(
      "hot_cold_fixes", backend, &bm, disk, static_cast<double>(n_fixes),
      [&] {
        Rng rng(7);
        const uint64_t hot_span = std::max<uint64_t>(1, n_pages / 10);
        for (uint64_t i = 0; i < n_fixes; ++i) {
          const bool hot = rng.NextDouble() < 0.8;
          const PageId id = static_cast<PageId>(
              hot ? rng.Uniform(hot_span)
                  : rng.Uniform(n_pages));
          FixOnce(&bm, id);
        }
      }));

  return results;
}

/// Object-fetch mixes ordered slowest-first by `metric` — the "ranking".
std::vector<std::string> Ranking(const std::vector<MixResult>& results,
                                 double MixResult::*metric) {
  std::vector<const MixResult*> fetches;
  for (const MixResult& r : results) {
    if (r.mix.rfind("fetch_", 0) == 0) fetches.push_back(&r);
  }
  std::sort(fetches.begin(), fetches.end(),
            [metric](const MixResult* a, const MixResult* b) {
              return a->*metric > b->*metric;
            });
  std::vector<std::string> order;
  for (const MixResult* r : fetches) order.push_back(r->mix);
  return order;
}

void PrintResults(const std::vector<MixResult>& results) {
  std::printf("%-22s %-7s %10s %10s %8s %8s %12s %12s %8s\n", "MIX",
              "BACKEND", "calls", "pages", "hits", "misses", "measured ms",
              "modelled ms", "ratio");
  for (const MixResult& r : results) {
    std::printf("%-22s %-7s %10" PRIu64 " %10" PRIu64 " %8" PRIu64
                " %8" PRIu64 " %12.2f %12.2f %8.3f\n",
                r.mix.c_str(), r.backend.c_str(), r.read_calls, r.pages_read,
                r.buffer_hits, r.buffer_misses, r.measured_ms, r.modelled_ms,
                r.modelled_ms > 0 ? r.measured_ms / r.modelled_ms : 0.0);
  }
}

void AppendJsonList(std::string* out, const std::vector<std::string>& items) {
  out->push_back('[');
  for (size_t i = 0; i < items.size(); ++i) {
    *out += "\"" + items[i] + "\"";
    if (i + 1 < items.size()) *out += ", ";
  }
  out->push_back(']');
}

int Run(const Config& config) {
  const uint32_t page_size = config.page_size;
  const uint64_t data_bytes = config.data_mb << 20;
  const uint64_t n_pages = data_bytes / page_size;
  const uint32_t frames = static_cast<uint32_t>(
      std::max<uint64_t>(64, n_pages / 16));  // 16x out-of-core vs the pool

  std::string limit_source;
  uint64_t mem_limit = config.mem_limit_mb > 0
                           ? config.mem_limit_mb << 20
                           : DetectMemLimit(&limit_source);
  if (config.mem_limit_mb > 0) limit_source = "--mem-limit-mb";

  std::printf("out-of-core bench: %" PRIu64 " MiB data, %" PRIu64
              " pages of %u B, pool %u frames (%.1f MiB)\n",
              config.data_mb, n_pages, page_size,
              frames, frames * static_cast<double>(page_size) / (1 << 20));
  std::printf("memory budget: %.0f MiB (%s)\n",
              mem_limit / double(1 << 20), limit_source.c_str());
  const bool cache_resident = data_bytes < mem_limit;
  if (cache_resident) {
    std::printf("NOTE: data fits the memory budget -> mmap misses are "
                "page-cache hits, not device reads. The direct rows below "
                "are real device I/O regardless (that is the point).\n");
  }

  std::vector<MixResult> results;
  bool direct_skipped = false;
  std::string direct_skip_reason;

  for (const std::string backend : {std::string("mmap"),
                                    std::string("direct")}) {
    if (config.backend != "both" && config.backend != backend) continue;
    const std::string dir = config.dir + "_" + backend;
    std::filesystem::remove_all(dir);
    Result<std::unique_ptr<Volume>> disk_or =
        backend == "mmap"
            ? CreateVolume(VolumeKind::kMmap, DiskOptions{page_size, 4u << 20},
                           dir)
            : CreateVolume(VolumeKind::kDirect,
                           DiskOptions{page_size, 4u << 20}, dir);
    if (!disk_or.ok()) {
      if (backend == "direct" && disk_or.status().IsNotSupported()) {
        direct_skipped = true;
        direct_skip_reason = disk_or.status().ToString();
        std::printf("\ndirect backend skipped: %s\n",
                    direct_skip_reason.c_str());
        continue;
      }
      Fatal("create volume", disk_or.status());
    }
    auto disk = std::move(disk_or).value();

    std::printf("\nloading %s volume at %s ...\n", backend.c_str(),
                dir.c_str());
    const auto load_start = Clock::now();
    LoadVolume(disk.get(), n_pages, page_size);
    const double load_ms = std::chrono::duration<double, std::milli>(
                               Clock::now() - load_start)
                               .count();
    std::printf("loaded in %.0f ms (%.1f MiB/s)\n", load_ms,
                config.data_mb / (load_ms / 1000.0));

    auto rows = RunBackend(backend, disk.get(), n_pages, frames);
    results.insert(results.end(), rows.begin(), rows.end());

    disk.reset();
    if (!config.keep) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }

  std::printf("\n");
  PrintResults(results);

  // Ranking: does the Eq.-1 ordering of the object-fetch shapes survive
  // measurement? (The paper's d1 >> d2 says call-heavy fetching loses.)
  std::string json;
  json += "{\n  \"config\": {";
  json += "\"data_mb\": " + std::to_string(config.data_mb);
  json += ", \"page_size\": " + std::to_string(page_size);
  json += ", \"pool_frames\": " + std::to_string(frames);
  json += ", \"mem_limit_mb\": " + std::to_string(mem_limit >> 20);
  json += ", \"mem_limit_source\": \"" + limit_source + "\"";
  json += std::string(", \"mmap_cache_resident\": ") +
          (cache_resident ? "true" : "false");
  json += "},\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"mix\": \"%s\", \"backend\": \"%s\", \"read_calls\": %" PRIu64
        ", \"pages_read\": %" PRIu64 ", \"buffer_hits\": %" PRIu64
        ", \"buffer_misses\": %" PRIu64
        ", \"measured_ms\": %.3f, \"modelled_ms\": %.3f, "
        "\"measured_over_modelled\": %.4f, \"work_units\": %.0f}%s\n",
        r.mix.c_str(), r.backend.c_str(), r.read_calls, r.pages_read,
        r.buffer_hits, r.buffer_misses, r.measured_ms, r.modelled_ms,
        r.modelled_ms > 0 ? r.measured_ms / r.modelled_ms : 0.0, r.objects,
        i + 1 < results.size() ? "," : "");
    json += row;
  }
  json += "  ],\n  \"ranking\": {";
  bool first_ranking = true;
  for (const std::string backend : {std::string("mmap"),
                                    std::string("direct")}) {
    std::vector<MixResult> rows;
    for (const MixResult& r : results) {
      if (r.backend == backend) rows.push_back(r);
    }
    if (rows.empty()) continue;
    if (!first_ranking) json += ", ";
    first_ranking = false;
    json += "\"modelled_" + backend + "\": ";
    AppendJsonList(&json, Ranking(rows, &MixResult::modelled_ms));
    json += ", \"measured_" + backend + "\": ";
    AppendJsonList(&json, Ranking(rows, &MixResult::measured_ms));
  }
  json += "},\n";
  json += std::string("  \"direct_skipped\": ") +
          (direct_skipped ? "true" : "false") + "\n}\n";

  std::ofstream out("BENCH_outofcore.json");
  out << json;
  out.close();
  std::printf("\nwrote BENCH_outofcore.json\n");

  for (const std::string backend : {std::string("mmap"),
                                    std::string("direct")}) {
    std::vector<MixResult> rows;
    for (const MixResult& r : results) {
      if (r.backend == backend) rows.push_back(r);
    }
    if (rows.empty()) continue;
    const auto modelled = Ranking(rows, &MixResult::modelled_ms);
    const auto measured = Ranking(rows, &MixResult::measured_ms);
    std::printf("%s fetch-shape ranking (slowest first): modelled [",
                backend.c_str());
    for (const auto& m : modelled) std::printf(" %s", m.c_str());
    std::printf(" ]  measured [");
    for (const auto& m : measured) std::printf(" %s", m.c_str());
    std::printf(" ]%s\n", modelled == measured ? "  (model ranking holds)"
                                               : "  (RANKING SHIFTED)");
  }
  return 0;
}

}  // namespace
}  // namespace starfish

int main(int argc, char** argv) {
  starfish::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_outofcore: %s needs a value\n",
                     arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--backend") {
      config.backend = next();
    } else if (arg == "--data-mb") {
      config.data_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--mem-limit-mb") {
      config.mem_limit_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--page-size") {
      config.page_size = static_cast<uint32_t>(
          std::strtoul(next(), nullptr, 10));
    } else if (arg == "--dir") {
      config.dir = next();
    } else if (arg == "--tiny") {
      config.data_mb = 16;
    } else if (arg == "--keep") {
      config.keep = true;
    } else {
      std::fprintf(stderr, "bench_outofcore: unknown argument %s\n",
                   arg.c_str());
      return 1;
    }
  }
  if (config.backend != "mmap" && config.backend != "direct" &&
      config.backend != "both") {
    std::fprintf(stderr, "bench_outofcore: --backend must be mmap, direct "
                         "or both\n");
    return 1;
  }
  return starfish::Run(config);
}
