// Out-of-core benchmark: the paper's access mixes against REAL device I/O.
//
// Every number in the paper-table benches flows through the in-memory
// arena (mem) or the kernel page cache (mmap) — a "miss" never touches a
// device, so the Equation-1 model (disk_timing.h) has never been compared
// against hardware. This bench scales a volume past the buffer pool (and
// ideally past memory), replays Table 5/6-style access mixes over the mmap
// and O_DIRECT backends, and reports modelled-vs-measured milliseconds per
// mix — the column that validates (or falsifies) TimedVolume's model.
//
// Access mixes (shaped after the paper's storage models' I/O patterns):
//   seq_scan_run32      sequential scan, 32-page prefetch runs (query 3)
//   fetch_nsm_calls     object fetch as 8 single-page calls (NSM-like:
//                       ~1 page per call, call-dominated)
//   fetch_dasdbs_chained object fetch as root fix + one chained call for
//                       the other 7 pages (DASDBS-like: 2 calls/object)
//   fetch_dsm_run       object fetch as one contiguous 8-page run
//                       (clustered, transfer-dominated)
//   hot_cold_fixes      Table 6-style fix mix: 80% of fixes in a hot 10%
//                       region, 20% uniform (hit/miss blend through LRU)
//
// The "model ranking" the paper cares about is the ORDER of the three
// object-fetch mixes: Eq. 1 says calls dominate (d1 >> d2), so NSM-like
// fetching must be slowest per object. The JSON reports the modelled order
// next to the measured order per backend.
//
// Memory-limit handling (documented best-effort): --mem-limit-mb (or the
// detected cgroup/total-RAM limit) is reported and compared against
// --data-mb. The bench cannot evict the kernel page cache without
// privileges, so mmap rows are only honest when data >> limit; the direct
// rows bypass the cache entirely and are honest at ANY size — that is the
// point of the backend. The buffer pool is always sized at 1/16 of the
// data, so pool misses are real in every configuration.
//
// PR 8 additions (the per-thread-ring rework, proven end to end):
//
//   --threads K     per-thread-scaling section over the direct backend:
//                   1/2/4/8 concurrent submitters (capped at K), each
//                   running its own completion-driven PrefetchStream over
//                   ONE shared sharded buffer pool, once with per-thread
//                   io_uring rings and once with the pre-rework
//                   single-ring-mutex baseline (RingMode::kShared) — the
//                   JSON rows show what the rework buys at equal work.
//   --models        loads the paper's FIVE storage models through the real
//                   StorageEngine on the direct backend (pool sized far
//                   below the data) and replays the query suite; the same
//                   suite runs on the mem backend as the in-memory
//                   expectation, and the Table 4/5/6 fetch-shape rankings
//                   (query 1b page I/Os, I/O calls, buffer fixes per
//                   object) must reproduce out-of-core.
//   --model-objects N / --budget-multiple M
//                   size the model database directly (N objects) or as M x
//                   the detected memory budget (dedicated out-of-core
//                   runs; the CI smoke stays tiny).
//   --gate-ranking  exit 1 when the direct backend's measured fetch-shape
//                   ranking diverges from the Eq.-1 modelled ranking, or
//                   when the out-of-core model rankings diverge from the
//                   in-memory expectation (skip-tolerant: a filesystem
//                   without O_DIRECT gates nothing).
//   --compare REF.json --max-regress PCT
//                   gate measured_ms of every (mix, backend) row against a
//                   committed reference — only meaningful on a runner
//                   marked stable (ci/check.sh engages it behind
//                   STARFISH_OUTOFCORE_STABLE=1).
//
// Usage:
//   bench_outofcore [--backend mmap|direct|both] [--data-mb N]
//                   [--mem-limit-mb N] [--page-size N] [--dir PATH]
//                   [--tiny] [--keep] [--threads K] [--models]
//                   [--model-objects N] [--budget-multiple M]
//                   [--gate-ranking] [--compare REF.json]
//                   [--max-regress PCT]
//
//   --tiny    16 MiB of data (CI smoke); default is 256 MiB.
//   --keep    leave the volume directories behind for inspection.
//
// Writes BENCH_outofcore.json. Exits 0 with "direct_skipped": true when the
// filesystem rejects O_DIRECT (tmpfs/overlayfs) so CI can archive the mmap
// numbers unconditionally.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/generator.h"
#include "benchmark/queries.h"
#include "buffer/buffer_manager.h"
#include "disk/direct_volume.h"
#include "disk/disk_timing.h"
#include "disk/volume.h"
#include "models/model_factory.h"
#include "storage/storage_engine.h"
#include "util/aligned_buffer.h"
#include "util/random.h"

namespace starfish {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kPagesPerObject = 8;

struct Config {
  std::string backend = "both";
  uint64_t data_mb = 256;
  uint64_t mem_limit_mb = 0;  // 0 = detect
  uint32_t page_size = 4096;
  std::string dir = "bench_outofcore_volume";
  bool keep = false;
  bool tiny = false;
  uint32_t threads = 0;        // 0 = no thread-scaling section
  bool models = false;         // five-model out-of-core section
  uint64_t model_objects = 0;  // 0 = auto (tiny -> 300, else 1500)
  double budget_multiple = 0;  // >0: size the model db at M x mem budget
  bool gate_ranking = false;
  std::string compare;  // reference JSON for the measured_ms gate
  double max_regress_pct = 25.0;
};

struct MixResult {
  std::string mix;
  std::string backend;
  uint64_t read_calls = 0;
  uint64_t pages_read = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  double measured_ms = 0;
  double modelled_ms = 0;
  double objects = 0;  ///< work units (objects / pages / fixes)
};

void Fatal(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_outofcore: %s: %s\n", what,
               st.ToString().c_str());
  std::exit(1);
}

/// First number in `path`, or 0 when absent/unparseable ("max" -> 0).
uint64_t ReadNumberFile(const char* path) {
  std::ifstream in(path);
  uint64_t value = 0;
  if (in && (in >> value)) return value;
  return 0;
}

/// Best-effort memory budget of this process: cgroup v2, cgroup v1, then
/// MemTotal. Returns bytes and names the source.
uint64_t DetectMemLimit(std::string* source) {
  if (uint64_t v2 = ReadNumberFile("/sys/fs/cgroup/memory.max"); v2 > 0) {
    *source = "cgroup v2 memory.max";
    return v2;
  }
  if (uint64_t v1 =
          ReadNumberFile("/sys/fs/cgroup/memory/memory.limit_in_bytes");
      v1 > 0 && v1 < (uint64_t{1} << 60)) {
    *source = "cgroup v1 limit_in_bytes";
    return v1;
  }
  std::ifstream meminfo("/proc/meminfo");
  std::string key;
  uint64_t kb = 0;
  while (meminfo >> key >> kb) {
    if (key == "MemTotal:") {
      *source = "/proc/meminfo MemTotal";
      return kb * 1024;
    }
    meminfo.ignore(1024, '\n');
  }
  *source = "unknown (no cgroup, no /proc/meminfo)";
  return 0;
}

/// Fills the volume with `n_pages` of patterned data, 64-page runs.
void LoadVolume(Volume* disk, uint64_t n_pages, uint32_t page_size) {
  const uint32_t run = 64;
  AlignedBuffer chunk;
  if (!chunk.Reserve(static_cast<size_t>(run) * page_size, 4096)) {
    Fatal("load", Status::ResourceExhausted("chunk alloc"));
  }
  for (uint64_t first = 0; first < n_pages; first += run) {
    const uint32_t n =
        static_cast<uint32_t>(std::min<uint64_t>(run, n_pages - first));
    if (auto id = disk->AllocateRun(n); !id.ok()) Fatal("alloc", id.status());
    for (uint32_t p = 0; p < n; ++p) {
      std::memset(chunk.data() + static_cast<size_t>(p) * page_size,
                  static_cast<int>('A' + (first + p) % 23), page_size);
    }
    if (auto st = disk->WriteRun(static_cast<PageId>(first), n, chunk.data());
        !st.ok()) {
      Fatal("load write", st);
    }
  }
  if (auto st = disk->Sync(); !st.ok()) Fatal("load sync", st);
}

/// One access mix over an already-loaded volume; returns counters + wall ms.
template <typename Body>
MixResult RunMix(const std::string& mix, const std::string& backend,
                 BufferManager* bm, Volume* disk, double objects,
                 const Body& body) {
  if (auto st = bm->DropAll(); !st.ok()) Fatal("drop", st);
  disk->ResetStats();
  bm->ResetStats();
  const auto start = Clock::now();
  body();
  const auto stop = Clock::now();
  const IoStats io = disk->stats();
  const BufferStats buffer = bm->stats();
  MixResult r;
  r.mix = mix;
  r.backend = backend;
  r.read_calls = io.read_calls;
  r.pages_read = io.pages_read;
  r.buffer_hits = buffer.hits;
  r.buffer_misses = buffer.misses;
  r.measured_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  r.modelled_ms = LinearTimingModel{}.Cost(io);  // the paper's Eq.-1 disk
  r.objects = objects;
  return r;
}

void FixOnce(BufferManager* bm, PageId id) {
  auto guard = bm->Fix(id);
  if (!guard.ok()) Fatal("fix", guard.status());
}

std::vector<MixResult> RunBackend(const std::string& backend, Volume* disk,
                                  uint64_t n_pages, uint32_t frames) {
  BufferOptions buffer_options;
  buffer_options.frame_count = frames;
  buffer_options.frame_alignment = disk->io_buffer_alignment();
  BufferManager bm(disk, buffer_options);

  const uint64_t n_objects = n_pages / kPagesPerObject;
  // Touch ~1/4 of the objects per fetch mix, in a deterministic shuffle.
  const uint64_t n_fetch = std::max<uint64_t>(1, n_objects / 4);
  std::vector<MixResult> results;

  results.push_back(RunMix(
      "seq_scan_run32", backend, &bm, disk, static_cast<double>(n_pages),
      [&] {
        std::vector<PageId> run;
        for (uint64_t first = 0; first < n_pages; first += 32) {
          const uint32_t n =
              static_cast<uint32_t>(std::min<uint64_t>(32, n_pages - first));
          run.clear();
          for (uint32_t i = 0; i < n; ++i) {
            run.push_back(static_cast<PageId>(first + i));
          }
          if (auto st = bm.Prefetch(run, PrefetchMode::kContiguousRuns);
              !st.ok()) {
            Fatal("prefetch", st);
          }
          for (PageId id : run) FixOnce(&bm, id);
        }
      }));

  // The three object-fetch shapes share one deterministic object sequence,
  // so the mixes differ ONLY in how the same pages are grouped into calls.
  const auto object_at = [n_objects](Rng& rng) {
    return static_cast<PageId>(rng.Uniform(n_objects) * kPagesPerObject);
  };

  results.push_back(RunMix(
      "fetch_nsm_calls", backend, &bm, disk, static_cast<double>(n_fetch),
      [&] {
        Rng rng(42);
        for (uint64_t i = 0; i < n_fetch; ++i) {
          const PageId root = object_at(rng);
          for (uint32_t p = 0; p < kPagesPerObject; ++p) {
            FixOnce(&bm, root + p);  // 8 single-page read calls
          }
        }
      }));

  results.push_back(RunMix(
      "fetch_dasdbs_chained", backend, &bm, disk,
      static_cast<double>(n_fetch), [&] {
        Rng rng(42);
        std::vector<PageId> rest;
        for (uint64_t i = 0; i < n_fetch; ++i) {
          const PageId root = object_at(rng);
          FixOnce(&bm, root);  // root page: one call
          rest.clear();
          for (uint32_t p = 1; p < kPagesPerObject; ++p) {
            rest.push_back(root + p);
          }
          if (auto st = bm.Prefetch(rest, PrefetchMode::kChained); !st.ok()) {
            Fatal("prefetch", st);
          }
          for (PageId id : rest) FixOnce(&bm, id);
        }
      }));

  results.push_back(RunMix(
      "fetch_dsm_run", backend, &bm, disk, static_cast<double>(n_fetch),
      [&] {
        Rng rng(42);
        std::vector<PageId> all;
        for (uint64_t i = 0; i < n_fetch; ++i) {
          const PageId root = object_at(rng);
          all.clear();
          for (uint32_t p = 0; p < kPagesPerObject; ++p) {
            all.push_back(root + p);
          }
          if (auto st = bm.Prefetch(all, PrefetchMode::kContiguousRuns);
              !st.ok()) {
            Fatal("prefetch", st);
          }
          for (PageId id : all) FixOnce(&bm, id);
        }
      }));

  const uint64_t n_fixes = std::max<uint64_t>(1000, n_pages / 2);
  results.push_back(RunMix(
      "hot_cold_fixes", backend, &bm, disk, static_cast<double>(n_fixes),
      [&] {
        Rng rng(7);
        const uint64_t hot_span = std::max<uint64_t>(1, n_pages / 10);
        for (uint64_t i = 0; i < n_fixes; ++i) {
          const bool hot = rng.NextDouble() < 0.8;
          const PageId id = static_cast<PageId>(
              hot ? rng.Uniform(hot_span)
                  : rng.Uniform(n_pages));
          FixOnce(&bm, id);
        }
      }));

  return results;
}

/// Object-fetch mixes ordered slowest-first by `metric` — the "ranking".
std::vector<std::string> Ranking(const std::vector<MixResult>& results,
                                 double MixResult::*metric) {
  std::vector<const MixResult*> fetches;
  for (const MixResult& r : results) {
    if (r.mix.rfind("fetch_", 0) == 0) fetches.push_back(&r);
  }
  std::sort(fetches.begin(), fetches.end(),
            [metric](const MixResult* a, const MixResult* b) {
              return a->*metric > b->*metric;
            });
  std::vector<std::string> order;
  for (const MixResult* r : fetches) order.push_back(r->mix);
  return order;
}

// ---------------------------------------------------------------------------
// Per-thread-scaling section (--threads): N submitters, each driving its own
// completion-driven PrefetchStream over one shared sharded pool, on the
// direct backend — per-thread rings vs the single-ring-mutex baseline.
// ---------------------------------------------------------------------------

struct ScalingRow {
  std::string ring_mode;  ///< "per_thread" | "shared_mutex"
  uint32_t threads = 0;
  double measured_ms = 0;
  double pages_per_sec = 0;
  uint64_t read_calls = 0;
  uint64_t pages_read = 0;
  bool async_active = false;  ///< any stream ran the submit/complete split
};

/// Runs `body(thread_index)` on `threads` threads behind a start barrier;
/// returns wall seconds.
template <typename Body>
double TimedThreads(uint32_t threads, Body&& body) {
  std::atomic<uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      body(t);
    });
  }
  while (ready.load() != threads) {
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<ScalingRow> RunThreadScaling(const Config& config,
                                         uint64_t n_pages, uint32_t frames,
                                         bool* skipped,
                                         std::string* skip_reason) {
  std::vector<ScalingRow> rows;
  const std::string dir = config.dir + "_scaling";
  std::filesystem::remove_all(dir);

  // Load once; every (mode, threads) row reopens the same data.
  {
    auto disk_or =
        DirectVolume::Open(dir, DiskOptions{config.page_size, 4u << 20});
    if (!disk_or.ok()) {
      if (disk_or.status().IsNotSupported()) {
        *skipped = true;
        *skip_reason = disk_or.status().ToString();
        return rows;
      }
      Fatal("scaling volume", disk_or.status());
    }
    LoadVolume(disk_or.value().get(), n_pages, config.page_size);
  }

  // Enough work per row to amortize ring setup and pool warm-up: every
  // object about twice, in a pseudo-random order shared by all rows (equal
  // work per configuration is what makes the rows comparable).
  const uint64_t n_objects = n_pages / kPagesPerObject;
  const uint64_t n_fetch = std::max<uint64_t>(256, n_objects * 2);

  for (const bool shared : {false, true}) {
    DirectVolumeOptions ring;
    ring.ring_mode = shared ? DirectVolumeOptions::RingMode::kShared
                            : DirectVolumeOptions::RingMode::kPerThread;
    auto disk_or =
        DirectVolume::Open(dir, DiskOptions{config.page_size, 4u << 20}, ring);
    if (!disk_or.ok()) Fatal("scaling reopen", disk_or.status());
    auto disk = std::move(disk_or).value();

    BufferOptions buffer_options;
    buffer_options.frame_count = frames;
    buffer_options.frame_alignment = disk->io_buffer_alignment();
    buffer_options.shard_count = 64;  // concurrent mode: per-shard mutexes
    BufferManager bm(disk.get(), buffer_options);

    for (uint32_t t : {1u, 2u, 4u, 8u}) {
      if (t > std::max(config.threads, 1u)) break;
      if (auto st = bm.DropAll(); !st.ok()) Fatal("scaling drop", st);
      disk->ResetStats();
      std::atomic<uint32_t> async_streams{0};

      // Fixed total work split across the submitters: each thread fetches
      // its interleaved share of a deterministic pseudo-random object
      // sequence as DASDBS-like 8-page chained batches.
      const double seconds = TimedThreads(t, [&](uint32_t thread_index) {
        PrefetchStream stream(&bm, /*depth=*/4);
        if (stream.async_active()) {
          async_streams.fetch_add(1, std::memory_order_relaxed);
        }
        std::vector<PageId> ids(kPagesPerObject);
        for (uint64_t i = thread_index; i < n_fetch; i += t) {
          const PageId root = static_cast<PageId>(
              (i * 2654435761ull % n_objects) * kPagesPerObject);
          for (uint32_t p = 0; p < kPagesPerObject; ++p) ids[p] = root + p;
          if (auto st = stream.Push(ids); !st.ok()) Fatal("push", st);
        }
        if (auto st = stream.Drain(); !st.ok()) Fatal("drain", st);
      });

      const IoStats io = disk->stats();
      ScalingRow row;
      row.ring_mode = shared ? "shared_mutex" : "per_thread";
      row.threads = t;
      row.measured_ms = seconds * 1e3;
      row.pages_per_sec = static_cast<double>(io.pages_read) / seconds;
      row.read_calls = io.read_calls;
      row.pages_read = io.pages_read;
      row.async_active = async_streams.load() > 0;
      rows.push_back(row);
    }
  }

  if (!config.keep) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Five-model section (--models): the actual storage models through the real
// StorageEngine on the direct backend, pool far below the data, vs the same
// suite on the mem backend — the Table 4/5/6 fetch-shape rankings must
// survive going out of core.
// ---------------------------------------------------------------------------

struct ModelRow {
  std::string model;
  std::string backend;  ///< "mem" (expectation) | "direct" (out-of-core)
  double load_ms = 0;
  double suite_ms = 0;     ///< measured wall ms of the full query suite
  double modelled_ms = 0;  ///< Eq.-1 cost of the suite's IoStats delta
  uint64_t suite_calls = 0;
  uint64_t suite_pages = 0;
  // The fetch shape of query 1b (retrieve one object by key — the only
  // single-object fetch every model answers): the paper's Table 4/5/6
  // columns, per object.
  double q1b_pages = 0;
  double q1b_calls = 0;
  double q1b_fixes = 0;
};

Result<ModelRow> RunOneModel(StorageModelKind kind, VolumeKind backend,
                             const bench::BenchmarkDatabase& db,
                             const std::string& dir, uint32_t frames,
                             const bench::QueryConfig& query) {
  StorageEngineOptions engine_options;
  engine_options.backend = backend;
  engine_options.path = dir;
  engine_options.buffer.frame_count = frames;
  engine_options.buffer.frame_alignment = 4096;
  STARFISH_ASSIGN_OR_RETURN(std::unique_ptr<StorageEngine> engine,
                            StorageEngine::Open(std::move(engine_options)));

  ModelConfig model_config;
  model_config.schema = db.schema();
  model_config.key_attr_index = 0;
  STARFISH_ASSIGN_OR_RETURN(std::unique_ptr<StorageModel> model,
                            CreateStorageModel(kind, engine.get(),
                                               model_config));
  const auto load_start = Clock::now();
  STARFISH_RETURN_NOT_OK(db.LoadInto(model.get(), engine.get()));
  const double load_ms = std::chrono::duration<double, std::milli>(
                             Clock::now() - load_start)
                             .count();

  bench::QueryRunner runner(model.get(), engine.get(), &db, query);
  const IoStats io_before = engine->stats().io;
  const auto suite_start = Clock::now();
  STARFISH_ASSIGN_OR_RETURN(bench::QuerySuiteResults suite, runner.RunAll());
  const double suite_ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - suite_start)
                              .count();
  const IoStats io = engine->stats().io.Since(io_before);

  ModelRow row;
  row.model = ToString(kind);
  row.backend = backend == VolumeKind::kDirect ? "direct" : "mem";
  row.load_ms = load_ms;
  row.suite_ms = suite_ms;
  row.modelled_ms = LinearTimingModel{}.Cost(io);
  row.suite_calls = io.TotalCalls();
  row.suite_pages = io.TotalPages();
  row.q1b_pages = suite.q1b.Pages();
  row.q1b_calls = suite.q1b.Calls();
  row.q1b_fixes = suite.q1b.Fixes();
  return row;
}

/// Model names ordered worst-first (descending) by `metric` — the Table
/// 4/5/6 ranking for one backend.
std::vector<std::string> ModelRanking(const std::vector<ModelRow>& rows,
                                      const std::string& backend,
                                      double ModelRow::*metric) {
  std::vector<const ModelRow*> picked;
  for (const ModelRow& r : rows) {
    if (r.backend == backend) picked.push_back(&r);
  }
  std::stable_sort(picked.begin(), picked.end(),
                   [metric](const ModelRow* a, const ModelRow* b) {
                     return a->*metric > b->*metric;
                   });
  std::vector<std::string> order;
  for (const ModelRow* r : picked) order.push_back(r->model);
  return order;
}

std::vector<ModelRow> RunModels(const Config& config, uint64_t mem_limit,
                                bool* skipped, std::string* skip_reason) {
  std::vector<ModelRow> rows;

  bench::GeneratorConfig gen;
  gen.n_objects = config.model_objects > 0 ? config.model_objects
                  : config.tiny            ? 300
                                           : 1500;
  gen.seed = 4242;
  if (config.budget_multiple > 0) {
    // Probe a small generation for the drawn object footprint, then size
    // the database at the requested multiple of the memory budget.
    bench::GeneratorConfig probe = gen;
    probe.n_objects = 64;
    auto probe_or = bench::BenchmarkDatabase::Generate(probe);
    if (!probe_or.ok()) Fatal("probe generate", probe_or.status());
    const double per_object =
        std::max(1.0, probe_or.value().stats().avg_object_bytes);
    gen.n_objects = static_cast<uint64_t>(
        config.budget_multiple * static_cast<double>(mem_limit) / per_object);
    std::printf("models: %.1fx memory budget -> %" PRIu64
                " objects (~%.0f B each)\n",
                config.budget_multiple, gen.n_objects, per_object);
  }
  auto db_or = bench::BenchmarkDatabase::Generate(gen);
  if (!db_or.ok()) Fatal("generate model db", db_or.status());
  const bench::BenchmarkDatabase db = std::move(db_or).value();

  // Pool far below the data in every configuration (frames ~ objects/4
  // pages), so the direct rows miss for real; the suite shrinks in tiny
  // mode to keep the CI smoke quick on a cold device.
  const uint32_t frames = static_cast<uint32_t>(
      std::max<uint64_t>(64, gen.n_objects / 4));
  bench::QueryConfig query;
  if (config.tiny) {
    query.q1a_samples = 20;
    query.q2a_samples = 5;
    query.loops = 30;
  }

  for (const StorageModelKind kind : AllStorageModelKinds()) {
    // In-memory expectation first: the counters the paper's tables rank.
    auto mem_or = RunOneModel(kind, VolumeKind::kMem, db, "", frames, query);
    if (!mem_or.ok()) Fatal("model (mem)", mem_or.status());
    rows.push_back(std::move(mem_or).value());

    const std::string dir =
        config.dir + "_model_" + rows.back().model;
    std::filesystem::remove_all(dir);
    auto direct_or =
        RunOneModel(kind, VolumeKind::kDirect, db, dir, frames, query);
    if (!direct_or.ok()) {
      if (direct_or.status().IsNotSupported()) {
        *skipped = true;
        *skip_reason = direct_or.status().ToString();
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        return rows;
      }
      Fatal("model (direct)", direct_or.status());
    }
    rows.push_back(std::move(direct_or).value());
    if (!config.keep) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
  return rows;
}

void PrintResults(const std::vector<MixResult>& results) {
  std::printf("%-22s %-7s %10s %10s %8s %8s %12s %12s %8s\n", "MIX",
              "BACKEND", "calls", "pages", "hits", "misses", "measured ms",
              "modelled ms", "ratio");
  for (const MixResult& r : results) {
    std::printf("%-22s %-7s %10" PRIu64 " %10" PRIu64 " %8" PRIu64
                " %8" PRIu64 " %12.2f %12.2f %8.3f\n",
                r.mix.c_str(), r.backend.c_str(), r.read_calls, r.pages_read,
                r.buffer_hits, r.buffer_misses, r.measured_ms, r.modelled_ms,
                r.modelled_ms > 0 ? r.measured_ms / r.modelled_ms : 0.0);
  }
}

void AppendJsonList(std::string* out, const std::vector<std::string>& items) {
  out->push_back('[');
  for (size_t i = 0; i < items.size(); ++i) {
    *out += "\"" + items[i] + "\"";
    if (i + 1 < items.size()) *out += ", ";
  }
  out->push_back(']');
}

int Run(const Config& config) {
  const uint32_t page_size = config.page_size;
  const uint64_t data_bytes = config.data_mb << 20;
  const uint64_t n_pages = data_bytes / page_size;
  const uint32_t frames = static_cast<uint32_t>(
      std::max<uint64_t>(64, n_pages / 16));  // 16x out-of-core vs the pool

  std::string limit_source;
  uint64_t mem_limit = config.mem_limit_mb > 0
                           ? config.mem_limit_mb << 20
                           : DetectMemLimit(&limit_source);
  if (config.mem_limit_mb > 0) limit_source = "--mem-limit-mb";

  std::printf("out-of-core bench: %" PRIu64 " MiB data, %" PRIu64
              " pages of %u B, pool %u frames (%.1f MiB)\n",
              config.data_mb, n_pages, page_size,
              frames, frames * static_cast<double>(page_size) / (1 << 20));
  std::printf("memory budget: %.0f MiB (%s)\n",
              mem_limit / double(1 << 20), limit_source.c_str());
  const bool cache_resident = data_bytes < mem_limit;
  if (cache_resident) {
    std::printf("NOTE: data fits the memory budget -> mmap misses are "
                "page-cache hits, not device reads. The direct rows below "
                "are real device I/O regardless (that is the point).\n");
  }

  std::vector<MixResult> results;
  bool direct_skipped = false;
  std::string direct_skip_reason;

  for (const std::string backend : {std::string("mmap"),
                                    std::string("direct")}) {
    if (config.backend != "both" && config.backend != backend) continue;
    const std::string dir = config.dir + "_" + backend;
    std::filesystem::remove_all(dir);
    Result<std::unique_ptr<Volume>> disk_or =
        backend == "mmap"
            ? CreateVolume(VolumeKind::kMmap, DiskOptions{page_size, 4u << 20},
                           dir)
            : CreateVolume(VolumeKind::kDirect,
                           DiskOptions{page_size, 4u << 20}, dir);
    if (!disk_or.ok()) {
      if (backend == "direct" && disk_or.status().IsNotSupported()) {
        direct_skipped = true;
        direct_skip_reason = disk_or.status().ToString();
        std::printf("\ndirect backend skipped: %s\n",
                    direct_skip_reason.c_str());
        continue;
      }
      Fatal("create volume", disk_or.status());
    }
    auto disk = std::move(disk_or).value();

    std::printf("\nloading %s volume at %s ...\n", backend.c_str(),
                dir.c_str());
    const auto load_start = Clock::now();
    LoadVolume(disk.get(), n_pages, page_size);
    const double load_ms = std::chrono::duration<double, std::milli>(
                               Clock::now() - load_start)
                               .count();
    std::printf("loaded in %.0f ms (%.1f MiB/s)\n", load_ms,
                config.data_mb / (load_ms / 1000.0));

    auto rows = RunBackend(backend, disk.get(), n_pages, frames);
    results.insert(results.end(), rows.begin(), rows.end());

    disk.reset();
    if (!config.keep) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }

  std::printf("\n");
  PrintResults(results);

  // --threads: the rework's scaling proof (direct backend only).
  std::vector<ScalingRow> scaling;
  bool scaling_skipped = false;
  std::string scaling_skip_reason;
  if (config.threads > 0) {
    std::printf("\nper-thread scaling (direct backend, %u-deep "
                "PrefetchStream per submitter)\n",
                4u);
    scaling = RunThreadScaling(config, n_pages, frames, &scaling_skipped,
                               &scaling_skip_reason);
    if (scaling_skipped) {
      std::printf("scaling section skipped: %s\n",
                  scaling_skip_reason.c_str());
      direct_skipped = true;
      if (direct_skip_reason.empty()) direct_skip_reason = scaling_skip_reason;
    } else {
      std::printf("%-14s %8s %12s %14s %10s %6s\n", "RING MODE", "threads",
                  "measured ms", "pages/sec", "pages", "async");
      for (const ScalingRow& row : scaling) {
        std::printf("%-14s %8u %12.2f %14.0f %10" PRIu64 " %6s\n",
                    row.ring_mode.c_str(), row.threads, row.measured_ms,
                    row.pages_per_sec, row.pages_read,
                    row.async_active ? "yes" : "no");
      }
    }
  }

  // --models: the five storage models, in-memory expectation vs the real
  // out-of-core run.
  std::vector<ModelRow> model_rows;
  bool models_skipped = false;
  std::string models_skip_reason;
  if (config.models) {
    std::printf("\nfive-model section (query suite, mem expectation vs "
                "direct out-of-core)\n");
    model_rows =
        RunModels(config, mem_limit, &models_skipped, &models_skip_reason);
    if (models_skipped) {
      std::printf("model section skipped: %s\n", models_skip_reason.c_str());
      direct_skipped = true;
      if (direct_skip_reason.empty()) direct_skip_reason = models_skip_reason;
    } else {
      std::printf("%-12s %-7s %9s %10s %12s %11s %11s %11s\n", "MODEL",
                  "BACKEND", "load ms", "suite ms", "modelled ms",
                  "q1b pages", "q1b calls", "q1b fixes");
      for (const ModelRow& row : model_rows) {
        std::printf("%-12s %-7s %9.0f %10.1f %12.1f %11.2f %11.2f %11.2f\n",
                    row.model.c_str(), row.backend.c_str(), row.load_ms,
                    row.suite_ms, row.modelled_ms, row.q1b_pages,
                    row.q1b_calls, row.q1b_fixes);
      }
    }
  }

  // Ranking: does the Eq.-1 ordering of the object-fetch shapes survive
  // measurement? (The paper's d1 >> d2 says call-heavy fetching loses.)
  std::string json;
  json += "{\n  \"config\": {";
  json += "\"data_mb\": " + std::to_string(config.data_mb);
  json += ", \"page_size\": " + std::to_string(page_size);
  json += ", \"pool_frames\": " + std::to_string(frames);
  json += ", \"mem_limit_mb\": " + std::to_string(mem_limit >> 20);
  json += ", \"mem_limit_source\": \"" + limit_source + "\"";
  json += std::string(", \"mmap_cache_resident\": ") +
          (cache_resident ? "true" : "false");
  json += "},\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"mix\": \"%s\", \"backend\": \"%s\", \"read_calls\": %" PRIu64
        ", \"pages_read\": %" PRIu64 ", \"buffer_hits\": %" PRIu64
        ", \"buffer_misses\": %" PRIu64
        ", \"measured_ms\": %.3f, \"modelled_ms\": %.3f, "
        "\"measured_over_modelled\": %.4f, \"work_units\": %.0f}%s\n",
        r.mix.c_str(), r.backend.c_str(), r.read_calls, r.pages_read,
        r.buffer_hits, r.buffer_misses, r.measured_ms, r.modelled_ms,
        r.modelled_ms > 0 ? r.measured_ms / r.modelled_ms : 0.0, r.objects,
        i + 1 < results.size() ? "," : "");
    json += row;
  }
  json += "  ],\n  \"ranking\": {";
  bool first_ranking = true;
  for (const std::string backend : {std::string("mmap"),
                                    std::string("direct")}) {
    std::vector<MixResult> rows;
    for (const MixResult& r : results) {
      if (r.backend == backend) rows.push_back(r);
    }
    if (rows.empty()) continue;
    if (!first_ranking) json += ", ";
    first_ranking = false;
    json += "\"modelled_" + backend + "\": ";
    AppendJsonList(&json, Ranking(rows, &MixResult::modelled_ms));
    json += ", \"measured_" + backend + "\": ";
    AppendJsonList(&json, Ranking(rows, &MixResult::measured_ms));
  }
  json += "},\n";
  if (!scaling.empty()) {
    json += "  \"thread_scaling\": [\n";
    for (size_t i = 0; i < scaling.size(); ++i) {
      const ScalingRow& row = scaling[i];
      char buf[384];
      std::snprintf(buf, sizeof(buf),
                    "    {\"ring_mode\": \"%s\", \"threads\": %u, "
                    "\"measured_ms\": %.3f, \"pages_per_sec\": %.0f, "
                    "\"read_calls\": %" PRIu64 ", \"pages_read\": %" PRIu64
                    ", \"async_prefetch\": %s}%s\n",
                    row.ring_mode.c_str(), row.threads, row.measured_ms,
                    row.pages_per_sec, row.read_calls, row.pages_read,
                    row.async_active ? "true" : "false",
                    i + 1 < scaling.size() ? "," : "");
      json += buf;
    }
    json += "  ],\n";
  }
  if (!model_rows.empty() && !models_skipped) {
    json += "  \"models\": [\n";
    for (size_t i = 0; i < model_rows.size(); ++i) {
      const ModelRow& row = model_rows[i];
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "    {\"model\": \"%s\", \"backend\": \"%s\", "
                    "\"load_ms\": %.1f, \"suite_ms\": %.2f, "
                    "\"modelled_ms\": %.2f, \"suite_calls\": %" PRIu64
                    ", \"suite_pages\": %" PRIu64
                    ", \"q1b_pages\": %.3f, \"q1b_calls\": %.3f, "
                    "\"q1b_fixes\": %.3f}%s\n",
                    row.model.c_str(), row.backend.c_str(), row.load_ms,
                    row.suite_ms, row.modelled_ms, row.suite_calls,
                    row.suite_pages, row.q1b_pages, row.q1b_calls,
                    row.q1b_fixes, i + 1 < model_rows.size() ? "," : "");
      json += buf;
    }
    json += "  ],\n  \"model_ranking\": {";
    bool first = true;
    for (const char* backend : {"mem", "direct"}) {
      struct Metric {
        const char* name;
        double ModelRow::*field;
      } metrics[] = {{"pages", &ModelRow::q1b_pages},
                     {"calls", &ModelRow::q1b_calls},
                     {"fixes", &ModelRow::q1b_fixes}};
      for (const Metric& metric : metrics) {
        if (!first) json += ", ";
        first = false;
        json += std::string("\"") + backend + "_by_" + metric.name + "\": ";
        AppendJsonList(&json, ModelRanking(model_rows, backend, metric.field));
      }
    }
    json += "},\n";
  }
  json += std::string("  \"direct_skipped\": ") +
          (direct_skipped ? "true" : "false") + "\n}\n";

  std::ofstream out("BENCH_outofcore.json");
  out << json;
  out.close();
  std::printf("\nwrote BENCH_outofcore.json\n");

  for (const std::string backend : {std::string("mmap"),
                                    std::string("direct")}) {
    std::vector<MixResult> rows;
    for (const MixResult& r : results) {
      if (r.backend == backend) rows.push_back(r);
    }
    if (rows.empty()) continue;
    const auto modelled = Ranking(rows, &MixResult::modelled_ms);
    const auto measured = Ranking(rows, &MixResult::measured_ms);
    std::printf("%s fetch-shape ranking (slowest first): modelled [",
                backend.c_str());
    for (const auto& m : modelled) std::printf(" %s", m.c_str());
    std::printf(" ]  measured [");
    for (const auto& m : measured) std::printf(" %s", m.c_str());
    std::printf(" ]%s\n", modelled == measured ? "  (model ranking holds)"
                                               : "  (RANKING SHIFTED)");
  }

  int failures = 0;

  // --gate-ranking: the direct backend's measured ordering must agree with
  // the Eq.-1 modelled ordering (the paper's claim), and the out-of-core
  // model rankings must reproduce the in-memory expectation. A filesystem
  // without O_DIRECT gates nothing — there is nothing honest to gate.
  if (config.gate_ranking) {
    std::vector<MixResult> direct_rows;
    for (const MixResult& r : results) {
      if (r.backend == "direct") direct_rows.push_back(r);
    }
    if (direct_rows.empty()) {
      std::printf("\nranking gate: no direct rows (skipped) — not gated\n");
    } else {
      const auto modelled = Ranking(direct_rows, &MixResult::modelled_ms);
      const auto measured = Ranking(direct_rows, &MixResult::measured_ms);
      if (modelled != measured) {
        std::fprintf(stderr,
                     "ranking gate: direct fetch-shape ranking diverged "
                     "from the Eq.-1 model\n");
        ++failures;
      } else {
        std::printf("\nranking gate: direct fetch-shape ranking matches "
                    "the model\n");
      }
    }
    if (!model_rows.empty() && !models_skipped) {
      struct Metric {
        const char* name;
        double ModelRow::*field;
      } metrics[] = {{"pages (Table 4)", &ModelRow::q1b_pages},
                     {"calls (Table 5)", &ModelRow::q1b_calls},
                     {"fixes (Table 6)", &ModelRow::q1b_fixes}};
      for (const Metric& metric : metrics) {
        const auto expected = ModelRanking(model_rows, "mem", metric.field);
        const auto got = ModelRanking(model_rows, "direct", metric.field);
        if (expected != got) {
          std::fprintf(stderr,
                       "ranking gate: out-of-core model ranking by %s "
                       "diverged from the in-memory expectation\n",
                       metric.name);
          ++failures;
        } else {
          std::printf("ranking gate: model ranking by %s reproduces "
                      "out-of-core\n",
                      metric.name);
        }
      }
    }
  }

  // --compare: measured_ms per (mix, backend) row against a committed
  // reference — engaged by CI only on runners marked stable.
  if (!config.compare.empty()) {
    std::ifstream ref(config.compare);
    if (!ref) {
      std::fprintf(stderr, "bench_outofcore: cannot read %s\n",
                   config.compare.c_str());
      return 1;
    }
    std::string line;
    std::vector<std::pair<std::string, double>> reference;  // mix@backend
    while (std::getline(ref, line)) {
      const size_t mix_key = line.find("\"mix\": \"");
      const size_t backend_key = line.find("\"backend\": \"");
      const size_t ms_key = line.find("\"measured_ms\": ");
      if (mix_key == std::string::npos || backend_key == std::string::npos ||
          ms_key == std::string::npos) {
        continue;
      }
      const size_t mix_begin = mix_key + std::strlen("\"mix\": \"");
      const size_t backend_begin =
          backend_key + std::strlen("\"backend\": \"");
      reference.emplace_back(
          line.substr(mix_begin, line.find('"', mix_begin) - mix_begin) +
              "@" +
              line.substr(backend_begin,
                          line.find('"', backend_begin) - backend_begin),
          std::atof(line.c_str() + ms_key + std::strlen("\"measured_ms\": ")));
    }
    std::printf("\nmeasured-ms gate vs %s (bound +%.0f%%)\n",
                config.compare.c_str(), config.max_regress_pct);
    for (const MixResult& r : results) {
      const std::string key = r.mix + "@" + r.backend;
      for (const auto& [ref_key, ref_ms] : reference) {
        if (ref_key != key || ref_ms <= 0) continue;
        const double delta_pct = (r.measured_ms - ref_ms) / ref_ms * 100.0;
        const bool fail = delta_pct > config.max_regress_pct;
        std::printf("%-32s %10.2f ms %+8.1f%%%s\n", key.c_str(),
                    r.measured_ms, delta_pct, fail ? "  <-- REGRESSION" : "");
        if (fail) ++failures;
        break;
      }
    }
  }

  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace starfish

int main(int argc, char** argv) {
  starfish::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_outofcore: %s needs a value\n",
                     arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--backend") {
      config.backend = next();
    } else if (arg == "--data-mb") {
      config.data_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--mem-limit-mb") {
      config.mem_limit_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--page-size") {
      config.page_size = static_cast<uint32_t>(
          std::strtoul(next(), nullptr, 10));
    } else if (arg == "--dir") {
      config.dir = next();
    } else if (arg == "--tiny") {
      config.data_mb = 16;
      config.tiny = true;
    } else if (arg == "--keep") {
      config.keep = true;
    } else if (arg == "--threads") {
      config.threads = static_cast<uint32_t>(
          std::strtoul(next(), nullptr, 10));
    } else if (arg == "--models") {
      config.models = true;
    } else if (arg == "--model-objects") {
      config.model_objects = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--budget-multiple") {
      config.budget_multiple = std::strtod(next(), nullptr);
    } else if (arg == "--gate-ranking") {
      config.gate_ranking = true;
    } else if (arg == "--compare") {
      config.compare = next();
    } else if (arg == "--max-regress") {
      config.max_regress_pct = std::strtod(next(), nullptr);
    } else {
      std::fprintf(stderr, "bench_outofcore: unknown argument %s\n",
                   arg.c_str());
      return 1;
    }
  }
  if (config.backend != "mmap" && config.backend != "direct" &&
      config.backend != "both") {
    std::fprintf(stderr, "bench_outofcore: --backend must be mmap, direct "
                         "or both\n");
    return 1;
  }
  return starfish::Run(config);
}
