// Reproduces Table 8: the qualitative overall evaluation. The paper ranks
// the four storage models from best (++) to worst (--) per cost factor;
// here the ranks are *computed* from the measured metrics of a full run and
// printed next to the paper's published judgement.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "harness.h"

namespace starfish::bench {
namespace {

const StorageModelKind kRanked[] = {
    StorageModelKind::kDsm, StorageModelKind::kDasdbsDsm,
    StorageModelKind::kNsm, StorageModelKind::kDasdbsNsm};

/// Assigns ++ / + / - / -- by ascending metric value (smaller = better).
std::map<StorageModelKind, std::string> RankSymbols(
    const std::map<StorageModelKind, double>& metric) {
  std::vector<std::pair<double, StorageModelKind>> order;
  for (const auto& [kind, value] : metric) order.emplace_back(value, kind);
  std::sort(order.begin(), order.end());
  const char* symbols[] = {"++", "+", "-", "--"};
  std::map<StorageModelKind, std::string> out;
  for (size_t i = 0; i < order.size(); ++i) {
    out[order[i].second] = symbols[std::min<size_t>(i, 3)];
  }
  return out;
}

int Run() {
  PrintBanner("Table 8",
              "Overall evaluation of the storage models, ranks computed "
              "from the measured metrics (queries 2b/3b of the full run: "
              "retrieval pages, I/O calls, buffer fixes, update pages).");

  const RunnerOptions options = PaperRunnerOptions();
  BenchmarkRunner runner(options);
  auto results = runner.Run();
  if (!results.ok()) return 1;

  // Composite metrics across the retrieval queries (per-object 1b cost +
  // one-shot and amortized navigation), mirroring how the paper's verdict
  // weighs both single-query and loop behaviour.
  std::map<StorageModelKind, double> read_pages, io_calls, fixes, update_pages;
  const double n = static_cast<double>(options.generator.n_objects);
  for (const ModelRunResult& r : results.value()) {
    if (std::find(std::begin(kRanked), std::end(kRanked), r.kind) ==
        std::end(kRanked)) {
      continue;  // NSM+index is not part of the paper's Table 8
    }
    const QuerySuiteResults& q = r.queries;
    read_pages[r.kind] = q.q1b.Pages() / n + q.q2a.Pages() + q.q2b.Pages();
    io_calls[r.kind] = q.q1b.Calls() / n + q.q2a.Calls() + q.q2b.Calls();
    fixes[r.kind] = q.q1b.Fixes() / n + q.q2a.Fixes() + q.q2b.Fixes();
    update_pages[r.kind] =
        q.q3a.PagesWritten() + q.q3b.PagesWritten();
  }

  const auto rank_pages = RankSymbols(read_pages);
  const auto rank_calls = RankSymbols(io_calls);
  const auto rank_fixes = RankSymbols(fixes);
  const auto rank_updates = RankSymbols(update_pages);

  // The join column is structural, not measured: the direct models need no
  // joins, DASDBS-NSM joins with address support, NSM joins by scanning.
  const std::map<StorageModelKind, std::string> join_effort = {
      {StorageModelKind::kDsm, "++"},
      {StorageModelKind::kDasdbsDsm, "++"},
      {StorageModelKind::kNsm, "--"},
      {StorageModelKind::kDasdbsNsm, "+"}};

  TablePrinter table({"STORAGE MODEL", "A buf.fixes", "C join", "X IO calls",
                      "X IO pages", "update pages", "paper verdict"});
  const std::map<StorageModelKind, std::string> paper = {
      {StorageModelKind::kDsm, "better than NSM, worse than DASDBS-DSM"},
      {StorageModelKind::kDasdbsDsm, "good reads, bad updates"},
      {StorageModelKind::kNsm, "the worst"},
      {StorageModelKind::kDasdbsNsm, "the best"}};
  for (StorageModelKind kind : kRanked) {
    table.AddRow({ModelLabel(kind), rank_fixes.at(kind),
                  join_effort.at(kind), rank_calls.at(kind),
                  rank_pages.at(kind), rank_updates.at(kind),
                  paper.at(kind)});
  }
  table.Print();

  std::printf(
      "\nPaper conclusion (§6): \"DASDBS-NSM seems to be the best and NSM "
      "the worst. Also, DASDBS-DSM is (more powerful thus) better than "
      "DSM.\" The computed ranks above should reproduce that ordering, with "
      "DASDBS-DSM's update column as its known weakness.\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
