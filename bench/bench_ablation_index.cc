// Ablation: what the paper's "free" in-memory index assumption hides.
//
// The paper's NSM+index and DASDBS-NSM results assume the address tables
// cost no I/O ("we did not account for additional I/Os needed to ...
// retrieve the tables with addresses"). This bench stores the same
// root-key -> address mapping in a persistent B+-tree with metered I/O and
// compares cold and warm probe costs, plus the memory footprint of the
// in-memory variant.

#include <cstdio>

#include "benchmark/queries.h"
#include "harness.h"
#include "index/bplus_tree.h"
#include "index/transformation_table.h"
#include "models/nsm_model.h"

namespace starfish::bench {
namespace {

int Run() {
  PrintBanner("Ablation: index I/O",
              "Persistent B+-tree vs the paper's uncounted in-memory "
              "address table, for the NSM child-tuple fetch path.");

  TablePrinter table({"objects", "tree height", "tree pages",
                      "cold probe pages", "warm probe pages",
                      "in-memory bytes", "fetch pages (tuples)"});

  for (uint64_t n : {500, 1500, 5000, 15000}) {
    GeneratorConfig config;
    config.n_objects = n;
    auto db = BenchmarkDatabase::Generate(config);
    if (!db.ok()) return 1;

    StorageEngine engine;
    ModelConfig mc;
    mc.schema = db->schema();
    NsmModelOptions nsm_options;
    nsm_options.with_index = true;
    auto model = NsmModel::Create(&engine, mc, nsm_options);
    if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;

    // Build the persistent twin of the Connection-relation root-key index.
    auto index_segment = engine.CreateSegment("btree_index");
    if (!index_segment.ok()) return 1;
    BPlusTree tree(index_segment.value());
    TransformationTable in_memory;
    const NsmDecomposition& decomp = model.value()->decomposition();
    for (const auto& object : db->objects()) {
      auto parts = decomp.Shred(object.tuple);
      if (!parts.ok()) return 1;
      for (size_t i = 0; i < (*parts)[2].size(); ++i) {
        // Value payload: a fake TID-like token (the probe cost is what
        // matters; both variants resolve to the same tuple fetches).
        const Tid tid{static_cast<PageId>(object.ref), static_cast<uint16_t>(i)};
        if (!tree.Insert(object.key, tid.Pack()).ok()) return 1;
        in_memory.Append(object.key, tid);
      }
    }
    if (!engine.Flush().ok()) return 1;

    // Cold probe: drop the cache, look up one key.
    if (!engine.DropCache().ok()) return 1;
    engine.ResetStats();
    if (!tree.Find(db->objects()[n / 2].key).ok()) return 1;
    const double cold = static_cast<double>(engine.stats().io.pages_read);

    // Warm probes: average over many lookups with the index cached.
    engine.ResetStats();
    constexpr int kProbes = 200;
    for (int i = 0; i < kProbes; ++i) {
      if (!tree.Find(db->objects()[(i * 37) % n].key).ok()) return 1;
    }
    const double warm =
        static_cast<double>(engine.stats().io.pages_read) / kProbes;

    // The actual tuple fetch both variants pay afterwards.
    if (!engine.DropCache().ok()) return 1;
    engine.ResetStats();
    if (!model.value()->GetChildRefs(n / 2).ok()) return 1;
    const double fetch = static_cast<double>(engine.stats().io.pages_read);

    table.AddRow({std::to_string(n), std::to_string(tree.height()),
                  std::to_string(tree.node_pages()), Cell(cold), Cell(warm),
                  std::to_string(in_memory.EstimatedBytes()), Cell(fetch)});
  }
  table.Print();

  // End-to-end: the full query suite with the honest (metered) index vs
  // the paper's free in-memory index.
  std::printf("\nNSM+index query suite, free vs metered index (1500 "
              "objects, pages per object/loop):\n");
  {
    GeneratorConfig config;
    config.n_objects = 1500;
    auto db = BenchmarkDatabase::Generate(config);
    if (!db.ok()) return 1;
    TablePrinter suite({"index", "1a", "1b", "2a", "2b", "3b"});
    for (bool persistent : {false, true}) {
      StorageEngineOptions eo;
      eo.buffer.frame_count = 1200;
      StorageEngine engine(eo);
      ModelConfig mc;
      mc.schema = db->schema();
      NsmModelOptions options;
      options.with_index = true;
      options.persistent_index = persistent;
      auto model = NsmModel::Create(&engine, mc, options);
      if (!model.ok() || !db->LoadInto(model->get(), &engine).ok()) return 1;
      QueryConfig qc;
      qc.loops = 300;
      QueryRunner runner(model->get(), &engine, db.operator->(), qc);
      auto q1a = runner.Query1a();
      auto q1b = runner.Query1b();
      auto q2a = runner.Query2a();
      auto q2b = runner.Query2b();
      auto q3b = runner.Query3b();
      if (!q1a.ok() || !q1b.ok() || !q2a.ok() || !q2b.ok() || !q3b.ok()) {
        return 1;
      }
      suite.AddRow({persistent ? "B+-tree (metered)" : "in-memory (free)",
                    Cell(q1a->Pages()), Cell(q1b->Pages()), Cell(q2a->Pages()),
                    Cell(q2b->Pages()), Cell(q3b->Pages())});
    }
    suite.Print();
  }

  std::printf(
      "\nReading: a cold B+-tree probe costs `height` extra pages on top of "
      "the tuple fetch the paper counts — noticeable for single-object "
      "queries (1a roughly doubles), negligible once the hot index levels "
      "are cached (query 2b barely moves). The in-memory table costs RAM "
      "instead, growing linearly with the database.\n");
  return 0;
}

}  // namespace
}  // namespace starfish::bench

int main() { return starfish::bench::Run(); }
