#!/usr/bin/env bash
# CI entry point: configure, build, test, run the crash-matrix durability
# gate (fault-injected power loss -> recovery -> sf_fsck clean, plus the
# example persistent volume vetted by sf_fsck), exercise the direct
# (O_DIRECT) backend end-to-end where the filesystem supports it (tests +
# example + a tiny out-of-core bench, all skipping gracefully otherwise),
# run the hot-path bench over both in-memory-capable backends and the
# multi-threaded read bench, gating on ns/op regressions, run the object
# cache tier's tests + tiny bench, run the generated-workload differential
# harness (seed-matrix oracle + crash fuzz + tiny scenario bench) and diff
# the paper benches against their committed golden stdout (the cache-off
# byte-identity contract), then build with ThreadSanitizer and run the
# buffer-pool, object-cache and concurrent-replay stress tests.
#
# Usage: ci/check.sh [build-dir]     (default: build)
#
# This is exactly the ROADMAP tier-1 command plus the perf-trajectory and
# concurrency stages; run it locally before pushing.
#
# Perf gates:
#   * hot-path: the mem-backend run is compared against the committed
#     reference BENCH_hotpath.json at the repo root and FAILS when any
#     benchmark regresses by more than STARFISH_MAX_REGRESS_PCT (default
#     25) percent ns/op. Set STARFISH_SKIP_PERF_GATE=1 to measure without
#     gating (e.g. on a machine unrelated to the one the reference was
#     recorded on — refresh the reference by copying build/BENCH_hotpath.json
#     over the repo-root file).
#   * mt-read 1-thread overhead: bench_mt_read's unlocked single-shard row
#     is diffed against the same hot-path reference at the same percentage
#     (bounds what the sharding refactor costs the paper benches), and its
#     locked row at a generous structural bound (mutexes are tens of ns on
#     a ~7 ns op; the bound catches accidental global locks, not lock cost).
#     When the runner has >= 8 hardware threads the hit-path speedup at 8
#     threads must also reach 3x.
#   * out-of-core ranking: bench_outofcore --gate-ranking fails the build
#     when the direct backend's measured fetch-shape ordering diverges
#     from the Eq.-1 model, or the five-model Table 4/5/6 rankings shift
#     between the mem expectation and the out-of-core direct run. The
#     measured-ms diff against the committed BENCH_outofcore.json engages
#     only with STARFISH_OUTOFCORE_STABLE=1 (rankings are the paper's
#     claim; milliseconds are the runner's hardware).
#
# TSan stage: a second build dir (<build-dir>-tsan) compiled with
# -fsanitize=thread runs the BufferMt stress suites. Skip with
# STARFISH_SKIP_TSAN=1 on toolchains without libtsan.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
MAX_REGRESS="${STARFISH_MAX_REGRESS_PCT:-25}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== crash matrix =="
# The durability gate: every FaultVolume fault point during Put/Flush/close
# must recover to the last committed catalog generation with sf_fsck clean,
# and a corrupted generation file must fall back or fail cleanly. These run
# in ctest too; the dedicated stage keeps the durability signal readable on
# its own and fails loudly before the perf stages.
"$BUILD_DIR/starfish_tests" \
    --gtest_filter='*CrashMatrix*:*CatalogFuzz*:*FsckTest*:*FaultVolume*'

echo "== WAL crash matrix =="
# The multi-writer durability gate: concurrent writers + power loss at
# every log-append/log-sync/checkpoint fault point (including torn log
# tails) must recover every acknowledged commit; torn-tail replay is swept
# at every record boundary across all five models. These run in ctest too;
# like the volume matrix above, the dedicated stage keeps the WAL signal
# loud and self-contained.
"$BUILD_DIR/starfish_tests" \
    --gtest_filter='*WalCrash*:*WalReplay*:*WalFormat*:*RecordManagerMt*'

echo "== transactions + parallel segment applies =="
# The write-arc stage: multi-op transaction semantics (commit, rollback,
# destructor auto-rollback, Flush refusal while open), the txn crash
# matrix (crash between kTxnBegin and kTxnCommit, rollback racing a
# reader's held objcache entry) and the striped direct-model parallel
# apply tests — then a tiny smoke of bench_wal's apply-scaling and txn
# latency sections (--tiny leaves BENCH_wal.json untouched).
"$BUILD_DIR/starfish_tests" --gtest_filter='*Txn*:*ParallelApply*:*Striped*'
(cd "$BUILD_DIR" && ./bench_wal --txn --tiny)

echo "== WAL recovery example + fsck over the post-crash store =="
# A REAL process crash, not an injected fault: the example checkpoints 300
# readings, logs 200 more under wal_sync=always, and _exit()s. sf_fsck must
# pass on the raw crash image (valid log tail past the checkpoint), the
# recover run must replay all 200 acknowledged puts byte-for-byte, and
# sf_fsck must pass again after the recovery checkpoint.
WAL_DIR="$BUILD_DIR/wal_crash_example"
rm -rf "$WAL_DIR"
"$BUILD_DIR/example_wal_recovery" crash "$WAL_DIR" > /dev/null
"$BUILD_DIR/sf_fsck" "$WAL_DIR"
"$BUILD_DIR/example_wal_recovery" recover "$WAL_DIR" > /dev/null
"$BUILD_DIR/sf_fsck" "$WAL_DIR"

echo "== WAL commit-latency bench =="
# Commit latency vs writer count x sync policy over the mmap backend
# (emits BENCH_wal.json). Ungated: fsync latency is runner hardware;
# archive the artifact and watch the trend until the numbers stabilize.
(cd "$BUILD_DIR" && ./bench_wal)

echo "== fsck over the example persistent volume =="
# Drive the real persistent store end-to-end (create, reopen) and vet the
# directory with the offline checker; the example exits non-zero unless
# sf_fsck reports zero inconsistencies.
EXAMPLE_DIR="$BUILD_DIR/persist_example"
rm -rf "$EXAMPLE_DIR"
"$BUILD_DIR/example_persistent_volume" "$EXAMPLE_DIR" > /dev/null
"$BUILD_DIR/example_persistent_volume" "$EXAMPLE_DIR" > /dev/null
"$BUILD_DIR/sf_fsck" "$EXAMPLE_DIR"

echo "== direct (O_DIRECT) backend =="
# The real-device backend: conformance + crash matrix run inside ctest too;
# this stage re-runs them loudly, then drives the example + sf_fsck over
# O_DIRECT and a tiny out-of-core smoke. Every piece skips gracefully when
# the runner's filesystem rejects O_DIRECT (tmpfs/overlayfs): the tests
# GTEST_SKIP, the example exits 3, and bench_outofcore records
# "direct_skipped": true in its JSON.
"$BUILD_DIR/starfish_tests" --gtest_filter='*Direct*:*direct*'
EXAMPLE_DIR_DIRECT="$BUILD_DIR/persist_example_direct"
rm -rf "$EXAMPLE_DIR_DIRECT"
direct_rc=0
"$BUILD_DIR/example_persistent_volume" "$EXAMPLE_DIR_DIRECT" direct \
    > /dev/null || direct_rc=$?
if [[ "$direct_rc" -eq 0 ]]; then
  "$BUILD_DIR/example_persistent_volume" "$EXAMPLE_DIR_DIRECT" direct \
      > /dev/null
  "$BUILD_DIR/sf_fsck" "$EXAMPLE_DIR_DIRECT"
elif [[ "$direct_rc" -eq 3 ]]; then
  echo "direct example skipped: no O_DIRECT support on this filesystem"
else
  echo "direct example FAILED (exit $direct_rc)"
  exit "$direct_rc"
fi

echo "== out-of-core bench (tiny smoke, ranking-gated) =="
# Modelled-vs-measured ms per access mix over mmap + direct (emits
# BENCH_outofcore.json), PLUS the PR 8 sections: per-thread-ring scaling
# rows at 1/2/4 submitters (completion-driven PrefetchStream per thread,
# per-thread rings vs the single-ring-mutex baseline) and the five-model
# out-of-core reproduction (Table 4/5/6 fetch-shape rankings must match
# the in-memory expectation). --gate-ranking FAILS the build when the
# direct backend's measured ranking diverges from the Eq.-1 model or the
# model rankings shift out-of-core; everything direct skips gracefully on
# filesystems without O_DIRECT. The measured-ms gate against the committed
# reference BENCH_outofcore.json engages only on runners marked stable
# (STARFISH_OUTOFCORE_STABLE=1) — wall milliseconds are hardware, rankings
# are the paper's claim.
OOC_ARGS=(--tiny --threads 4 --models --gate-ranking)
if [[ "${STARFISH_OUTOFCORE_STABLE:-0}" == "1" ]]; then
  OOC_ARGS+=(--compare "$REPO_ROOT/BENCH_outofcore.json"
             --max-regress "$MAX_REGRESS")
fi
(cd "$BUILD_DIR" && ./bench_outofcore "${OOC_ARGS[@]}")

echo "== object cache =="
# The assembled-object cache tier: unit + store-level + crash-safety tests
# run loudly (they run in ctest too), then a tiny skewed-Get sweep over all
# five models x both backends x enabled/disabled (emits BENCH_objcache.json;
# archived ungated — speedups are runner hardware, the full-size run's
# hot-mix speedup is the acceptance number).
"$BUILD_DIR/starfish_tests" --gtest_filter='*ObjCache*:*ObjectCache*'
(cd "$BUILD_DIR" && ./bench_objcache --tiny)

echo "== workload: generated-scenario differential harness =="
# The OCB-style workload subsystem: trace format + generator invariants,
# the 20-seed differential matrix (every read and the final state byte-
# compared against the in-memory oracle across all five models x mem/mmap
# x objcache on/off), the objcache negative-caching/epoch coverage, and
# the generated-trace crash fuzz. All run in ctest too; the dedicated
# stage keeps the divergence signal loud, and any failure prints the
# STARFISH_SEED that reproduces it. Then bench_scenarios replays every
# scenario family over the config matrix (emits BENCH_scenarios.json,
# archived ungated — each cell's verified guard replay is the gate).
"$BUILD_DIR/starfish_tests" --gtest_filter='*ScenarioTrace*:*Workload*'
(cd "$BUILD_DIR" && ./bench_scenarios --tiny)

echo "== paper benches byte-identical with the cache tier disabled =="
# The 14 paper benches never construct an object cache (objcache.enabled
# defaults to false, and they drive the models/engine directly), so their
# stdout must match the committed goldens byte for byte. A diff here means
# the cache tier leaked into the measured paper pipeline — exactly what
# StoreOptions::objcache.enabled=false promises cannot happen.
PAPER_BENCHES=(bench_table2_sizes bench_table3_analytic bench_table4_page_ios
               bench_table5_io_calls bench_table6_buffer_fixes
               bench_table7_skew bench_table8_overall bench_fig5_object_size
               bench_fig6_cache bench_ablation_buffer bench_ablation_index
               bench_ablation_pagesize bench_ablation_scan_pushdown
               bench_ablation_skew_nodes)
for b in "${PAPER_BENCHES[@]}"; do
  (cd "$BUILD_DIR" && "./$b" 2>/dev/null) | \
      diff -u "$REPO_ROOT/bench/golden/$b.txt" - || {
    echo "paper bench $b diverged from its committed golden stdout"
    exit 1
  }
done
echo "all ${#PAPER_BENCHES[@]} paper benches byte-identical"

echo "== hot-path bench (mem backend) =="
# Emits BENCH_hotpath.json into the build dir; archive it from CI to watch
# the perf trajectory across PRs.
if [[ "${STARFISH_SKIP_PERF_GATE:-0}" == "1" ]]; then
  (cd "$BUILD_DIR" && ./bench_hotpath_buffer --backend mem)
else
  (cd "$BUILD_DIR" && ./bench_hotpath_buffer --backend mem \
      --compare "$REPO_ROOT/BENCH_hotpath.json" --max-regress "$MAX_REGRESS")
fi

echo "== hot-path bench (mmap backend) =="
# The mmap backend runs the same loops over memory-mapped extent files
# (emits BENCH_hotpath_mmap.json). Not gated: kernel page-cache behaviour
# is machine-dependent; the numbers are archived for trend-watching.
(cd "$BUILD_DIR" && ./bench_hotpath_buffer --backend mmap)

echo "== mt-read bench (mem backend) =="
# Multi-threaded read-path scaling + the 1-thread sharding-overhead gate
# (emits BENCH_mt_read.json). The speedup assertion only engages where the
# hardware can deliver it.
# Seed the array so it is never empty: expanding an empty array under
# `set -u` aborts on bash < 4.4 (e.g. the macOS system bash).
MT_ARGS=(--backend mem)
if [[ "${STARFISH_SKIP_PERF_GATE:-0}" != "1" ]]; then
  MT_ARGS+=(--compare-hotpath "$REPO_ROOT/BENCH_hotpath.json"
            --max-regress "$MAX_REGRESS")
  if [[ "$(nproc)" -ge 8 ]]; then
    MT_ARGS+=(--min-speedup 3)
  fi
fi
(cd "$BUILD_DIR" && ./bench_mt_read "${MT_ARGS[@]}")

echo "== mt-read bench (mmap backend) =="
# Archived ungated, like the mmap hot-path run.
(cd "$BUILD_DIR" && ./bench_mt_read --backend mmap)

echo "== mt-read bench (direct backend: per-thread rings vs shared) =="
# Raw device read throughput through SubmitReadChained pipelines, per-
# thread io_uring rings vs the pre-rework single-ring-mutex baseline
# (emits BENCH_mt_read_direct.json; skip-tolerant without O_DIRECT).
# Archived ungated in CI — the committed reference rows document the
# scaling the rework bought on the reference runner.
(cd "$BUILD_DIR" && ./bench_mt_read --backend direct)

if [[ "${STARFISH_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== TSan stress skipped (STARFISH_SKIP_TSAN=1) =="
else
  echo "== TSan build =="
  # Debug keeps assert() (the PageGuard pin-ownership check) live; the
  # option adds -O1 so the instrumented stress tests stay quick.
  cmake -B "$BUILD_DIR-tsan" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Debug \
        -DSTARFISH_TSAN=ON -DSTARFISH_BUILD_BENCHES=OFF \
        -DSTARFISH_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR-tsan" --target starfish_tests -j "$(nproc)"

  echo "== TSan stress tests =="
  # DirectRingMt covers the per-thread io_uring ring registry (threads
  # outliving volumes, registration churn against live rings); it skips
  # inside the TSan build too when the filesystem has no O_DIRECT.
  # ParallelApplyMt drives concurrent writers over disjoint stripes through
  # the per-segment latch path — the race surface the latch push-down added.
  # WorkloadMt replays generated traces with 2/4 workers (batched reads
  # through concurrent sessions, stream-partitioned writes) and must land
  # byte-identical to the sequential replay.
  "$BUILD_DIR-tsan/starfish_tests" \
      --gtest_filter='*BufferMt*:*ShardedDeterminism*:*ObjCacheMt*:*DirectRingMt*:*ParallelApplyMt*:*WorkloadMt*'
fi

echo "== OK =="
