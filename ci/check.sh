#!/usr/bin/env bash
# CI entry point: configure, build, test, and run the hot-path bench.
#
# Usage: ci/check.sh [build-dir]     (default: build)
#
# This is exactly the ROADMAP tier-1 command plus the perf-trajectory bench;
# run it locally before pushing.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== hot-path bench =="
# Emits BENCH_hotpath.json into the build dir; archive it from CI to watch
# the perf trajectory across PRs.
(cd "$BUILD_DIR" && ./bench_hotpath_buffer)

echo "== OK =="
