#!/usr/bin/env bash
# CI entry point: configure, build, test, and run the hot-path bench over
# both volume backends, gating on ns/op regressions.
#
# Usage: ci/check.sh [build-dir]     (default: build)
#
# This is exactly the ROADMAP tier-1 command plus the perf-trajectory bench;
# run it locally before pushing.
#
# Perf gate: the mem-backend run is compared against the committed reference
# BENCH_hotpath.json at the repo root and FAILS when any benchmark regresses
# by more than STARFISH_MAX_REGRESS_PCT (default 25) percent ns/op. Set
# STARFISH_SKIP_PERF_GATE=1 to measure without gating (e.g. on a machine
# unrelated to the one the reference was recorded on — refresh the reference
# by copying build/BENCH_hotpath.json over the repo-root file).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
MAX_REGRESS="${STARFISH_MAX_REGRESS_PCT:-25}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== hot-path bench (mem backend) =="
# Emits BENCH_hotpath.json into the build dir; archive it from CI to watch
# the perf trajectory across PRs.
if [[ "${STARFISH_SKIP_PERF_GATE:-0}" == "1" ]]; then
  (cd "$BUILD_DIR" && ./bench_hotpath_buffer --backend mem)
else
  (cd "$BUILD_DIR" && ./bench_hotpath_buffer --backend mem \
      --compare "$REPO_ROOT/BENCH_hotpath.json" --max-regress "$MAX_REGRESS")
fi

echo "== hot-path bench (mmap backend) =="
# The mmap backend runs the same loops over memory-mapped extent files
# (emits BENCH_hotpath_mmap.json). Not gated: kernel page-cache behaviour
# is machine-dependent; the numbers are archived for trend-watching.
(cd "$BUILD_DIR" && ./bench_hotpath_buffer --backend mmap)

echo "== OK =="
