// The paper's motivating scenario end to end: a railway network of Station
// objects, navigated the way query 2 does — and the same navigation run
// under every storage model, printing what each one pays in physical I/O.
//
//   $ ./build/examples/railway_navigation

#include <cstdio>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"
#include "core/complex_object_store.h"

using namespace starfish;        // NOLINT — example brevity
using namespace starfish::bench; // NOLINT

namespace {

/// Two-hop itinerary scan from a station: which stations are reachable
/// with at most one change? (Exactly the access pattern of query 2.)
Result<size_t> ReachableWithinTwoHops(ComplexObjectStore* store,
                                      ObjectRef start) {
  STARFISH_ASSIGN_OR_RETURN(std::vector<ObjectRef> direct,
                            store->Children(start));
  size_t reachable = direct.size();
  for (ObjectRef station : direct) {
    STARFISH_ASSIGN_OR_RETURN(std::vector<ObjectRef> onward,
                              store->Children(station));
    reachable += onward.size();
    // Look at the destination boards (root records) of the far stations.
    for (ObjectRef far : onward) {
      STARFISH_ASSIGN_OR_RETURN(Tuple root, store->RootRecord(far));
      (void)root;
    }
  }
  return reachable;
}

}  // namespace

int main() {
  // Generate the paper's railway database: 1500 stations, ~1.6 platforms
  // and ~4.1 outgoing connections each.
  GeneratorConfig config;
  config.n_objects = 1500;
  auto db_or = BenchmarkDatabase::Generate(config);
  if (!db_or.ok()) return 1;
  const BenchmarkDatabase& db = db_or.value();
  std::printf("railway network: %zu stations, avg %.2f platforms / %.2f "
              "connections each\n\n",
              db.objects().size(), db.stats().avg_platforms,
              db.stats().avg_connections);

  std::printf("%-12s | %-10s | %-12s | %-10s | %s\n", "model", "pages",
              "I/O calls", "fixes", "est. ms (Eq. 1)");
  std::printf("-------------+------------+--------------+------------+------"
              "----\n");
  for (StorageModelKind kind : AllStorageModelKinds()) {
    if (kind == StorageModelKind::kNsm) {
      // Plain NSM has no object identifiers; navigation would need one
      // relation scan per wave (see the benchmark for that variant).
    }
    StoreOptions options;
    options.model = kind;
    auto store_or = ComplexObjectStore::Open(db.schema(), options);
    if (!store_or.ok()) return 1;
    auto& store = *store_or.value();
    for (const BenchmarkObject& object : db.objects()) {
      if (!store.Put(object.ref, object.tuple).ok()) return 1;
    }
    (void)store.Flush();
    (void)store.engine()->DropCache();
    store.ResetStats();

    size_t reachable = 0;
    for (ObjectRef start : {17u, 421u, 1234u}) {
      auto r = ReachableWithinTwoHops(&store, start);
      if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", ToString(kind).c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
      reachable += r.value();
    }
    const EngineStats stats = store.stats();
    std::printf("%-12s | %-10llu | %-12llu | %-10llu | %.1f\n",
                ToString(kind).c_str(),
                static_cast<unsigned long long>(stats.io.TotalPages()),
                static_cast<unsigned long long>(stats.io.TotalCalls()),
                static_cast<unsigned long long>(stats.buffer.fixes),
                store.EstimatedIoMillis());
    if (reachable == 0) std::printf("(isolated start stations drawn)\n");
  }

  std::printf(
      "\nSame logical work, very different physical bills — the paper's "
      "point in one table. DSM drags whole stations (sightseeing guides "
      "included) through the buffer; DASDBS-NSM touches one small tuple "
      "per hop.\n");
  return 0;
}
