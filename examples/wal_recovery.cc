// WAL redo recovery, demonstrated with a real process crash.
//
//   $ ./build/example_wal_recovery crash   /tmp/demo     # dies mid-work
//   $ ./build/example_wal_recovery recover /tmp/demo     # replays the log
//
// The `crash` run opens a persistent store with wal_sync=always, commits a
// checkpoint of 300 readings, puts 200 more whose only durable trace is the
// write-ahead log, and then kills the process with _exit() — no destructor,
// no Flush, exactly what a power cut leaves behind: the catalog still
// points at the 300-object checkpoint and wal.log carries 200 fsync'd redo
// records past it.
//
// The `recover` run simply reopens the directory. ComplexObjectStore::Open
// notices the committed checkpoint LSN, replays the log tail on top of the
// checkpoint image, and every acknowledged Put is back — then a clean close
// checkpoints the recovered state and truncates the log. The run fails
// (exit 1) unless all 500 readings survive, byte for byte.
//
// CI drives crash -> sf_fsck (the crash image itself must scan clean) ->
// recover -> sf_fsck again; see ci/check.sh.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/complex_object_store.h"

using namespace starfish;  // NOLINT — example brevity

namespace {

constexpr int kCheckpointed = 300;  // durable via the catalog checkpoint
constexpr int kLogged = 200;        // durable via the WAL only

Tuple MakeReading(int i) {
  return Tuple{{Value::Int32(i), Value::Str("station-" + std::to_string(i % 7)),
                Value::Relation({
                    Tuple{{Value::Int32(1), Value::Str("t=21.5C")}},
                    Tuple{{Value::Int32(2), Value::Str("rh=40%")}},
                })}};
}

std::shared_ptr<const Schema> ReadingSchema() {
  auto item = SchemaBuilder("Measurement")
                  .AddInt32("SensorId")
                  .AddString("Payload")
                  .Build();
  return SchemaBuilder("Reading")
      .AddInt32("ReadingId")  // the object key (attribute 0)
      .AddString("Station")
      .AddRelation("Measurements", item)
      .Build();
}

StoreOptions DemoOptions(const std::string& dir) {
  StoreOptions options;
  options.model = StorageModelKind::kDasdbsNsm;
  options.backend = VolumeKind::kMmap;
  options.path = dir;
  options.wal_sync = WalSyncPolicy::kAlways;  // every Put acks durable
  return options;
}

int RunCrash(const std::string& dir) {
  auto store_or = ComplexObjectStore::Open(ReadingSchema(), DemoOptions(dir));
  if (!store_or.ok()) {
    std::fprintf(stderr, "open: %s\n", store_or.status().ToString().c_str());
    return 1;
  }
  auto& store = *store_or.value();
  for (int i = 0; i < kCheckpointed; ++i) {
    if (auto st = store.Put(i, MakeReading(i)); !st.ok()) {
      std::fprintf(stderr, "put %d: %s\n", i, st.ToString().c_str());
      return 1;
    }
  }
  if (auto st = store.Flush(); !st.ok()) {  // the committed checkpoint
    std::fprintf(stderr, "flush: %s\n", st.ToString().c_str());
    return 1;
  }
  for (int i = kCheckpointed; i < kCheckpointed + kLogged; ++i) {
    if (auto st = store.Put(i, MakeReading(i)); !st.ok()) {
      std::fprintf(stderr, "put %d: %s\n", i, st.ToString().c_str());
      return 1;
    }
  }
  std::printf("checkpointed %d readings (catalog generation %llu), logged %d "
              "more, now dying without a flush...\n",
              kCheckpointed,
              static_cast<unsigned long long>(store.catalog_generation()),
              kLogged);
  std::fflush(stdout);
  _exit(0);  // the "power cut": no destructors, no checkpoint
}

int RunRecover(const std::string& dir) {
  const auto reading = ReadingSchema();
  auto store_or = ComplexObjectStore::Open(reading, DemoOptions(dir));
  if (!store_or.ok()) {
    std::fprintf(stderr, "reopen: %s\n", store_or.status().ToString().c_str());
    return 1;
  }
  auto& store = *store_or.value();
  std::printf("reopened: replayed %llu WAL records onto catalog generation "
              "%llu, %llu readings live.\n",
              static_cast<unsigned long long>(store.replayed_wal_records()),
              static_cast<unsigned long long>(store.catalog_generation()),
              static_cast<unsigned long long>(store.model()->object_count()));
  if (store.replayed_wal_records() < static_cast<size_t>(kLogged)) {
    std::fprintf(stderr, "expected at least %d replayed records\n", kLogged);
    return 1;
  }
  if (store.model()->object_count() !=
      static_cast<size_t>(kCheckpointed + kLogged)) {
    std::fprintf(stderr, "expected %d readings\n", kCheckpointed + kLogged);
    return 1;
  }
  for (int i = 0; i < kCheckpointed + kLogged; ++i) {
    auto got = store.GetByKey(i, Projection::All(*reading));
    if (!got.ok() || got.value() != MakeReading(i)) {
      std::fprintf(stderr, "reading %d did not survive intact\n", i);
      return 1;
    }
  }
  std::printf("all %d readings back, byte for byte — including the %d that "
              "only ever lived in the log.\n",
              kCheckpointed + kLogged, kLogged);
  return 0;  // the clean close checkpoints and truncates the log
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  const std::string dir =
      argc > 2 ? argv[2] : "/tmp/starfish_wal_recovery_example";
  if (mode == "crash") return RunCrash(dir);
  if (mode == "recover") return RunRecover(dir);
  std::fprintf(stderr, "usage: %s crash|recover [dir]\n", argv[0]);
  return 2;
}
