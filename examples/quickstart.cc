// Quickstart: define an NF² schema, open a store, put/get complex objects,
// and read the I/O meter.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/complex_object_store.h"

using namespace starfish;  // NOLINT — example brevity

int main() {
  // 1. Describe the complex object: an Order with nested Items, each
  //    possibly referencing another Order (a re-order link).
  auto item = SchemaBuilder("Item")
                  .AddInt32("ItemNr")
                  .AddString("Product")
                  .AddInt32("Quantity")
                  .AddLink("Reorder")
                  .Build();
  auto order = SchemaBuilder("Order")
                   .AddInt32("OrderId")   // the object key (attribute 0)
                   .AddString("Customer")
                   .AddRelation("Items", item)
                   .Build();

  // 2. Open a store. The storage model is a knob: DASDBS-NSM is the
  //    paper's overall winner; try kDsm or kNsm and watch the stats change.
  //    The disk backend is a knob too — the default is the in-memory
  //    volume; for a store that exceeds RAM and survives restarts, set
  //        options.backend = VolumeKind::kMmap;
  //        options.path = "/tmp/my_store";
  //    (see examples/persistent_volume.cc for the full tour).
  StoreOptions options;
  options.model = StorageModelKind::kDasdbsNsm;
  auto store_or = ComplexObjectStore::Open(order, options);
  if (!store_or.ok()) {
    std::fprintf(stderr, "open: %s\n", store_or.status().ToString().c_str());
    return 1;
  }
  auto& store = *store_or.value();

  // 3. Store a few orders. ObjectRefs double as LINK payloads.
  for (int i = 0; i < 100; ++i) {
    Tuple obj{{Value::Int32(1000 + i), Value::Str("customer-" + std::to_string(i)),
               Value::Relation({
                   Tuple{{Value::Int32(0), Value::Str("widget"),
                          Value::Int32(3), Value::Link((i + 1) % 100)}},
                   Tuple{{Value::Int32(1), Value::Str("gadget"),
                          Value::Int32(1), Value::Link((i + 7) % 100)}},
               })}};
    if (auto st = store.Put(i, obj); !st.ok()) {
      std::fprintf(stderr, "put: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  (void)store.Flush();  // "database disconnect": dirty pages reach disk

  // 4. Read objects back — whole, by key, or projected.
  auto whole = store.Get(42);
  auto by_key = store.GetByKey(1042, Projection::All(*order));
  auto root_only = store.Get(42, Projection::RootOnly(*order));
  if (!whole.ok() || !by_key.ok() || !root_only.ok()) return 1;
  std::printf("order 42: %s\n", TupleToString(whole.value()).c_str());
  std::printf("root only: %s\n", TupleToString(root_only.value()).c_str());

  // 5. Navigate the object graph (query 2 of the paper).
  auto children = store.Children(42);
  if (!children.ok()) return 1;
  std::printf("order 42 references orders:");
  for (ObjectRef ref : children.value()) std::printf(" %llu",
      static_cast<unsigned long long>(ref));
  std::printf("\n");

  // 6. Every operation was metered.
  const EngineStats stats = store.stats();
  std::printf("\nI/O meter: %s\n", stats.io.ToString().c_str());
  std::printf("buffer:    %s\n", stats.buffer.ToString().c_str());
  std::printf("estimated disk time (Eq. 1): %.2f ms\n",
              store.EstimatedIoMillis());
  return 0;
}
