// The library is schema-generic: nothing is hard-wired to the railway
// benchmark. This example stores a CAD-flavoured assembly hierarchy
// (three levels of nesting, cross-references between assemblies) and shows
// projections, navigation and the effect of swapping the storage model.
//
//   $ ./build/examples/document_store

#include <cstdio>

#include "core/complex_object_store.h"
#include "util/random.h"

using namespace starfish;  // NOLINT — example brevity

namespace {

std::shared_ptr<const Schema> MakeAssemblySchema() {
  // Assembly -> Part -> Feature, plus a DependsOn link on Part.
  auto feature = SchemaBuilder("Feature")
                     .AddInt32("FeatureNr")
                     .AddString("Kind")
                     .AddString("Parameters")
                     .Build();
  auto part = SchemaBuilder("Part")
                  .AddInt32("PartNr")
                  .AddString("Material")
                  .AddLink("DependsOn")
                  .AddRelation("Features", feature)
                  .Build();
  return SchemaBuilder("Assembly")
      .AddInt32("AssemblyId")
      .AddString("Name")
      .AddString("Revision")
      .AddRelation("Parts", part)
      .Build();
}

Tuple MakeAssembly(Rng* rng, int32_t id, uint64_t n_assemblies) {
  std::vector<Tuple> parts;
  const uint64_t n_parts = 1 + rng->Uniform(5);
  for (uint64_t p = 0; p < n_parts; ++p) {
    std::vector<Tuple> features;
    const uint64_t n_features = rng->Uniform(4);
    for (uint64_t f = 0; f < n_features; ++f) {
      features.push_back(Tuple{{Value::Int32(static_cast<int32_t>(f)),
                                Value::Str("hole"),
                                Value::Str(rng->RandomString(40))}});
    }
    parts.push_back(Tuple{{Value::Int32(static_cast<int32_t>(p)),
                           Value::Str("steel"),
                           Value::Link(rng->Uniform(n_assemblies)),
                           Value::Relation(std::move(features))}});
  }
  return Tuple{{Value::Int32(id), Value::Str("asm-" + std::to_string(id)),
                Value::Str("rev-A"), Value::Relation(std::move(parts))}};
}

}  // namespace

int main() {
  auto schema = MakeAssemblySchema();
  std::printf("schema paths:\n");
  for (PathId p = 0; p < schema->path_count(); ++p) {
    std::printf("  path %u = %s\n", p, schema->path(p).qualified_name.c_str());
  }

  constexpr uint64_t kAssemblies = 400;
  for (StorageModelKind kind :
       {StorageModelKind::kDasdbsDsm, StorageModelKind::kDasdbsNsm}) {
    StoreOptions options;
    options.model = kind;
    options.buffer_frames = 256;
    auto store_or = ComplexObjectStore::Open(schema, options);
    if (!store_or.ok()) return 1;
    auto& store = *store_or.value();

    Rng rng(7);
    for (uint64_t i = 0; i < kAssemblies; ++i) {
      if (!store.Put(i, MakeAssembly(&rng, static_cast<int32_t>(i),
                                     kAssemblies)).ok()) {
        return 1;
      }
    }
    (void)store.Flush();
    (void)store.engine()->DropCache();
    store.ResetStats();

    // Where-used query: walk the dependency links two levels deep from a
    // few assemblies, reading only the Part level (projection pushes the
    // Feature sub-tuples out of the I/O path).
    size_t visited = 0;
    for (ObjectRef start : {3u, 99u, 250u}) {
      auto deps = store.Children(start);
      if (!deps.ok()) return 1;
      for (ObjectRef dep : deps.value()) {
        auto second = store.Children(dep);
        if (!second.ok()) return 1;
        visited += second->size();
      }
    }
    const EngineStats stats = store.stats();
    std::printf(
        "\n%s: where-used walk visited %zu second-level dependencies\n"
        "  pages=%llu calls=%llu fixes=%llu\n",
        ToString(kind).c_str(), visited,
        static_cast<unsigned long long>(stats.io.TotalPages()),
        static_cast<unsigned long long>(stats.io.TotalCalls()),
        static_cast<unsigned long long>(stats.buffer.fixes));
  }

  std::printf(
      "\nThe same decomposition machinery that split Station into 4 "
      "relations derives 3 relations for Assembly/Part/Feature — including "
      "the RootKey/ParentKey/OwnKey bookkeeping — entirely from the "
      "schema.\n");
  return 0;
}
