// The NF² algebra behind the paper's storage transformations, hands on:
// shred a complex object into flat NSM rows, rebuild the DASDBS-NSM nested
// form with ν (nest), tear it open with μ (unnest), and reassemble objects
// with σ/π/join — the operations §3.3/§3.4 compose.
//
//   $ ./build/examples/nf2_algebra_tour

#include <cstdio>

#include "benchmark/generator.h"
#include "models/normalization.h"
#include "nf2/algebra.h"

using namespace starfish;        // NOLINT — example brevity
using namespace starfish::bench; // NOLINT

namespace {

void Show(const char* title, const Relation& rel, size_t max_rows = 3) {
  std::printf("\n%s — schema %s, %zu tuples:\n", title,
              rel.schema->name().c_str(), rel.tuples.size());
  std::printf("  attributes:");
  for (const Attribute& attr : rel.schema->attributes()) {
    std::printf(" %s", attr.name.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < rel.tuples.size() && i < max_rows; ++i) {
    std::string rendered = TupleToString(rel.tuples[i]);
    if (rendered.size() > 110) rendered = rendered.substr(0, 107) + "...";
    std::printf("  %s\n", rendered.c_str());
  }
  if (rel.tuples.size() > max_rows) std::printf("  ...\n");
}

}  // namespace

int main() {
  GeneratorConfig config;
  config.n_objects = 6;
  config.string_bytes = 6;  // keep the demo output readable
  auto db = BenchmarkDatabase::Generate(config);
  if (!db.ok()) return 1;
  auto decomp = NsmDecomposition::Derive(db->schema(), 0);
  if (!decomp.ok()) return 1;

  // 1. Shred every Station into the flat NSM_Connection relation.
  Relation connections;
  connections.schema = decomp->relation(2).flat_schema;
  for (const auto& object : db->objects()) {
    auto parts = decomp->Shred(object.tuple);
    if (!parts.ok()) return 1;
    for (const Tuple& row : (*parts)[2]) connections.tuples.push_back(row);
  }
  Show("NSM_Connection (flat rows, §3.3)", connections);

  // 2. ν — nest everything but RootKey: one tuple per object, the
  //    DASDBS-NSM clustering of §3.4.
  std::vector<size_t> nest_attrs;
  for (size_t i = 1; i < connections.schema->attributes().size(); ++i) {
    nest_attrs.push_back(i);
  }
  auto nested = Nest(connections, nest_attrs, "Connections");
  if (!nested.ok()) return 1;
  Show("after NEST on RootKey (DASDBS-NSM form, §3.4)", nested.value());

  // 3. μ — unnest is its inverse here (every group non-empty).
  auto flat_again = Unnest(nested.value(), 1);
  if (!flat_again.ok()) return 1;
  std::printf("\nunnest(nest(R)) has %zu rows — R had %zu. %s\n",
              flat_again->tuples.size(), connections.tuples.size(),
              flat_again->tuples.size() == connections.tuples.size()
                  ? "Lossless."
                  : "LOST ROWS?!");

  // 4. σ + π — the departure board of one station: connections of key 3.
  auto of_station = Select(connections, [](const Tuple& t) {
    return t.values[0].as_int32() == 3;
  });
  if (!of_station.ok()) return 1;
  auto key_idx = connections.schema->IndexOf("KeyConnection");
  auto times_idx = connections.schema->IndexOf("DepartureTimes");
  if (!key_idx.ok() || !times_idx.ok()) return 1;
  auto board = Project(of_station.value(), {key_idx.value(), times_idx.value()});
  if (!board.ok()) return 1;
  Show("departure board of station 3 (sigma + pi)", board.value(), 6);

  // 5. join — pair each connection with its destination's root row, the
  //    reassembly step the paper's normalized models pay for.
  Relation stations;
  stations.schema = decomp->relation(0).flat_schema;
  for (const auto& object : db->objects()) {
    auto parts = decomp->Shred(object.tuple);
    if (!parts.ok()) return 1;
    stations.tuples.push_back((*parts)[0][0]);
  }
  auto joined = JoinOn(connections, key_idx.value(), stations, 0);
  if (!joined.ok()) return 1;
  std::printf("\njoin(Connection.KeyConnection = Station.Key): %zu pairs — "
              "every connection found its destination station.\n",
              joined->tuples.size());
  return 0;
}
