// Persistent volumes and timed I/O: the pluggable Volume backends.
//
//   $ ./build/example_persistent_volume [dir]
//
// Run it twice with the same directory: the first run creates an
// mmap-backed store and loads it; the second run finds the data already
// there and skips the load. The store also wraps its volume in a
// TimedVolume, so the I/O meter prints estimated milliseconds (Equation 1,
// charged per I/O call) next to the call/page counts.

#include <cstdio>
#include <string>

#include "core/complex_object_store.h"
#include "tools/fsck.h"

using namespace starfish;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/starfish_persistent_example";

  auto item = SchemaBuilder("Measurement")
                  .AddInt32("SensorId")
                  .AddString("Payload")
                  .Build();
  auto reading = SchemaBuilder("Reading")
                     .AddInt32("ReadingId")  // the object key (attribute 0)
                     .AddString("Station")
                     .AddRelation("Measurements", item)
                     .Build();

  // The backend is a knob: kMem (default) simulates, kMmap persists.
  StoreOptions options;
  options.model = StorageModelKind::kDasdbsNsm;
  options.backend = VolumeKind::kMmap;
  options.path = dir;
  // Charge Equation-1 service time per I/O call, using the mechanical
  // parameters of a period drive.
  options.timed_volume = true;
  options.timing = PhysicalTimingModel{}.ToLinear();

  auto store_or = ComplexObjectStore::Open(reading, options);
  if (!store_or.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 store_or.status().ToString().c_str());
    return 1;
  }
  auto& store = *store_or.value();

  if (store.opened_from_fallback()) {
    std::printf("NOTE: the newest catalog generation was damaged; recovered "
                "the previous committed one.\n");
  }
  if (store.model()->object_count() == 0) {
    std::printf("fresh store at %s — loading 500 readings...\n", dir.c_str());
    for (int i = 0; i < 500; ++i) {
      Tuple obj{{Value::Int32(i), Value::Str("station-" + std::to_string(i % 7)),
                 Value::Relation({
                     Tuple{{Value::Int32(1), Value::Str("t=21.5C")}},
                     Tuple{{Value::Int32(2), Value::Str("rh=40%")}},
                 })}};
      if (auto st = store.Put(i, obj); !st.ok()) {
        std::fprintf(stderr, "put: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    if (auto st = store.Flush(); !st.ok()) {  // durable checkpoint
      std::fprintf(stderr, "flush: %s\n", st.ToString().c_str());
      return 1;
    }
    // The checkpoint is crash-consistent: the volume was synced first, the
    // catalog went to a fresh generation file, and the atomic CURRENT
    // repoint committed it. A power loss at ANY point leaves either this
    // checkpoint or the previous one — never a half-written store.
    std::printf("loaded; committed catalog generation %llu.\n",
                static_cast<unsigned long long>(store.catalog_generation()));
    std::printf("Run me again: the data will still be there.\n\n");
  } else {
    std::printf("reopened store at %s — %llu readings survived the last "
                "process (catalog generation %llu).\n\n",
                dir.c_str(),
                static_cast<unsigned long long>(store.model()->object_count()),
                static_cast<unsigned long long>(store.catalog_generation()));
  }

  // Start cold so the meter shows real volume traffic in both runs.
  (void)store.engine()->DropCache();
  store.ResetStats();
  auto back = store.GetByKey(42, Projection::All(*reading));
  if (!back.ok()) {
    std::fprintf(stderr, "get: %s\n", back.status().ToString().c_str());
    return 1;
  }
  std::printf("reading 42: %s\n\n", TupleToString(back.value()).c_str());

  const EngineStats stats = store.stats();
  std::printf("I/O meter:  %s\n", stats.io.ToString().c_str());
  std::printf("timed cost: %.2f ms charged by the TimedVolume "
              "(Eq. 1 per call)\n",
              store.timed_millis());
  std::printf("            %.2f ms from the counter snapshot — same "
              "equation, same answer\n\n",
              store.EstimatedIoMillis());

  // Vet the on-disk state with the offline checker (also available as the
  // standalone `sf_fsck <dir>` binary).
  auto report = RunFsck(dir);
  if (!report.ok()) {
    std::fprintf(stderr, "fsck: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report.value().ToString().c_str());
  return report.value().clean() ? 0 : 1;
}
