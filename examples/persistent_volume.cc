// Persistent volumes and timed I/O: the pluggable Volume backends.
//
//   $ ./build/example_persistent_volume [dir] [mmap|direct]
//
// Run it twice with the same directory: the first run creates a persistent
// store and loads it; the second run finds the data already there and skips
// the load. The backend argument picks the access path — mmap (page-cache
// backed, the default) or direct (O_DIRECT: every page transfer is a real
// device I/O). Both write the SAME on-disk format, so you can even load
// with one and reopen with the other. The store also wraps its volume in a
// TimedVolume, so the I/O meter prints estimated milliseconds (Equation 1,
// charged per I/O call) next to the call/page counts — with the direct
// backend those modelled milliseconds are finally comparable against what
// the hardware actually did.
//
// Exit codes: 0 success, 1 failure, 3 skipped (the filesystem rejects
// O_DIRECT — tmpfs/overlayfs — and --backend=direct was requested; CI
// treats 3 as a graceful skip).

#include <cstdio>
#include <cstring>
#include <string>

#include "core/complex_object_store.h"
#include "disk/direct_volume.h"
#include "tools/fsck.h"

using namespace starfish;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/starfish_persistent_example";
  const std::string backend_name = argc > 2 ? argv[2] : "mmap";
  VolumeKind backend;
  if (backend_name == "mmap") {
    backend = VolumeKind::kMmap;
  } else if (backend_name == "direct") {
    backend = VolumeKind::kDirect;
  } else {
    std::fprintf(stderr, "usage: %s [dir] [mmap|direct]\n", argv[0]);
    return 1;
  }
  if (backend == VolumeKind::kDirect && !DirectVolume::SupportedAt(dir)) {
    std::printf("this filesystem has no O_DIRECT support (tmpfs/overlayfs?) "
                "— skipping the direct-backend run.\n");
    return 3;
  }

  auto item = SchemaBuilder("Measurement")
                  .AddInt32("SensorId")
                  .AddString("Payload")
                  .Build();
  auto reading = SchemaBuilder("Reading")
                     .AddInt32("ReadingId")  // the object key (attribute 0)
                     .AddString("Station")
                     .AddRelation("Measurements", item)
                     .Build();

  // The backend is a knob: kMem (default) simulates, kMmap persists via the
  // page cache, kDirect persists via real device I/O.
  StoreOptions options;
  options.model = StorageModelKind::kDasdbsNsm;
  options.backend = backend;
  options.path = dir;
  // Charge Equation-1 service time per I/O call, using the mechanical
  // parameters of a period drive.
  options.timed_volume = true;
  options.timing = PhysicalTimingModel{}.ToLinear();

  auto store_or = ComplexObjectStore::Open(reading, options);
  if (!store_or.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 store_or.status().ToString().c_str());
    return 1;
  }
  auto& store = *store_or.value();

  if (store.opened_from_fallback()) {
    std::printf("NOTE: the newest catalog generation was damaged; recovered "
                "the previous committed one.\n");
  }
  if (store.model()->object_count() == 0) {
    std::printf("fresh store at %s (%s backend) — loading 500 readings...\n",
                dir.c_str(), backend_name.c_str());
    for (int i = 0; i < 500; ++i) {
      Tuple obj{{Value::Int32(i), Value::Str("station-" + std::to_string(i % 7)),
                 Value::Relation({
                     Tuple{{Value::Int32(1), Value::Str("t=21.5C")}},
                     Tuple{{Value::Int32(2), Value::Str("rh=40%")}},
                 })}};
      if (auto st = store.Put(i, obj); !st.ok()) {
        std::fprintf(stderr, "put: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    if (auto st = store.Flush(); !st.ok()) {  // durable checkpoint
      std::fprintf(stderr, "flush: %s\n", st.ToString().c_str());
      return 1;
    }
    // The checkpoint is crash-consistent: the volume was synced first, the
    // catalog went to a fresh generation file, and the atomic CURRENT
    // repoint committed it. A power loss at ANY point leaves either this
    // checkpoint or the previous one — never a half-written store.
    std::printf("loaded; committed catalog generation %llu.\n",
                static_cast<unsigned long long>(store.catalog_generation()));
    std::printf("Run me again: the data will still be there.\n\n");
  } else {
    std::printf("reopened store at %s (%s backend) — %llu readings survived "
                "the last process (catalog generation %llu).\n\n",
                dir.c_str(), backend_name.c_str(),
                static_cast<unsigned long long>(store.model()->object_count()),
                static_cast<unsigned long long>(store.catalog_generation()));
  }

  // Start cold so the meter shows real volume traffic in both runs.
  (void)store.engine()->DropCache();
  store.ResetStats();
  auto back = store.GetByKey(42, Projection::All(*reading));
  if (!back.ok()) {
    std::fprintf(stderr, "get: %s\n", back.status().ToString().c_str());
    return 1;
  }
  std::printf("reading 42: %s\n\n", TupleToString(back.value()).c_str());

  const EngineStats stats = store.stats();
  std::printf("I/O meter:  %s\n", stats.io.ToString().c_str());
  std::printf("timed cost: %.2f ms charged by the TimedVolume "
              "(Eq. 1 per call)\n",
              store.timed_millis());
  std::printf("            %.2f ms from the counter snapshot — same "
              "equation, same answer\n\n",
              store.EstimatedIoMillis());

  // Vet the on-disk state with the offline checker (also available as the
  // standalone `sf_fsck <dir>` binary). fsck does not care which backend
  // wrote the directory — mmap and direct share the format it verifies.
  auto report = RunFsck(dir);
  if (!report.ok()) {
    std::fprintf(stderr, "fsck: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report.value().ToString().c_str());
  return report.value().clean() ? 0 : 1;
}
