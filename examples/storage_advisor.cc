// "Which storage structure for which circumstances?" — the question the
// paper answers for its benchmark, answered here for *your* workload: feed
// the analytical cost model (Equations 1-8) a workload description and get
// a ranked recommendation with the Eq.-1 time estimates.
//
//   $ ./build/examples/storage_advisor

#include <algorithm>
#include <cstdio>
#include <vector>

#include "benchmark/calibration.h"
#include "benchmark/generator.h"
#include "cost/analytical_model.h"
#include "disk/disk_timing.h"
#include "models/dasdbs_nsm_model.h"
#include "models/direct_model.h"
#include "models/nsm_model.h"

using namespace starfish;        // NOLINT — example brevity
using namespace starfish::bench; // NOLINT

namespace {

/// A workload mix: how often each query class runs per day.
struct WorkloadMix {
  const char* name;
  double by_ref_lookups;   // query-1a-like
  double by_key_lookups;   // query-1b-like
  double full_scans;       // query-1c-like
  double navigations;      // query-2a-like
  double update_batches;   // query-3a-like
};

/// Daily page budget of a mix; negative when the model cannot run a
/// required query class (plain NSM has no object identifiers).
double DailyPages(const cost::QueryEstimates& e, const WorkloadMix& mix,
                  double n_objects) {
  if (mix.by_ref_lookups > 0 && e.q1a < 0) return -1;
  return mix.by_ref_lookups * e.q1a + mix.by_key_lookups * e.q1b +
         mix.full_scans * e.q1c * n_objects + mix.navigations * e.q2a +
         mix.update_batches * e.q3a;
}

}  // namespace

int main() {
  // Calibrate the model parameters from a sample of the user's objects —
  // here the railway schema stands in for "your data".
  GeneratorConfig config;
  config.n_objects = 1500;
  auto db = BenchmarkDatabase::Generate(config);
  if (!db.ok()) return 1;
  auto workload = DeriveWorkloadParams(*db, /*loops=*/300, 2012);
  if (!workload.ok()) return 1;

  cost::RelationParams direct_rel;
  std::vector<cost::RelationParams> nsm_rels, dnsm_rels;
  cost::NormalizedLayout layout;
  {
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = db->schema();
    auto m = DirectModel::Create(&engine, mc, DirectModelOptions{});
    if (!m.ok() || !db->LoadInto(m->get(), &engine).ok()) return 1;
    direct_rel = CalibrateDirect(m->get(), *db).value();
  }
  {
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = db->schema();
    auto m = NsmModel::Create(&engine, mc, NsmModelOptions{});
    if (!m.ok() || !db->LoadInto(m->get(), &engine).ok()) return 1;
    nsm_rels = CalibrateNsm(m->get(), *db).value();
    layout = DeriveNormalizedLayout(m->get()->decomposition());
  }
  {
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = db->schema();
    auto m = DasdbsNsmModel::Create(&engine, mc);
    if (!m.ok() || !db->LoadInto(m->get(), &engine).ok()) return 1;
    dnsm_rels = CalibrateDasdbsNsm(m->get(), *db).value();
  }

  struct Candidate {
    const char* name;
    cost::QueryEstimates estimates;
  };
  const std::vector<Candidate> candidates = {
      {"DSM", cost::EstimateDsm(direct_rel, *workload)},
      {"DASDBS-DSM", cost::EstimateDasdbsDsm(direct_rel, *workload)},
      {"NSM", cost::EstimateNsm(nsm_rels, layout, *workload, false)},
      {"NSM+index", cost::EstimateNsm(nsm_rels, layout, *workload, true)},
      {"DASDBS-NSM", cost::EstimateDasdbsNsm(dnsm_rels, layout, *workload)},
  };

  const std::vector<WorkloadMix> mixes = {
      {"archival (scan-heavy)", 10, 5, 4, 20, 1},
      {"interactive CAD (navigation-heavy)", 2000, 50, 0, 5000, 200},
      {"editorial (update-heavy)", 200, 100, 0, 500, 2000},
  };

  LinearTimingModel timing;  // d1 = 24 ms/call approximated as pages here
  for (const WorkloadMix& mix : mixes) {
    std::printf("\nworkload: %s\n", mix.name);
    std::vector<std::pair<double, const char*>> ranking;
    for (const Candidate& c : candidates) {
      const double pages = DailyPages(c.estimates, mix, workload->n_objects);
      if (pages < 0) {
        std::printf("  -. %-12s unusable (no object identifiers)\n", c.name);
        continue;
      }
      ranking.emplace_back(pages, c.name);
    }
    std::sort(ranking.begin(), ranking.end());
    for (size_t i = 0; i < ranking.size(); ++i) {
      std::printf("  %zu. %-12s %14.0f pages/day  (~%.1f s disk time)\n",
                  i + 1, ranking[i].second, ranking[i].first,
                  timing.Cost(0, static_cast<uint64_t>(ranking[i].first)) /
                      1000.0);
    }
    std::printf("  -> recommended: %s\n", ranking.front().second);
  }

  std::printf(
      "\n(The paper's overall verdict — DASDBS-NSM best, NSM worst — holds "
      "for navigation/update mixes; scan-only archives are the one place "
      "the direct models stay competitive.)\n");
  return 0;
}
