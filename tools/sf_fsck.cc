// sf_fsck — offline consistency verifier for persistent store directories.
//
//   $ sf_fsck [-v] <store-or-volume-dir>
//
// Cross-checks the volume.meta allocator journal, the committed catalog
// generation (CURRENT + per-file checksum), the segment page lists, the
// page headers in the extent files, and the model state (object tables,
// page-pool heads, B+-tree roots) against each other. See src/tools/fsck.h
// for what counts as an error vs. a recoverable crash artifact.
//
// Exit status: 0 = clean, 1 = inconsistencies found, 2 = usage/IO failure.

#include <cstdio>
#include <cstring>
#include <string>

#include "tools/fsck.h"

int main(int argc, char** argv) {
  starfish::FsckOptions options;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-v") == 0 ||
        std::strcmp(argv[i], "--verbose") == 0) {
      options.verbose = true;
    } else if (dir.empty() && argv[i][0] != '-') {
      dir = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s [-v] <store-or-volume-dir>\n", argv[0]);
      return 2;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "usage: %s [-v] <store-or-volume-dir>\n", argv[0]);
    return 2;
  }

  auto report_or = starfish::RunFsck(dir, options);
  if (!report_or.ok()) {
    std::fprintf(stderr, "sf_fsck: %s\n",
                 report_or.status().ToString().c_str());
    return 2;
  }
  const starfish::FsckReport& report = report_or.value();
  std::fputs(report.ToString().c_str(), stdout);
  return report.clean() ? 0 : 1;
}
