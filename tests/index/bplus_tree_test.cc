#include "index/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "storage/storage_engine.h"
#include "util/random.h"

namespace starfish {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto seg = engine_.CreateSegment("index");
    ASSERT_TRUE(seg.ok());
    tree_ = std::make_unique<BPlusTree>(seg.value());
  }

  StorageEngine engine_;
  std::unique_ptr<BPlusTree> tree_;
};

TEST_F(BPlusTreeTest, EmptyTreeFindsNothing) {
  auto found = tree_->Find(42);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty());
  EXPECT_EQ(tree_->size(), 0u);
  EXPECT_EQ(tree_->height(), 0u);
}

TEST_F(BPlusTreeTest, InsertAndFindSingle) {
  ASSERT_TRUE(tree_->Insert(5, 500).ok());
  auto found = tree_->Find(5);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), (std::vector<uint64_t>{500}));
  EXPECT_EQ(tree_->size(), 1u);
  EXPECT_EQ(tree_->height(), 1u);
}

TEST_F(BPlusTreeTest, DuplicateKeysAllFound) {
  for (uint64_t v = 0; v < 5; ++v) {
    ASSERT_TRUE(tree_->Insert(7, 100 + v).ok());
  }
  auto found = tree_->Find(7);
  ASSERT_TRUE(found.ok());
  std::sort(found->begin(), found->end());
  EXPECT_EQ(found.value(), (std::vector<uint64_t>{100, 101, 102, 103, 104}));
}

TEST_F(BPlusTreeTest, ManyInsertsSplitLeaves) {
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k * 2)).ok());
  }
  EXPECT_GT(tree_->height(), 1u);
  EXPECT_EQ(tree_->size(), 1000u);
  for (int64_t k = 0; k < 1000; ++k) {
    auto found = tree_->Find(k);
    ASSERT_TRUE(found.ok());
    ASSERT_EQ(found->size(), 1u) << "key " << k;
    EXPECT_EQ((*found)[0], static_cast<uint64_t>(k * 2));
  }
}

TEST_F(BPlusTreeTest, ReverseInsertOrder) {
  for (int64_t k = 500; k > 0; --k) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k)).ok());
  }
  for (int64_t k = 1; k <= 500; ++k) {
    auto found = tree_->Find(k);
    ASSERT_TRUE(found.ok());
    ASSERT_EQ(found->size(), 1u) << "key " << k;
  }
}

TEST_F(BPlusTreeTest, NegativeKeys) {
  for (int64_t k = -100; k <= 100; k += 10) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k + 1000)).ok());
  }
  auto found = tree_->Find(-100);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)[0], 900u);
}

TEST_F(BPlusTreeTest, ScanVisitsAllInKeyOrder) {
  Rng rng(8);
  std::vector<uint64_t> keys(400);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  rng.Shuffle(&keys);
  for (uint64_t k : keys) {
    ASSERT_TRUE(tree_->Insert(static_cast<int64_t>(k), k * 3).ok());
  }
  int64_t prev = -1;
  uint64_t count = 0;
  ASSERT_TRUE(tree_->Scan([&](int64_t key, uint64_t value) {
    EXPECT_GT(key, prev);
    EXPECT_EQ(value, static_cast<uint64_t>(key) * 3);
    prev = key;
    ++count;
    return Status::OK();
  }).ok());
  EXPECT_EQ(count, keys.size());
}

TEST_F(BPlusTreeTest, DeleteRemovesSpecificPair) {
  ASSERT_TRUE(tree_->Insert(1, 10).ok());
  ASSERT_TRUE(tree_->Insert(1, 11).ok());
  ASSERT_TRUE(tree_->Delete(1, 10).ok());
  auto found = tree_->Find(1);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), (std::vector<uint64_t>{11}));
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BPlusTreeTest, DeleteMissingPairFails) {
  ASSERT_TRUE(tree_->Insert(1, 10).ok());
  EXPECT_TRUE(tree_->Delete(1, 99).IsNotFound());
  EXPECT_TRUE(tree_->Delete(2, 10).IsNotFound());
  BPlusTree empty_tree(engine_.GetSegment("index"));
  EXPECT_TRUE(empty_tree.Delete(1, 1).IsNotFound());
}

TEST_F(BPlusTreeTest, DuplicatesSpillingAcrossLeavesAreAllFound) {
  // More duplicates of one key than fit one leaf (capacity ~125).
  for (uint64_t v = 0; v < 300; ++v) {
    ASSERT_TRUE(tree_->Insert(50, v).ok());
  }
  // Neighbours on both sides.
  ASSERT_TRUE(tree_->Insert(49, 1).ok());
  ASSERT_TRUE(tree_->Insert(51, 1).ok());
  auto found = tree_->Find(50);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->size(), 300u);
}

TEST_F(BPlusTreeTest, ProbeCostsMeteredIo) {
  for (int64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree_->Insert(k, static_cast<uint64_t>(k)).ok());
  }
  ASSERT_TRUE(engine_.Flush().ok());
  ASSERT_TRUE(engine_.DropCache().ok());
  engine_.ResetStats();
  ASSERT_TRUE(tree_->Find(1234).ok());
  // A cold probe reads height pages — the I/O the paper's in-memory index
  // assumption hides.
  EXPECT_EQ(engine_.stats().io.pages_read, tree_->height());
}

TEST_F(BPlusTreeTest, RandomizedAgainstReferenceMultimap) {
  Rng rng(333);
  std::multimap<int64_t, uint64_t> reference;
  for (int op = 0; op < 5000; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(200));
    if (rng.Uniform(100) < 70 || reference.empty()) {
      const uint64_t value = rng.Next() % 100000;
      ASSERT_TRUE(tree_->Insert(key, value).ok());
      reference.emplace(key, value);
    } else {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      ASSERT_TRUE(tree_->Delete(it->first, it->second).ok());
      reference.erase(it);
    }
  }
  EXPECT_EQ(tree_->size(), reference.size());
  for (int64_t key = 0; key < 200; ++key) {
    auto found = tree_->Find(key);
    ASSERT_TRUE(found.ok());
    std::vector<uint64_t> expected;
    auto [lo, hi] = reference.equal_range(key);
    for (auto it = lo; it != hi; ++it) expected.push_back(it->second);
    std::sort(found->begin(), found->end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(found.value(), expected) << "key " << key;
  }
}

}  // namespace
}  // namespace starfish
