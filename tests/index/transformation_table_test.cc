#include "index/transformation_table.h"

#include <gtest/gtest.h>

namespace starfish {
namespace {

TEST(TransformationTableTest, PutGetRoundTrip) {
  TransformationTable table;
  table.Put(1, {Tid{10, 0}, Tid{20, 1}});
  auto got = table.Get(1);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0], (Tid{10, 0}));
  EXPECT_EQ((*got)[1], (Tid{20, 1}));
}

TEST(TransformationTableTest, GetMissingKeyFails) {
  TransformationTable table;
  EXPECT_TRUE(table.Get(7).status().IsNotFound());
}

TEST(TransformationTableTest, AppendGrowsList) {
  TransformationTable table;
  table.Append(3, Tid{1, 1});
  table.Append(3, Tid{2, 2});
  auto got = table.Get(3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 2u);
}

TEST(TransformationTableTest, PutReplacesList) {
  TransformationTable table;
  table.Put(5, {Tid{1, 1}});
  table.Put(5, {Tid{9, 9}});
  auto got = table.Get(5);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 1u);
  EXPECT_EQ((*got)[0], (Tid{9, 9}));
}

TEST(TransformationTableTest, ReplaceSwapsOneAddress) {
  TransformationTable table;
  table.Put(5, {Tid{1, 1}, Tid{2, 2}});
  ASSERT_TRUE(table.Replace(5, Tid{2, 2}, Tid{3, 3}).ok());
  auto got = table.Get(5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[1], (Tid{3, 3}));
  EXPECT_TRUE(table.Replace(5, Tid{8, 8}, Tid{9, 9}).IsNotFound());
  EXPECT_TRUE(table.Replace(6, Tid{1, 1}, Tid{9, 9}).IsNotFound());
}

TEST(TransformationTableTest, EraseAndContains) {
  TransformationTable table;
  table.Put(5, {Tid{1, 1}});
  EXPECT_TRUE(table.Contains(5));
  ASSERT_TRUE(table.Erase(5).ok());
  EXPECT_FALSE(table.Contains(5));
  EXPECT_TRUE(table.Erase(5).IsNotFound());
}

TEST(TransformationTableTest, SizeAndMemoryEstimate) {
  TransformationTable table;
  EXPECT_EQ(table.size(), 0u);
  table.Put(1, {Tid{1, 1}, Tid{2, 2}, Tid{3, 3}, Tid{4, 4}});
  table.Put(2, {Tid{5, 5}});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_GT(table.EstimatedBytes(), 5 * sizeof(Tid));
}

TEST(TidTest, PackUnpackRoundTrip) {
  const Tid tid{123456, 42};
  EXPECT_EQ(Tid::Unpack(tid.Pack()), tid);
  EXPECT_EQ(Tid::Unpack(kInvalidTid.Pack()), kInvalidTid);
}

TEST(TidTest, ValidityAndKinds) {
  EXPECT_FALSE(kInvalidTid.valid());
  EXPECT_TRUE((Tid{1, 2}).valid());
  EXPECT_TRUE((Tid{1, kComplexRecordSlot}).is_complex());
  EXPECT_FALSE((Tid{1, 2}).is_complex());
}

TEST(TidTest, Ordering) {
  EXPECT_LT((Tid{1, 5}), (Tid{2, 0}));
  EXPECT_LT((Tid{1, 0}), (Tid{1, 1}));
}

}  // namespace
}  // namespace starfish
