#include "buffer/buffer_manager.h"

#include "disk/mem_volume.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <vector>

namespace starfish {
namespace {

class BufferManagerTest : public ::testing::Test {
 protected:
  MemVolume disk_;
};

BufferOptions SmallPool(uint32_t frames, uint32_t batch = 1) {
  BufferOptions o;
  o.frame_count = frames;
  o.write_batch_size = batch;
  return o;
}

TEST_F(BufferManagerTest, FixMissReadsOnePage) {
  const PageId id = disk_.Allocate().value();
  BufferManager bm(&disk_, SmallPool(4));
  auto guard = bm.Fix(id);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(bm.stats().fixes, 1u);
  EXPECT_EQ(bm.stats().misses, 1u);
  EXPECT_EQ(disk_.stats().pages_read, 1u);
  EXPECT_EQ(disk_.stats().read_calls, 1u);
}

TEST_F(BufferManagerTest, SecondFixIsAHit) {
  const PageId id = disk_.Allocate().value();
  BufferManager bm(&disk_, SmallPool(4));
  { auto g = bm.Fix(id); ASSERT_TRUE(g.ok()); }
  { auto g = bm.Fix(id); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(bm.stats().hits, 1u);
  EXPECT_EQ(disk_.stats().pages_read, 1u);
}

TEST_F(BufferManagerTest, DirtyPageWrittenOnFlush) {
  const PageId id = disk_.Allocate().value();
  BufferManager bm(&disk_, SmallPool(4));
  {
    auto g = bm.Fix(id);
    ASSERT_TRUE(g.ok());
    g->data()[100] = 'Z';
    g->MarkDirty();
  }
  EXPECT_EQ(disk_.stats().pages_written, 0u);  // write-back, not through
  ASSERT_TRUE(bm.FlushAll().ok());
  EXPECT_EQ(disk_.stats().pages_written, 1u);
  std::vector<char> buf(disk_.page_size());
  ASSERT_TRUE(disk_.ReadRun(id, 1, buf.data()).ok());
  EXPECT_EQ(buf[100], 'Z');
}

TEST_F(BufferManagerTest, CleanEvictionDoesNotWrite) {
  ASSERT_TRUE(disk_.AllocateRun(5).ok());
  BufferManager bm(&disk_, SmallPool(2));
  for (PageId id = 0; id < 5; ++id) {
    auto g = bm.Fix(id);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(disk_.stats().pages_written, 0u);
  EXPECT_EQ(bm.stats().evictions, 3u);
}

TEST_F(BufferManagerTest, DirtyEvictionWritesBack) {
  ASSERT_TRUE(disk_.AllocateRun(4).ok());
  BufferManager bm(&disk_, SmallPool(2));
  {
    auto g = bm.Fix(0);
    ASSERT_TRUE(g.ok());
    g->data()[0] = 'q';
    g->MarkDirty();
  }
  { auto g = bm.Fix(1); ASSERT_TRUE(g.ok()); }
  { auto g = bm.Fix(2); ASSERT_TRUE(g.ok()); }  // evicts page 0 (LRU)
  EXPECT_GE(disk_.stats().pages_written, 1u);
  std::vector<char> buf(disk_.page_size());
  ASSERT_TRUE(disk_.ReadRun(0, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'q');
}

TEST_F(BufferManagerTest, LruEvictsColdestUnpinned) {
  ASSERT_TRUE(disk_.AllocateRun(4).ok());
  BufferManager bm(&disk_, SmallPool(2));
  { auto g = bm.Fix(0); ASSERT_TRUE(g.ok()); }
  { auto g = bm.Fix(1); ASSERT_TRUE(g.ok()); }
  { auto g = bm.Fix(0); ASSERT_TRUE(g.ok()); }  // 0 is now hottest
  { auto g = bm.Fix(2); ASSERT_TRUE(g.ok()); }  // must evict 1
  EXPECT_TRUE(bm.IsCached(0));
  EXPECT_FALSE(bm.IsCached(1));
  EXPECT_TRUE(bm.IsCached(2));
}

TEST_F(BufferManagerTest, PinnedPagesAreNotEvicted) {
  ASSERT_TRUE(disk_.AllocateRun(4).ok());
  BufferManager bm(&disk_, SmallPool(2));
  auto pinned = bm.Fix(0);
  ASSERT_TRUE(pinned.ok());
  { auto g = bm.Fix(1); ASSERT_TRUE(g.ok()); }
  { auto g = bm.Fix(2); ASSERT_TRUE(g.ok()); }  // evicts 1, not pinned 0
  EXPECT_TRUE(bm.IsCached(0));
  EXPECT_FALSE(bm.IsCached(1));
}

TEST_F(BufferManagerTest, AllPinnedGivesResourceExhausted) {
  ASSERT_TRUE(disk_.AllocateRun(3).ok());
  BufferManager bm(&disk_, SmallPool(2));
  auto g0 = bm.Fix(0);
  auto g1 = bm.Fix(1);
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  auto g2 = bm.Fix(2);
  EXPECT_TRUE(g2.status().IsResourceExhausted());
}

TEST_F(BufferManagerTest, UnfixErrors) {
  ASSERT_TRUE(disk_.Allocate().ok());
  BufferManager bm(&disk_, SmallPool(2));
  EXPECT_TRUE(bm.Unfix(0, false).IsInvalidArgument());  // not resident
  { auto g = bm.Fix(0); ASSERT_TRUE(g.ok()); }
  EXPECT_TRUE(bm.Unfix(0, false).IsInvalidArgument());  // already unpinned
}

TEST_F(BufferManagerTest, PrefetchChainedIsOneCall) {
  ASSERT_TRUE(disk_.AllocateRun(8).ok());
  BufferManager bm(&disk_, SmallPool(8));
  ASSERT_TRUE(bm.Prefetch({1, 3, 5}, PrefetchMode::kChained).ok());
  EXPECT_EQ(disk_.stats().read_calls, 1u);
  EXPECT_EQ(disk_.stats().pages_read, 3u);
  EXPECT_TRUE(bm.IsCached(1));
  EXPECT_TRUE(bm.IsCached(3));
  EXPECT_TRUE(bm.IsCached(5));
  // Follow-up fixes are hits.
  { auto g = bm.Fix(3); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(bm.stats().hits, 1u);
}

TEST_F(BufferManagerTest, PrefetchRunsGroupsContiguousPages) {
  ASSERT_TRUE(disk_.AllocateRun(10).ok());
  BufferManager bm(&disk_, SmallPool(10));
  // {2,3,4} and {7,8} -> two calls, five pages.
  ASSERT_TRUE(
      bm.Prefetch({2, 3, 4, 7, 8}, PrefetchMode::kContiguousRuns).ok());
  EXPECT_EQ(disk_.stats().read_calls, 2u);
  EXPECT_EQ(disk_.stats().pages_read, 5u);
}

TEST_F(BufferManagerTest, PrefetchSkipsCachedAndDuplicates) {
  ASSERT_TRUE(disk_.AllocateRun(4).ok());
  BufferManager bm(&disk_, SmallPool(4));
  { auto g = bm.Fix(1); ASSERT_TRUE(g.ok()); }
  disk_.ResetStats();
  ASSERT_TRUE(bm.Prefetch({1, 2, 2, 1}, PrefetchMode::kChained).ok());
  EXPECT_EQ(disk_.stats().pages_read, 1u);  // only page 2
}

TEST_F(BufferManagerTest, BatchedWriteBackCleansColdDirtyPages) {
  ASSERT_TRUE(disk_.AllocateRun(6).ok());
  BufferManager bm(&disk_, SmallPool(4, /*batch=*/4));
  for (PageId id = 0; id < 4; ++id) {
    auto g = bm.Fix(id);
    ASSERT_TRUE(g.ok());
    g->MarkDirty();
  }
  // Next fix evicts one page; the write-back batch cleans several dirty
  // pages with ONE chained call.
  { auto g = bm.Fix(4); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(disk_.stats().write_calls, 1u);
  EXPECT_GE(disk_.stats().pages_written, 2u);
}

TEST_F(BufferManagerTest, FlushAllBatchesWrites) {
  ASSERT_TRUE(disk_.AllocateRun(10).ok());
  BufferManager bm(&disk_, SmallPool(10, /*batch=*/4));
  for (PageId id = 0; id < 10; ++id) {
    auto g = bm.Fix(id);
    ASSERT_TRUE(g.ok());
    g->MarkDirty();
  }
  ASSERT_TRUE(bm.FlushAll().ok());
  EXPECT_EQ(disk_.stats().pages_written, 10u);
  EXPECT_EQ(disk_.stats().write_calls, 3u);  // ceil(10 / 4)
}

TEST_F(BufferManagerTest, FlushAllIsIdempotent) {
  ASSERT_TRUE(disk_.Allocate().ok());
  BufferManager bm(&disk_, SmallPool(2));
  {
    auto g = bm.Fix(0);
    ASSERT_TRUE(g.ok());
    g->MarkDirty();
  }
  ASSERT_TRUE(bm.FlushAll().ok());
  const uint64_t written = disk_.stats().pages_written;
  ASSERT_TRUE(bm.FlushAll().ok());
  EXPECT_EQ(disk_.stats().pages_written, written);
}

TEST_F(BufferManagerTest, DropAllEmptiesPoolAndRefusesPinned) {
  ASSERT_TRUE(disk_.AllocateRun(3).ok());
  BufferManager bm(&disk_, SmallPool(3));
  auto g = bm.Fix(0);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(bm.DropAll().ok());
  g->Release();
  ASSERT_TRUE(bm.DropAll().ok());
  EXPECT_EQ(bm.resident_count(), 0u);
  EXPECT_FALSE(bm.IsCached(0));
}

TEST_F(BufferManagerTest, PageGuardMoveTransfersOwnership) {
  ASSERT_TRUE(disk_.Allocate().ok());
  BufferManager bm(&disk_, SmallPool(2));
  auto g = bm.Fix(0);
  ASSERT_TRUE(g.ok());
  PageGuard moved = std::move(g.value());
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(g->valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
  // Releasing twice is harmless.
  moved.Release();
}

TEST_F(BufferManagerTest, PageGuardMoveAssignReleasesHeldPin) {
  ASSERT_TRUE(disk_.AllocateRun(2).ok());
  BufferManager bm(&disk_, SmallPool(4));
  auto g0 = bm.Fix(0);
  auto g1 = bm.Fix(1);
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  // Assigning over a held guard must release page 0's pin...
  g0.value() = std::move(g1.value());
  EXPECT_TRUE(bm.Unfix(0, false).IsInvalidArgument());  // already unpinned
  // ...and the target now owns page 1's pin.
  EXPECT_EQ(g0->page_id(), 1u);
  EXPECT_TRUE(g0->valid());
  EXPECT_FALSE(g1->valid());
  g0->Release();
  ASSERT_TRUE(bm.DropAll().ok());  // nothing pinned anymore
}

TEST_F(BufferManagerTest, PageGuardSelfMoveIsSafe) {
  ASSERT_TRUE(disk_.Allocate().ok());
  BufferManager bm(&disk_, SmallPool(2));
  auto g = bm.Fix(0);
  ASSERT_TRUE(g.ok());
  PageGuard& guard = g.value();
  guard = std::move(guard);  // must not release or corrupt the pin
  EXPECT_TRUE(guard.valid());
  EXPECT_EQ(guard.page_id(), 0u);
  guard.Release();
  ASSERT_TRUE(bm.DropAll().ok());
}

TEST_F(BufferManagerTest, PageGuardMoveCarriesDirtyFlag) {
  ASSERT_TRUE(disk_.Allocate().ok());
  BufferManager bm(&disk_, SmallPool(2));
  {
    auto g = bm.Fix(0);
    ASSERT_TRUE(g.ok());
    g->data()[5] = 'D';
    g->MarkDirty();
    PageGuard moved = std::move(g.value());
    // The moved-from guard must not mark anything dirty when destroyed, and
    // the moved-to guard must deliver the dirty bit on release.
  }
  ASSERT_TRUE(bm.FlushAll().ok());
  EXPECT_EQ(disk_.stats().pages_written, 1u);
  std::vector<char> buf(disk_.page_size());
  ASSERT_TRUE(disk_.ReadRun(0, 1, buf.data()).ok());
  EXPECT_EQ(buf[5], 'D');
}

TEST_F(BufferManagerTest, PageGuardMovedFromGuardDropsDirtyState) {
  ASSERT_TRUE(disk_.AllocateRun(2).ok());
  BufferManager bm(&disk_, SmallPool(4));
  auto g = bm.Fix(0);
  ASSERT_TRUE(g.ok());
  g->MarkDirty();
  PageGuard sink = std::move(g.value());
  sink.Release();
  // Re-using the moved-from guard as an assignment target must not leak the
  // old dirty flag into the new pin.
  auto clean = bm.Fix(1);
  ASSERT_TRUE(clean.ok());
  g.value() = std::move(clean.value());
  g->Release();
  disk_.ResetStats();
  ASSERT_TRUE(bm.FlushAll().ok());  // page 1 was never dirtied via g
  EXPECT_EQ(disk_.stats().pages_written, 1u);  // only page 0
}

TEST_F(BufferManagerTest, FixFreshInstallsZeroedFrameWithoutRead) {
  const PageId id = disk_.Allocate().value();
  BufferManager bm(&disk_, SmallPool(4));
  {
    auto g = bm.FixFresh(id);
    ASSERT_TRUE(g.ok());
    // Counted like a normal miss, but no metered disk traffic.
    EXPECT_EQ(bm.stats().fixes, 1u);
    EXPECT_EQ(bm.stats().misses, 1u);
    EXPECT_EQ(disk_.stats().TotalCalls(), 0u);
    for (uint32_t i = 0; i < disk_.page_size(); ++i) {
      ASSERT_EQ(g->data()[i], '\0') << "byte " << i;
    }
    g->data()[3] = 'F';
    g->MarkDirty();
  }
  // The dirtied frame reaches disk like any other page.
  ASSERT_TRUE(bm.FlushAll().ok());
  std::vector<char> buf(disk_.page_size());
  ASSERT_TRUE(disk_.ReadRun(id, 1, buf.data()).ok());
  EXPECT_EQ(buf[3], 'F');
}

TEST_F(BufferManagerTest, FixFreshOnResidentPageIsAHit) {
  const PageId id = disk_.Allocate().value();
  BufferManager bm(&disk_, SmallPool(4));
  {
    auto g = bm.Fix(id);  // ordinary metered load
    ASSERT_TRUE(g.ok());
    g->data()[0] = 'R';
    g->MarkDirty();
  }
  auto g = bm.FixFresh(id);  // resident: must NOT zero the frame
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(bm.stats().hits, 1u);
  EXPECT_EQ(g->data()[0], 'R');
}

TEST_F(BufferManagerTest, FixFreshRejectsUnallocatedPage) {
  ASSERT_TRUE(disk_.Allocate().ok());
  BufferManager bm(&disk_, SmallPool(4));
  EXPECT_TRUE(bm.FixFresh(5).status().IsOutOfRange());
  EXPECT_TRUE(bm.FixFresh(kInvalidPageId).status().IsOutOfRange());
}

TEST_F(BufferManagerTest, PrefetchRunsDeduplicatesIds) {
  ASSERT_TRUE(disk_.AllocateRun(8).ok());
  BufferManager bm(&disk_, SmallPool(8));
  // {3,4,5} with duplicates -> one run, one call, three pages.
  ASSERT_TRUE(
      bm.Prefetch({5, 3, 3, 4, 5, 4}, PrefetchMode::kContiguousRuns).ok());
  EXPECT_EQ(disk_.stats().read_calls, 1u);
  EXPECT_EQ(disk_.stats().pages_read, 3u);
  EXPECT_EQ(bm.stats().prefetched_pages, 3u);
}

TEST_F(BufferManagerTest, PrefetchedDataMatchesDisk) {
  const PageId first = disk_.AllocateRun(6).value();
  std::vector<char> data(disk_.page_size());
  for (PageId id = first; id < first + 6; ++id) {
    std::fill(data.begin(), data.end(), static_cast<char>('0' + id));
    ASSERT_TRUE(disk_.WriteRun(id, 1, data.data()).ok());
  }
  BufferManager bm(&disk_, SmallPool(8));
  ASSERT_TRUE(bm.Prefetch({0, 2, 4}, PrefetchMode::kChained).ok());
  ASSERT_TRUE(bm.Prefetch({1, 3}, PrefetchMode::kContiguousRuns).ok());
  for (PageId id = 0; id < 5; ++id) {
    auto g = bm.Fix(id);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[0], static_cast<char>('0' + id)) << "page " << id;
  }
}

// ---- eviction-order equivalence against a reference model ----------------
//
// The intrusive prev/next list must evict in exactly the order the old
// std::list-based implementation did. The reference below *is* that old
// behaviour: LRU moves a page to the hot end on every fix, FIFO leaves the
// load position untouched; eviction takes the coldest unpinned page.

class ReferenceLruFifo {
 public:
  ReferenceLruFifo(uint32_t capacity, bool lru)
      : capacity_(capacity), lru_(lru) {}

  // Returns the page evicted by this access, or kInvalidPageId.
  PageId Access(PageId id) {
    auto it = std::find(order_.begin(), order_.end(), id);
    if (it != order_.end()) {
      if (lru_) {
        order_.erase(it);
        order_.push_back(id);
      }
      return kInvalidPageId;
    }
    PageId victim = kInvalidPageId;
    if (order_.size() == capacity_) {
      victim = order_.front();
      order_.pop_front();
    }
    order_.push_back(id);
    return victim;
  }

  const std::list<PageId>& order() const { return order_; }

 private:
  uint32_t capacity_;
  bool lru_;
  std::list<PageId> order_;
};

class EvictionEquivalenceTest
    : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(EvictionEquivalenceTest, MatchesListBasedReferenceModel) {
  const bool lru = GetParam() == ReplacementPolicy::kLru;
  constexpr uint32_t kFrames = 7;
  constexpr uint32_t kPages = 23;
  MemVolume disk;
  ASSERT_TRUE(disk.AllocateRun(kPages).ok());
  BufferOptions o;
  o.frame_count = kFrames;
  o.policy = GetParam();
  BufferManager bm(&disk, o);
  ReferenceLruFifo ref(kFrames, lru);

  // Deterministic pseudo-random access pattern (LCG).
  uint64_t state = 0x2545F4914F6CDD1Dull;
  for (int step = 0; step < 4000; ++step) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const PageId id = static_cast<PageId>((state >> 33) % kPages);
    ref.Access(id);
    auto g = bm.Fix(id);
    ASSERT_TRUE(g.ok()) << "step " << step;
  }
  // Same residency set, same eviction order => same survivors.
  ASSERT_EQ(bm.resident_count(), ref.order().size());
  for (PageId id : ref.order()) {
    EXPECT_TRUE(bm.IsCached(id)) << "page " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(LruAndFifo, EvictionEquivalenceTest,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kFifo),
                         [](const auto& info) {
                           return info.param == ReplacementPolicy::kLru
                                      ? "Lru"
                                      : "Fifo";
                         });

class PolicyTest : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(PolicyTest, EvictionKeepsWorkingUnderPressure) {
  MemVolume disk;
  ASSERT_TRUE(disk.AllocateRun(64).ok());
  BufferOptions o;
  o.frame_count = 8;
  o.policy = GetParam();
  BufferManager bm(&disk, o);
  // Touch all pages twice; every fix must succeed and data must be intact.
  for (int round = 0; round < 2; ++round) {
    for (PageId id = 0; id < 64; ++id) {
      auto g = bm.Fix(id);
      ASSERT_TRUE(g.ok()) << "page " << id;
    }
  }
  EXPECT_EQ(bm.stats().fixes, 128u);
  EXPECT_LE(bm.resident_count(), 8u);
}

TEST_P(PolicyTest, DirtyDataSurvivesEvictionStorm) {
  MemVolume disk;
  ASSERT_TRUE(disk.AllocateRun(32).ok());
  BufferOptions o;
  o.frame_count = 4;
  o.policy = GetParam();
  o.write_batch_size = 3;
  BufferManager bm(&disk, o);
  for (PageId id = 0; id < 32; ++id) {
    auto g = bm.Fix(id);
    ASSERT_TRUE(g.ok());
    g->data()[7] = static_cast<char>('a' + id % 26);
    g->MarkDirty();
  }
  ASSERT_TRUE(bm.FlushAll().ok());
  for (PageId id = 0; id < 32; ++id) {
    std::vector<char> buf(disk.page_size());
    ASSERT_TRUE(disk.ReadRun(id, 1, buf.data()).ok());
    EXPECT_EQ(buf[7], static_cast<char>('a' + id % 26)) << "page " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kClock,
                                           ReplacementPolicy::kFifo),
                         [](const auto& info) {
                           switch (info.param) {
                             case ReplacementPolicy::kLru: return "Lru";
                             case ReplacementPolicy::kClock: return "Clock";
                             case ReplacementPolicy::kFifo: return "Fifo";
                           }
                           return "Unknown";
                         });

// --- backends without a memory image (supports_zero_copy == false) --------

/// Decorator that denies the zero-copy calls, exactly like DirectVolume
/// does, while delegating everything else to a MemVolume — lets the suite
/// exercise the buffer pool's staging prefetch path without needing a
/// filesystem with O_DIRECT.
class NoZeroCopyVolume final : public Volume {
 public:
  explicit NoZeroCopyVolume(DiskOptions options = {}) : inner_(options) {}

  VolumeKind kind() const override { return inner_.kind(); }
  bool supports_zero_copy() const override { return false; }
  uint32_t io_buffer_alignment() const override { return 4096; }
  uint32_t page_size() const override { return inner_.page_size(); }
  uint32_t pages_per_extent() const override {
    return inner_.pages_per_extent();
  }
  uint64_t page_count() const override { return inner_.page_count(); }
  uint64_t live_page_count() const override {
    return inner_.live_page_count();
  }
  Result<PageId> AllocateRun(uint32_t n) override {
    return inner_.AllocateRun(n);
  }
  Status Free(PageId id) override { return inner_.Free(id); }
  Status ReadRun(PageId first, uint32_t count, char* out) override {
    return inner_.ReadRun(first, count, out);
  }
  Status WriteRun(PageId first, uint32_t count, const char* src) override {
    return inner_.WriteRun(first, count, src);
  }
  Status ReadChained(const std::vector<PageId>& ids,
                     const std::vector<char*>& outs) override {
    return inner_.ReadChained(ids, outs);
  }
  Status WriteChained(const std::vector<PageId>& ids,
                      const std::vector<const char*>& srcs) override {
    return inner_.WriteChained(ids, srcs);
  }
  Status ReadRunZeroCopy(PageId, uint32_t,
                         std::vector<const char*>*) override {
    return Status::NotSupported("no memory image");
  }
  Status ReadChainedZeroCopy(const std::vector<PageId>&,
                             std::vector<const char*>*) override {
    return Status::NotSupported("no memory image");
  }
  const char* PeekPage(PageId) const override { return nullptr; }
  /// The inner volume still has the image; tests verify through it.
  const char* PeekInner(PageId id) const { return inner_.PeekPage(id); }
  IoStats stats() const override { return inner_.stats(); }
  void ResetStats() override { inner_.ResetStats(); }

 private:
  MemVolume inner_;
};

TEST(NoZeroCopyBufferTest, PrefetchChainedStagesWithSameAccounting) {
  NoZeroCopyVolume disk;
  ASSERT_TRUE(disk.AllocateRun(10).ok());
  std::vector<char> page(disk.page_size(), 'q');
  ASSERT_TRUE(disk.WriteRun(7, 1, page.data()).ok());
  disk.ResetStats();

  BufferManager bm(&disk, SmallPool(8));
  ASSERT_TRUE(bm.Prefetch({2, 7, 9}, PrefetchMode::kChained).ok());
  // Same metering as the zero-copy path: one chained call, three pages.
  EXPECT_EQ(disk.stats().read_calls, 1u);
  EXPECT_EQ(disk.stats().pages_read, 3u);
  EXPECT_EQ(bm.stats().prefetched_pages, 3u);
  auto guard = bm.Fix(7);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->data()[0], 'q');          // staged bytes reached the frame
  EXPECT_EQ(disk.stats().read_calls, 1u);    // ... so the fix was a hit
}

TEST(NoZeroCopyBufferTest, PrefetchRunsStagesWithSameAccounting) {
  NoZeroCopyVolume disk;
  ASSERT_TRUE(disk.AllocateRun(12).ok());
  std::vector<char> page(disk.page_size());
  for (PageId id = 4; id <= 6; ++id) {
    std::fill(page.begin(), page.end(), static_cast<char>('a' + id));
    ASSERT_TRUE(disk.WriteRun(id, 1, page.data()).ok());
  }
  disk.ResetStats();

  BufferManager bm(&disk, SmallPool(8));
  ASSERT_TRUE(bm.Prefetch({6, 4, 5, 10}, PrefetchMode::kContiguousRuns).ok());
  // Two runs: [4..6] and [10].
  EXPECT_EQ(disk.stats().read_calls, 2u);
  EXPECT_EQ(disk.stats().pages_read, 4u);
  for (PageId id = 4; id <= 6; ++id) {
    auto guard = bm.Fix(id);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<char>('a' + id)) << "page " << id;
  }
}

TEST(NoZeroCopyBufferTest, FixMissReadsStraightIntoFrame) {
  NoZeroCopyVolume disk;
  const PageId id = disk.Allocate().value();
  std::vector<char> page(disk.page_size(), 'Z');
  ASSERT_TRUE(disk.WriteRun(id, 1, page.data()).ok());
  BufferManager bm(&disk, SmallPool(4));
  auto guard = bm.Fix(id);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->data()[0], 'Z');
  EXPECT_EQ(disk.stats().read_calls, 1u);
}

TEST(NoZeroCopyBufferTest, DirtyWriteBackReachesVolume) {
  NoZeroCopyVolume disk;
  const PageId id = disk.Allocate().value();
  BufferManager bm(&disk, SmallPool(4));
  {
    auto guard = bm.Fix(id);
    ASSERT_TRUE(guard.ok());
    guard->data()[5] = 'W';
    guard->MarkDirty();
  }
  ASSERT_TRUE(bm.FlushAll().ok());
  ASSERT_NE(disk.PeekInner(id), nullptr);
  EXPECT_EQ(disk.PeekInner(id)[5], 'W');
}

// --- frame-arena alignment (BufferOptions::frame_alignment) ---------------

TEST(FrameAlignmentTest, AlignedArenaAlignsEveryFrame) {
  // 4096-byte pages at 4096 alignment: every frame is a DMA-ready target.
  DiskOptions geometry;
  geometry.page_size = 4096;
  MemVolume disk(geometry);
  ASSERT_TRUE(disk.AllocateRun(6).ok());
  BufferOptions options;
  options.frame_count = 4;
  options.frame_alignment = 4096;
  BufferManager bm(&disk, options);
  for (PageId id = 0; id < 6; ++id) {
    auto guard = bm.Fix(id);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(guard->data()) % 4096, 0u)
        << "frame of page " << id;
  }
}

TEST(FrameAlignmentTest, ZeroAlignmentKeepsWorking) {
  MemVolume disk;
  ASSERT_TRUE(disk.AllocateRun(2).ok());
  BufferOptions options;
  options.frame_count = 2;
  options.frame_alignment = 0;  // the default, natural alignment
  BufferManager bm(&disk, options);
  auto guard = bm.Fix(1);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(bm.stats().fixes, 1u);
}

TEST(FrameAlignmentTest, NonPowerOfTwoRoundsUp) {
  DiskOptions geometry;
  geometry.page_size = 4096;
  MemVolume disk(geometry);
  ASSERT_TRUE(disk.Allocate().ok());
  BufferOptions options;
  options.frame_count = 2;
  options.frame_alignment = 3000;  // rounds to 4096
  BufferManager bm(&disk, options);
  auto guard = bm.Fix(0);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(guard->data()) % 4096, 0u);
}

}  // namespace
}  // namespace starfish
