// Concurrency-contract stress tests for the sharded buffer pool.
//
// These are the tests the CI ThreadSanitizer job runs (ci/check.sh builds
// with -DSTARFISH_TSAN=ON and executes the BufferMt* suites): N reader
// threads hammer Fix/Prefetch/FlushAll over one shared working set, with
// dirtying confined to per-thread page ranges (the single-writer contract
// scoped down to page granularity), over both volume backends. Without
// TSan they still verify pin integrity, data integrity and exact counter
// conservation under real interleavings.

#include "buffer/buffer_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/complex_object_store.h"
#include "disk/volume.h"
#include "util/random.h"

namespace starfish {
namespace {

constexpr uint32_t kThreads = 4;

class BufferMtTest : public ::testing::TestWithParam<VolumeKind> {
 protected:
  void SetUp() override {
    if (GetParam() == VolumeKind::kMmap) {
      dir_ = (std::filesystem::temp_directory_path() /
              ("starfish_buffer_mt_" +
               std::string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name())))
                 .string();
      // gtest parameterization puts '/' in the test name; flatten it.
      for (char& c : dir_) {
        if (c == '/') c = '_';
      }
      std::filesystem::remove_all(dir_);
    }
    auto volume_or = CreateVolume(GetParam(), DiskOptions{}, dir_);
    ASSERT_TRUE(volume_or.ok()) << volume_or.status().ToString();
    disk_ = std::move(volume_or).value();
  }

  void TearDown() override {
    disk_.reset();
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  std::unique_ptr<Volume> disk_;
  std::string dir_;
};

// Hit-path hammering: working set fits, every thread fixes every page many
// times; pins, the LRU list and the counters must stay exact.
TEST_P(BufferMtTest, ConcurrentFixHitKeepsCountersExact) {
  constexpr uint32_t kPages = 64;
  constexpr uint64_t kOpsPerThread = 4000;
  const PageId first = disk_->AllocateRun(kPages).value();
  BufferOptions options;
  options.frame_count = 2 * kPages;
  options.shard_count = 8;
  BufferManager bm(disk_.get(), options);
  // Stamp every page through the pool, then start counting fresh.
  for (uint32_t i = 0; i < kPages; ++i) {
    auto g = bm.Fix(first + i);
    ASSERT_TRUE(g.ok());
    g->data()[0] = static_cast<char>('A' + i % 26);
    g->MarkDirty();
  }
  bm.ResetStats();

  std::vector<std::thread> pool;
  for (uint32_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(0xC0FFEE + t);
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        const uint32_t n = static_cast<uint32_t>(rng.Uniform(kPages));
        auto g = bm.Fix(first + n);
        ASSERT_TRUE(g.ok());
        ASSERT_EQ(g->data()[0], static_cast<char>('A' + n % 26));
      }
    });
  }
  for (auto& th : pool) th.join();

  const BufferStats stats = bm.stats();
  EXPECT_EQ(stats.fixes, kThreads * kOpsPerThread);
  EXPECT_EQ(stats.hits, kThreads * kOpsPerThread);  // fully resident
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(bm.resident_count(), kPages);
}

// Miss-path + eviction + write-back + FlushAll, all racing: threads fix a
// working set several times the pool; each thread additionally dirties a
// private page range (byte traffic stays owner-local — a page's bytes are
// only ever written and byte-1-read by its owner, which is the caller-side
// contract for concurrent modification) and interleaves FlushAll calls.
// Afterwards every dirtied page's bytes must be on disk.
TEST_P(BufferMtTest, ConcurrentMissEvictFlushPreservesData) {
  constexpr uint32_t kPagesPerThread = 64;
  constexpr uint32_t kPages = kThreads * kPagesPerThread;
  constexpr uint64_t kOpsPerThread = 3000;
  const PageId first = disk_->AllocateRun(kPages).value();
  BufferOptions options;
  options.frame_count = kPages / 4;  // constant eviction pressure
  options.shard_count = 8;
  options.write_batch_size = 8;
  BufferManager bm(disk_.get(), options);
  // Stamp byte 0 of every page before the racing phase; no thread writes
  // it afterwards, so cross-thread reads of byte 0 are race-free.
  for (uint32_t i = 0; i < kPages; ++i) {
    auto g = bm.Fix(first + i);
    ASSERT_TRUE(g.ok());
    g->data()[0] = static_cast<char>('A' + i % 26);
    g->MarkDirty();
  }
  ASSERT_TRUE(bm.FlushAll().ok());

  std::vector<std::thread> pool;
  for (uint32_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const PageId mine_first = first + t * kPagesPerThread;
      Rng rng(0xDECADE + t);
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        const uint64_t dice = rng.Next();
        if (dice % 16 == 0) {
          // Periodic disconnect-style flush from a racing thread.
          ASSERT_TRUE(bm.FlushAll().ok());
          continue;
        }
        if (dice % 4 == 0) {
          // Dirty a page this thread owns (byte 1 is owner-private).
          const PageId id = mine_first + dice / 16 % kPagesPerThread;
          auto g = bm.Fix(id);
          ASSERT_TRUE(g.ok());
          g->data()[1] = static_cast<char>('a' + t);
          g->MarkDirty();
        } else {
          // Read anywhere: cross-thread traffic exercises the shared pool
          // structures; only the pre-stamped byte is inspected.
          const PageId id = first + static_cast<PageId>(dice / 16 % kPages);
          auto g = bm.Fix(id);
          ASSERT_TRUE(g.ok());
          const uint32_t n = id - first;
          ASSERT_EQ(g->data()[0], static_cast<char>('A' + n % 26))
              << "page " << id;
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  ASSERT_TRUE(bm.FlushAll().ok());
  for (uint32_t t = 0; t < kThreads; ++t) {
    bool any = false;
    for (uint32_t i = 0; i < kPagesPerThread; ++i) {
      const uint32_t n = t * kPagesPerThread + i;
      const char* page = disk_->PeekPage(first + n);
      ASSERT_NE(page, nullptr);
      ASSERT_EQ(page[0], static_cast<char>('A' + n % 26));
      ASSERT_TRUE(page[1] == 0 || page[1] == static_cast<char>('a' + t));
      any = any || page[1] != 0;
    }
    EXPECT_TRUE(any) << "thread " << t << " never reached disk";
  }
  const BufferStats stats = bm.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.fixes);
}

// Prefetch (both modes) racing Fix and concurrent AllocateRun: the extent
// directory must keep zero-copy views valid while another thread grows the
// volume.
TEST_P(BufferMtTest, ConcurrentPrefetchAndAllocate) {
  constexpr uint32_t kPages = 128;
  constexpr uint64_t kRounds = 300;
  const PageId first = disk_->AllocateRun(kPages).value();
  BufferOptions options;
  options.frame_count = kPages / 2;
  options.shard_count = 8;
  BufferManager bm(disk_.get(), options);

  std::atomic<bool> stop{false};
  std::thread allocator([&] {
    // Concurrent volume growth: referenced pages' extents must stay put.
    for (int i = 0; i < 200 && !stop.load(); ++i) {
      ASSERT_TRUE(disk_->AllocateRun(8).ok());
    }
  });

  std::vector<std::thread> pool;
  for (uint32_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(0xFACADE + t);
      std::vector<PageId> ids;
      for (uint64_t round = 0; round < kRounds; ++round) {
        ids.clear();
        const PageId base =
            first + static_cast<PageId>(rng.Uniform(kPages - 16));
        for (uint32_t i = 0; i < 8; ++i) ids.push_back(base + 2 * i % 16);
        const PrefetchMode mode = round % 2 == 0
                                      ? PrefetchMode::kChained
                                      : PrefetchMode::kContiguousRuns;
        ASSERT_TRUE(bm.Prefetch(ids, mode).ok());
        for (PageId id : ids) {
          auto g = bm.Fix(id);
          ASSERT_TRUE(g.ok());
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  stop.store(true);
  allocator.join();

  const BufferStats stats = bm.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.fixes);
  EXPECT_LE(bm.resident_count(), bm.frame_count());
}

INSTANTIATE_TEST_SUITE_P(Backends, BufferMtTest,
                         ::testing::Values(VolumeKind::kMem,
                                           VolumeKind::kMmap),
                         [](const auto& info) {
                           return info.param == VolumeKind::kMem ? "Mem"
                                                                 : "Mmap";
                         });

// Store-level contract: concurrent ReadSessions over one open store (the
// documented single-writer / multi-reader model) return exactly what a
// single-threaded reader sees.
TEST(BufferMtStoreTest, ConcurrentReadSessionsSeeAllObjects) {
  auto schema = SchemaBuilder("Doc")
                    .AddInt32("Id")
                    .AddInt32("Score")
                    .AddString("Body")
                    .Build();
  StoreOptions options;
  options.buffer_frames = 64;
  options.buffer_shards = 8;
  auto store_or = ComplexObjectStore::Open(schema, options);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto& store = *store_or.value();

  constexpr int kObjects = 200;
  for (int i = 0; i < kObjects; ++i) {
    Tuple doc{{Value::Int32(i), Value::Int32(i * 7),
               Value::Str("body-" + std::to_string(i))}};
    ASSERT_TRUE(store.Put(static_cast<ObjectRef>(i), doc).ok());
  }

  std::vector<std::thread> pool;
  for (uint32_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      ReadSession session = store.OpenReadSession();
      Rng rng(0xBEEF + t);
      for (int i = 0; i < 2000; ++i) {
        const int n = static_cast<int>(rng.Uniform(kObjects));
        auto tuple = session.Get(static_cast<ObjectRef>(n));
        ASSERT_TRUE(tuple.ok()) << tuple.status().ToString();
        ASSERT_EQ(tuple->values[0].as_int32(), n);
        ASSERT_EQ(tuple->values[1].as_int32(), n * 7);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace
}  // namespace starfish
