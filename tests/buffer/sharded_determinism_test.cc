// Locks the sharded buffer pool to the paper's committed counters.
//
// The Table 5/6 reproduction depends on the buffer pool making exactly the
// replacement decisions DASDBS's global pool made. This test pins that
// behaviour against the sharding refactor in two ways:
//
//   1. The default single-shard pool must reproduce, bit for bit, the
//      counter deltas the pre-sharding flat pool produced for a scaled-down
//      Table 5/6 workload (the constants below were captured from the
//      original implementation; the real benches run the full-size
//      workload and are diffed byte-identically in CI).
//   2. A sharded pool (shard_count = 4) run single-threaded must be
//      deterministic — identical counters across repeated runs — and must
//      count exactly the same number of fixes (fix counts are
//      placement-independent; only hit/miss placement may differ when
//      replacement is per shard).

#include <gtest/gtest.h>

#include <cstdint>

#include "benchmark/runner.h"

namespace starfish::bench {
namespace {

struct ExpectedCounters {
  uint64_t pages_read, pages_written, read_calls, write_calls;
  uint64_t fixes, hits, misses;
};

/// The scaled-down workload: 200 objects, 96 frames, batch-8 write-back,
/// 12 navigation loops. Counters captured from the pre-sharding pool.
GeneratorConfig SmallGenerator() {
  GeneratorConfig gen;
  gen.n_objects = 200;
  return gen;
}

BufferOptions SmallBuffer(uint32_t shard_count) {
  BufferOptions buffer;
  buffer.frame_count = 96;
  buffer.write_batch_size = 8;
  buffer.shard_count = shard_count;
  return buffer;
}

QueryConfig SmallQueries() {
  QueryConfig query;
  query.loops = 12;
  query.q1a_samples = 8;
  query.q2a_samples = 4;
  return query;
}

void ExpectExact(const QueryMeasurement& m, const ExpectedCounters& want,
                 const char* what) {
  EXPECT_EQ(m.delta.io.pages_read, want.pages_read) << what;
  EXPECT_EQ(m.delta.io.pages_written, want.pages_written) << what;
  EXPECT_EQ(m.delta.io.read_calls, want.read_calls) << what;
  EXPECT_EQ(m.delta.io.write_calls, want.write_calls) << what;
  EXPECT_EQ(m.delta.buffer.fixes, want.fixes) << what;
  EXPECT_EQ(m.delta.buffer.hits, want.hits) << what;
  EXPECT_EQ(m.delta.buffer.misses, want.misses) << what;
}

class ShardedDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = BenchmarkDatabase::Generate(SmallGenerator());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new BenchmarkDatabase(std::move(db).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static BenchmarkDatabase* db_;
};

BenchmarkDatabase* ShardedDeterminismTest::db_ = nullptr;

TEST_F(ShardedDeterminismTest, SingleShardMatchesCommittedTable56Counters) {
  // {pages_read, pages_written, read_calls, write_calls, fixes, hits,
  // misses} — captured from the flat (pre-sharding) pool.
  const ExpectedCounters dsm_q1c{696, 0, 17, 0, 1392, 1392, 0};
  const ExpectedCounters dsm_q2b{725, 0, 387, 0, 819, 608, 211};
  const ExpectedCounters dsm_q3b{1286, 828, 709, 105, 3314, 2914, 400};
  const ExpectedCounters dnsm_q1c{698, 0, 193, 0, 1396, 1396, 0};
  const ExpectedCounters dnsm_q2b{51, 0, 51, 0, 247, 196, 51};
  const ExpectedCounters dnsm_q3b{58, 14, 58, 2, 606, 548, 58};

  auto dsm = BenchmarkRunner::RunOne(StorageModelKind::kDsm, *db_,
                                     SmallBuffer(1), SmallQueries());
  ASSERT_TRUE(dsm.ok()) << dsm.status().ToString();
  ExpectExact(dsm->queries.q1c, dsm_q1c, "DSM q1c");
  ExpectExact(dsm->queries.q2b, dsm_q2b, "DSM q2b");
  ExpectExact(dsm->queries.q3b, dsm_q3b, "DSM q3b");

  auto dnsm = BenchmarkRunner::RunOne(StorageModelKind::kDasdbsNsm, *db_,
                                      SmallBuffer(1), SmallQueries());
  ASSERT_TRUE(dnsm.ok()) << dnsm.status().ToString();
  ExpectExact(dnsm->queries.q1c, dnsm_q1c, "DASDBS-NSM q1c");
  ExpectExact(dnsm->queries.q2b, dnsm_q2b, "DASDBS-NSM q2b");
  ExpectExact(dnsm->queries.q3b, dnsm_q3b, "DASDBS-NSM q3b");
}

TEST_F(ShardedDeterminismTest, ShardedSingleThreadRunIsDeterministic) {
  auto first = BenchmarkRunner::RunOne(StorageModelKind::kDasdbsNsm, *db_,
                                       SmallBuffer(4), SmallQueries());
  auto second = BenchmarkRunner::RunOne(StorageModelKind::kDasdbsNsm, *db_,
                                        SmallBuffer(4), SmallQueries());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  auto expect_same = [](const QueryMeasurement& a, const QueryMeasurement& b,
                        const char* what) {
    EXPECT_EQ(a.delta.io.pages_read, b.delta.io.pages_read) << what;
    EXPECT_EQ(a.delta.io.pages_written, b.delta.io.pages_written) << what;
    EXPECT_EQ(a.delta.io.read_calls, b.delta.io.read_calls) << what;
    EXPECT_EQ(a.delta.io.write_calls, b.delta.io.write_calls) << what;
    EXPECT_EQ(a.delta.buffer.fixes, b.delta.buffer.fixes) << what;
    EXPECT_EQ(a.delta.buffer.hits, b.delta.buffer.hits) << what;
    EXPECT_EQ(a.delta.buffer.misses, b.delta.buffer.misses) << what;
  };
  expect_same(first->queries.q1c, second->queries.q1c, "q1c");
  expect_same(first->queries.q2b, second->queries.q2b, "q2b");
  expect_same(first->queries.q3b, second->queries.q3b, "q3b");
}

TEST_F(ShardedDeterminismTest, ShardedRunCountsTheSameFixes) {
  // Fix counts are driven by the query plan, not by replacement placement —
  // sharding may shift hits to misses but must never change how often the
  // storage layer asks for a page.
  const ExpectedCounters dnsm_q1c{698, 0, 193, 0, 1396, 1396, 0};
  const ExpectedCounters dnsm_q3b{58, 14, 58, 2, 606, 548, 58};
  auto sharded = BenchmarkRunner::RunOne(StorageModelKind::kDasdbsNsm, *db_,
                                         SmallBuffer(4), SmallQueries());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->queries.q1c.delta.buffer.fixes, dnsm_q1c.fixes);
  EXPECT_EQ(sharded->queries.q3b.delta.buffer.fixes, dnsm_q3b.fixes);
  EXPECT_EQ(sharded->queries.q1c.delta.buffer.hits +
                sharded->queries.q1c.delta.buffer.misses,
            sharded->queries.q1c.delta.buffer.fixes);
}

}  // namespace
}  // namespace starfish::bench
