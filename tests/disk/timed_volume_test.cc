// TimedVolume: the latency decorator must charge exactly the Equation-1
// service time of the metered traffic, and be a transparent pass-through
// for everything else.

#include "disk/timed_volume.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "disk/mem_volume.h"

namespace starfish {
namespace {

LinearTimingModel TestTiming() { return LinearTimingModel{24.0, 1.3}; }

TEST(TimedVolumeTest, ChargesEquationOnePerCall) {
  TimedVolume disk(std::make_unique<MemVolume>(), TestTiming());
  const PageId first = disk.AllocateRun(8).value();
  EXPECT_EQ(disk.elapsed_ms(), 0.0);  // allocation is not an I/O

  std::vector<char> buf(8 * disk.page_size());
  ASSERT_TRUE(disk.ReadRun(first, 8, buf.data()).ok());        // 1 call, 8 pages
  ASSERT_TRUE(disk.WriteRun(first, 2, buf.data()).ok());       // 1 call, 2 pages
  std::vector<const char*> views;
  ASSERT_TRUE(disk.ReadRunZeroCopy(first, 3, &views).ok());    // 1 call, 3 pages
  ASSERT_TRUE(disk.ReadChainedZeroCopy({first, first + 5}, &views).ok());
  std::vector<char> one(disk.page_size());
  ASSERT_TRUE(disk.WriteChained({first + 1}, {one.data()}).ok());

  // 5 calls moving 8+2+3+2+1 = 16 pages.
  EXPECT_DOUBLE_EQ(disk.elapsed_ms(), TestTiming().Cost(5, 16));
}

TEST(TimedVolumeTest, AccumulationLockedToLinearModelCost) {
  // Whatever traffic flows through the decorator, elapsed_ms() must equal
  // LinearTimingModel::Cost of the metered counter delta — Equation 1
  // applied per call accumulates to Equation 1 applied to the totals.
  TimedVolume disk(std::make_unique<MemVolume>(), TestTiming());
  const PageId first = disk.AllocateRun(64).value();
  std::vector<char> buf(16 * disk.page_size());
  std::vector<const char*> views;
  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(disk.ReadRun(first + i, 1 + i % 7, buf.data()).ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(disk.WriteRun(first + i, 1 + i % 5, buf.data()).ok());
    }
    if (i % 4 == 0) {
      ASSERT_TRUE(disk.ReadChainedZeroCopy({first + i, first + 63 - i}, &views)
                      .ok());
    }
  }
  // Floating-point accumulation across many calls: allow rounding in the
  // last bits, nothing more.
  EXPECT_NEAR(disk.elapsed_ms(), TestTiming().Cost(disk.stats()), 1e-9);
}

TEST(TimedVolumeTest, FailedCallsAreFree) {
  TimedVolume disk(std::make_unique<MemVolume>(), TestTiming());
  ASSERT_TRUE(disk.Allocate().ok());
  std::vector<char> buf(disk.page_size());
  EXPECT_TRUE(disk.ReadRun(5, 1, buf.data()).IsOutOfRange());
  EXPECT_TRUE(disk.ReadRun(0, 0, buf.data()).IsInvalidArgument());
  EXPECT_EQ(disk.elapsed_ms(), 0.0);
}

TEST(TimedVolumeTest, PhysicalModelCoefficientsFlowThrough) {
  PhysicalTimingModel drive;  // period 5400rpm drive
  TimedVolume disk(std::make_unique<MemVolume>(), drive.ToLinear());
  const PageId first = disk.AllocateRun(4).value();
  std::vector<char> buf(4 * disk.page_size());
  ASSERT_TRUE(disk.ReadRun(first, 4, buf.data()).ok());
  // One call: seek + half rotation + controller overhead + 4 transfers.
  EXPECT_DOUBLE_EQ(disk.elapsed_ms(), drive.ToLinear().Cost(1, 4));
  EXPECT_GT(disk.elapsed_ms(), drive.average_seek_ms);
}

TEST(TimedVolumeTest, TransparentPassThrough) {
  auto inner = std::make_unique<MemVolume>();
  MemVolume* raw = inner.get();
  TimedVolume disk(std::move(inner), TestTiming());
  EXPECT_EQ(disk.kind(), VolumeKind::kMem);  // reports the wrapped backend
  EXPECT_EQ(disk.inner(), raw);
  const PageId id = disk.Allocate().value();
  std::vector<char> data(disk.page_size(), 'T');
  ASSERT_TRUE(disk.WriteRun(id, 1, data.data()).ok());
  // Stats and pages are the inner volume's.
  EXPECT_EQ(disk.stats().write_calls, raw->stats().write_calls);
  EXPECT_EQ(disk.stats().TotalCalls(), 1u);
  EXPECT_EQ(disk.PeekPage(id), raw->PeekPage(id));
  EXPECT_EQ(disk.PeekPage(id)[0], 'T');
  EXPECT_EQ(disk.page_count(), 1u);
}

TEST(TimedVolumeTest, ResetStatsClearsElapsed) {
  TimedVolume disk(std::make_unique<MemVolume>(), TestTiming());
  const PageId id = disk.Allocate().value();
  std::vector<char> buf(disk.page_size());
  ASSERT_TRUE(disk.ReadRun(id, 1, buf.data()).ok());
  EXPECT_GT(disk.elapsed_ms(), 0.0);
  disk.ResetStats();
  EXPECT_EQ(disk.elapsed_ms(), 0.0);
  EXPECT_EQ(disk.stats().TotalCalls(), 0u);
  ASSERT_TRUE(disk.ReadRun(id, 1, buf.data()).ok());
  disk.ResetElapsed();  // elapsed only; counters stay
  EXPECT_EQ(disk.elapsed_ms(), 0.0);
  EXPECT_EQ(disk.stats().TotalCalls(), 1u);
}

TEST(TimedVolumeTest, NonOwningConstructor) {
  MemVolume inner;
  TimedVolume disk(&inner, TestTiming());
  const PageId id = disk.Allocate().value();
  std::vector<char> buf(disk.page_size());
  ASSERT_TRUE(disk.ReadRun(id, 1, buf.data()).ok());
  EXPECT_DOUBLE_EQ(disk.elapsed_ms(), TestTiming().Cost(1, 1));
  EXPECT_EQ(inner.stats().read_calls, 1u);
}

}  // namespace
}  // namespace starfish
