#include "disk/disk_timing.h"

#include <gtest/gtest.h>

namespace starfish {
namespace {

TEST(LinearTimingModelTest, EquationOne) {
  // C_diskIO = d1 * X_IO_calls + d2 * X_IO_pages.
  LinearTimingModel m{10.0, 2.0};
  EXPECT_DOUBLE_EQ(m.Cost(3, 7), 10.0 * 3 + 2.0 * 7);
  EXPECT_DOUBLE_EQ(m.Cost(0, 0), 0.0);
}

TEST(LinearTimingModelTest, CostOfStatsUsesTotals) {
  LinearTimingModel m{1.0, 1.0};
  IoStats s{5, 5, 2, 1};  // 10 pages, 3 calls
  EXPECT_DOUBLE_EQ(m.Cost(s), 13.0);
}

TEST(LinearTimingModelTest, BatchingRewardsFewerCalls) {
  // Same pages moved, fewer calls -> cheaper. This is why chained I/O and
  // write batching matter.
  LinearTimingModel m{24.0, 1.3};
  const double chatty = m.Cost(/*calls=*/100, /*pages=*/100);
  const double batched = m.Cost(/*calls=*/10, /*pages=*/100);
  EXPECT_LT(batched, chatty);
}

TEST(PhysicalTimingModelTest, RotationalLatencyFromRpm) {
  PhysicalTimingModel p;
  p.rpm = 6000.0;  // 100 rev/s -> 10 ms/rev -> 5 ms half-rev
  EXPECT_NEAR(p.RotationalLatencyMs(), 5.0, 1e-9);
}

TEST(PhysicalTimingModelTest, TransferTimeFromRate) {
  PhysicalTimingModel p;
  p.transfer_mb_per_s = 2.0;
  p.page_size_bytes = 2048;
  EXPECT_NEAR(p.TransferMsPerPage(), 2048.0 / 2e6 * 1e3, 1e-9);
}

TEST(PhysicalTimingModelTest, ToLinearCombinesComponents) {
  PhysicalTimingModel p;
  const LinearTimingModel lin = p.ToLinear();
  EXPECT_NEAR(lin.d1_per_call, p.average_seek_ms + p.RotationalLatencyMs() +
                                   p.controller_overhead_ms,
              1e-9);
  EXPECT_GT(lin.d2_per_page, 0.0);
  EXPECT_LT(lin.d2_per_page, lin.d1_per_call);
}

}  // namespace
}  // namespace starfish
