// Backend conformance suite of the Volume interface.
//
// Every test runs over every backend (MemVolume, MmapVolume, DirectVolume)
// plus the FaultVolume decorator with faults disabled: the metering
// contract, the extent-boundary behaviour and the zero-copy guarantees are
// part of the interface, not of one implementation — and a quiescent fault
// decorator must be indistinguishable from its backend (IoStats and
// zero-copy pointers included). The direct backend declares
// supports_zero_copy() == false, so the zero-copy/PeekPage tests assert the
// documented NotSupported/nullptr behaviour there instead; it is skipped
// entirely on filesystems without O_DIRECT (tmpfs, overlayfs). Backend-
// specific behaviour (persistence, reopen) lives in mmap_volume_test.cc /
// direct_volume_test.cc; the decorators' active behaviour in
// timed_volume_test.cc / fault_volume_test.cc.

#include "disk/volume.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "../support/direct_probe.h"
#include "disk/direct_volume.h"
#include "util/aligned_buffer.h"
#include "disk/fault_volume.h"
#include "disk/mem_volume.h"
#include "disk/mmap_volume.h"

namespace starfish {
namespace {

std::vector<char> Pattern(uint32_t page_size, char fill) {
  return std::vector<char>(page_size, fill);
}

/// The parameter space: the three real backends, plus FaultVolume wrapped
/// around MemVolume and DirectVolume with no fault armed (the
/// transparent-passthrough proof must hold over a zero-copy backend and a
/// copying one — the crash matrix relies on both).
enum class TestBackend { kMem, kMmap, kDirect, kFaultMem, kFaultDirect };

VolumeKind ExpectedKind(TestBackend backend) {
  switch (backend) {
    case TestBackend::kMmap: return VolumeKind::kMmap;
    case TestBackend::kDirect:
    case TestBackend::kFaultDirect: return VolumeKind::kDirect;
    default: return VolumeKind::kMem;
  }
}

std::string BackendName(TestBackend backend) {
  switch (backend) {
    case TestBackend::kMem: return "mem";
    case TestBackend::kMmap: return "mmap";
    case TestBackend::kDirect: return "direct";
    case TestBackend::kFaultMem: return "fault_mem";
    case TestBackend::kFaultDirect: return "fault_direct";
  }
  return "unknown";
}

bool IsDirectBacked(TestBackend backend) {
  return backend == TestBackend::kDirect ||
         backend == TestBackend::kFaultDirect;
}

bool DirectSupportedHere() {
  static const bool supported = test::DirectIoSupportedHere("volume");
  return supported;
}

/// Creates a fresh backend of the parameterized kind in a private temp
/// directory (mmap/direct) or in memory (mem / fault_mem).
class VolumeTest : public ::testing::TestWithParam<TestBackend> {
 protected:
  void SetUp() override {
    if (IsDirectBacked(GetParam()) && !DirectSupportedHere()) {
      GTEST_SKIP() << "filesystem has no O_DIRECT support";
    }
  }

  std::unique_ptr<Volume> Make(DiskOptions options = {}) {
    if (GetParam() == TestBackend::kFaultMem) {
      return std::make_unique<FaultVolume>(
          std::make_unique<MemVolume>(options));
    }
    std::string path;
    if (GetParam() != TestBackend::kMem) {
      // The pid keeps parallel ctest processes (each restarting the
      // counter at 0) out of each other's directories.
      path = (std::filesystem::temp_directory_path() /
              ("starfish_volume_test_" + std::to_string(::getpid()) + "_" +
               std::to_string(dir_counter_++)))
                 .string();
      std::filesystem::remove_all(path);
      cleanup_.push_back(path);
    }
    auto volume_or = CreateVolume(ExpectedKind(GetParam()), options, path);
    EXPECT_TRUE(volume_or.ok()) << volume_or.status().ToString();
    if (GetParam() == TestBackend::kFaultDirect) {
      return std::make_unique<FaultVolume>(std::move(volume_or).value());
    }
    return std::move(volume_or).value();
  }

  /// Tiny geometry (4 pages per extent) so runs cross extents cheaply. The
  /// direct backend cannot go below the 512-byte device sector.
  DiskOptions TinyExtents() const {
    DiskOptions o;
    o.page_size = IsDirectBacked(GetParam()) ? 512 : 256;
    o.extent_bytes = 4 * o.page_size;
    return o;
  }

  void TearDown() override {
    for (const std::string& dir : cleanup_) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }

 private:
  static int dir_counter_;
  std::vector<std::string> cleanup_;
};

int VolumeTest::dir_counter_ = 0;

TEST_P(VolumeTest, KindMatchesBackend) {
  auto disk = Make();
  EXPECT_EQ(disk->kind(), ExpectedKind(GetParam()));
  // The decorators report the wrapped backend's kind.
  EXPECT_EQ(ToString(disk->kind()), ToString(ExpectedKind(GetParam())));
}

TEST_P(VolumeTest, AllocateGrowsVolume) {
  auto disk = Make();
  EXPECT_EQ(disk->page_count(), 0u);
  const PageId a = disk->Allocate().value();
  const PageId b = disk->Allocate().value();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(disk->page_count(), 2u);
  EXPECT_EQ(disk->live_page_count(), 2u);
}

TEST_P(VolumeTest, AllocateRunIsContiguous) {
  auto disk = Make();
  ASSERT_TRUE(disk->Allocate().ok());
  const PageId first = disk->AllocateRun(5).value();
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(disk->page_count(), 6u);
}

TEST_P(VolumeTest, FreshPagesAreZeroFilled) {
  auto disk = Make();
  const PageId id = disk->Allocate().value();
  std::vector<char> buf(disk->page_size(), 'x');
  ASSERT_TRUE(disk->ReadRun(id, 1, buf.data()).ok());
  for (char c : buf) EXPECT_EQ(c, '\0');
}

TEST_P(VolumeTest, WriteReadRoundTrip) {
  auto disk = Make();
  const PageId id = disk->Allocate().value();
  auto data = Pattern(disk->page_size(), 'A');
  ASSERT_TRUE(disk->WriteRun(id, 1, data.data()).ok());
  std::vector<char> buf(disk->page_size());
  ASSERT_TRUE(disk->ReadRun(id, 1, buf.data()).ok());
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), disk->page_size()), 0);
}

TEST_P(VolumeTest, RunCountsOneCallManyPages) {
  auto disk = Make();
  const PageId first = disk->AllocateRun(4).value();
  std::vector<char> buf(4 * disk->page_size());
  ASSERT_TRUE(disk->ReadRun(first, 4, buf.data()).ok());
  EXPECT_EQ(disk->stats().read_calls, 1u);
  EXPECT_EQ(disk->stats().pages_read, 4u);
  ASSERT_TRUE(disk->WriteRun(first, 4, buf.data()).ok());
  EXPECT_EQ(disk->stats().write_calls, 1u);
  EXPECT_EQ(disk->stats().pages_written, 4u);
}

TEST_P(VolumeTest, ChainedIoCountsOneCall) {
  auto disk = Make();
  ASSERT_TRUE(disk->AllocateRun(10).ok());
  std::vector<char> b0(disk->page_size()), b1(disk->page_size()),
      b2(disk->page_size());
  ASSERT_TRUE(disk->ReadChained({2, 7, 9}, {b0.data(), b1.data(), b2.data()})
                  .ok());
  EXPECT_EQ(disk->stats().read_calls, 1u);
  EXPECT_EQ(disk->stats().pages_read, 3u);
}

TEST_P(VolumeTest, ChainedWriteRoundTrip) {
  auto disk = Make();
  ASSERT_TRUE(disk->AllocateRun(5).ok());
  auto a = Pattern(disk->page_size(), 'a');
  auto b = Pattern(disk->page_size(), 'b');
  ASSERT_TRUE(disk->WriteChained({1, 4}, {a.data(), b.data()}).ok());
  EXPECT_EQ(disk->stats().write_calls, 1u);
  std::vector<char> buf(disk->page_size());
  ASSERT_TRUE(disk->ReadRun(4, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'b');
}

TEST_P(VolumeTest, OutOfRangeAccessRejected) {
  auto disk = Make();
  ASSERT_TRUE(disk->Allocate().ok());
  std::vector<char> buf(disk->page_size());
  EXPECT_TRUE(disk->ReadRun(1, 1, buf.data()).IsOutOfRange());
  EXPECT_TRUE(disk->ReadRun(0, 2, buf.data()).IsOutOfRange());
  EXPECT_TRUE(disk->ReadRun(kInvalidPageId, 1, buf.data()).IsOutOfRange());
}

TEST_P(VolumeTest, EmptyRunRejected) {
  auto disk = Make();
  ASSERT_TRUE(disk->Allocate().ok());
  std::vector<char> buf(disk->page_size());
  EXPECT_TRUE(disk->ReadRun(0, 0, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(disk->ReadChained({}, {}).IsInvalidArgument());
  EXPECT_TRUE(disk->AllocateRun(0).status().IsInvalidArgument());
}

TEST_P(VolumeTest, ChainedSizeMismatchRejected) {
  auto disk = Make();
  ASSERT_TRUE(disk->Allocate().ok());
  std::vector<char> buf(disk->page_size());
  EXPECT_TRUE(
      disk->ReadChained({0}, {buf.data(), buf.data()}).IsInvalidArgument());
}

TEST_P(VolumeTest, DoubleFreeRejected) {
  auto disk = Make();
  const PageId id = disk->Allocate().value();
  EXPECT_TRUE(disk->Free(id).ok());
  EXPECT_EQ(disk->live_page_count(), 0u);
  EXPECT_TRUE(disk->Free(id).IsInvalidArgument());
}

TEST_P(VolumeTest, CustomPageSize) {
  auto disk = Make(DiskOptions{512, 4u << 20});
  EXPECT_EQ(disk->page_size(), 512u);
  const PageId id = disk->Allocate().value();
  auto data = Pattern(512, 'z');
  ASSERT_TRUE(disk->WriteRun(id, 1, data.data()).ok());
}

TEST_P(VolumeTest, ResetStatsZeroesCounters) {
  auto disk = Make();
  ASSERT_TRUE(disk->AllocateRun(2).ok());
  std::vector<char> buf(disk->page_size());
  ASSERT_TRUE(disk->ReadRun(0, 1, buf.data()).ok());
  disk->ResetStats();
  EXPECT_EQ(disk->stats().TotalCalls(), 0u);
  EXPECT_EQ(disk->stats().TotalPages(), 0u);
}

// --- extent-boundary coverage ---------------------------------------------

TEST_P(VolumeTest, GeometryFollowsOptions) {
  auto disk = Make(TinyExtents());
  EXPECT_EQ(disk->pages_per_extent(), 4u);
  // An extent smaller than one page still holds one page.
  DiskOptions big;
  big.page_size = 4096;
  big.extent_bytes = 1024;
  EXPECT_EQ(Make(big)->pages_per_extent(), 1u);
}

TEST_P(VolumeTest, RunSpanningExtentsRoundTrips) {
  auto disk = Make(TinyExtents());
  const uint32_t n = 11;  // crosses two extent boundaries
  const PageId first = disk->AllocateRun(n).value();
  std::vector<char> data(n * disk->page_size());
  for (uint32_t i = 0; i < n; ++i) {
    std::fill_n(data.begin() + i * disk->page_size(), disk->page_size(),
                static_cast<char>('a' + i));
  }
  ASSERT_TRUE(disk->WriteRun(first, n, data.data()).ok());
  EXPECT_EQ(disk->stats().write_calls, 1u);
  EXPECT_EQ(disk->stats().pages_written, n);
  std::vector<char> buf(n * disk->page_size());
  ASSERT_TRUE(disk->ReadRun(first, n, buf.data()).ok());
  EXPECT_EQ(disk->stats().read_calls, 1u);
  EXPECT_EQ(disk->stats().pages_read, n);
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), buf.size()), 0);
}

TEST_P(VolumeTest, RunStartingMidExtentSpansBoundary) {
  auto disk = Make(TinyExtents());
  ASSERT_TRUE(disk->AllocateRun(3).ok());               // pages 0..2
  const PageId first = disk->AllocateRun(4).value();    // pages 3..6
  EXPECT_EQ(first, 3u);
  std::vector<char> data(4 * disk->page_size(), 'S');
  ASSERT_TRUE(disk->WriteRun(first, 4, data.data()).ok());
  std::vector<char> buf(disk->page_size());
  for (PageId id = first; id < first + 4; ++id) {
    ASSERT_TRUE(disk->ReadRun(id, 1, buf.data()).ok());
    EXPECT_EQ(buf[0], 'S') << "page " << id;
  }
}

TEST_P(VolumeTest, FreshPagesZeroFilledAcrossManyExtents) {
  auto disk = Make(TinyExtents());
  const uint32_t n = 4 * disk->pages_per_extent() + 2;
  const PageId first = disk->AllocateRun(n).value();
  std::vector<char> buf(n * disk->page_size(), 'x');
  ASSERT_TRUE(disk->ReadRun(first, n, buf.data()).ok());
  for (char c : buf) ASSERT_EQ(c, '\0');
}

TEST_P(VolumeTest, PeekPageIsUnmeteredAndStable) {
  auto disk = Make(TinyExtents());
  const PageId id = disk->AllocateRun(6).value() + 5;
  auto data = Pattern(disk->page_size(), 'P');
  ASSERT_TRUE(disk->WriteRun(id, 1, data.data()).ok());
  disk->ResetStats();
  if (!disk->supports_zero_copy()) {
    // No memory image: PeekPage is documented to return nullptr for every
    // id (and is still not an I/O).
    EXPECT_EQ(disk->PeekPage(id), nullptr);
    EXPECT_EQ(disk->stats().TotalCalls(), 0u);
    return;
  }
  const char* view = disk->PeekPage(id);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view[0], 'P');
  EXPECT_EQ(disk->stats().TotalCalls(), 0u);  // peeking is not an I/O
  // Growing the volume must not move existing pages.
  ASSERT_TRUE(disk->AllocateRun(64).ok());
  EXPECT_EQ(disk->PeekPage(id), view);
  // Out of range -> nullptr.
  EXPECT_EQ(disk->PeekPage(disk->page_count()), nullptr);
  EXPECT_EQ(disk->PeekPage(kInvalidPageId), nullptr);
}

TEST_P(VolumeTest, WritePageUnmeteredAppliesWithoutCounting) {
  auto disk = Make(TinyExtents());
  const PageId id = disk->AllocateRun(3).value() + 2;
  auto data = Pattern(disk->page_size(), 'U');
  disk->ResetStats();
  ASSERT_TRUE(disk->WritePageUnmetered(id, data.data()).ok());
  EXPECT_EQ(disk->stats().TotalCalls(), 0u);  // deliberately uncounted
  std::vector<char> buf(disk->page_size());
  ASSERT_TRUE(disk->ReadRun(id, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'U');
  EXPECT_EQ(buf[disk->page_size() - 1], 'U');
}

TEST_P(VolumeTest, ReadRunZeroCopyViewsAndAccounting) {
  auto disk = Make(TinyExtents());
  const uint32_t n = 9;  // spans three extents
  const PageId first = disk->AllocateRun(n).value();
  std::vector<const char*> views;
  if (!disk->supports_zero_copy()) {
    EXPECT_TRUE(disk->ReadRunZeroCopy(first, n, &views).IsNotSupported());
    EXPECT_EQ(disk->stats().read_calls, 0u);
    return;
  }
  std::vector<char> data(n * disk->page_size());
  for (uint32_t i = 0; i < n; ++i) {
    std::fill_n(data.begin() + i * disk->page_size(), disk->page_size(),
                static_cast<char>('0' + i));
  }
  ASSERT_TRUE(disk->WriteRun(first, n, data.data()).ok());
  disk->ResetStats();
  ASSERT_TRUE(disk->ReadRunZeroCopy(first, n, &views).ok());
  EXPECT_EQ(disk->stats().read_calls, 1u);
  EXPECT_EQ(disk->stats().pages_read, n);
  ASSERT_EQ(views.size(), n);
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(views[i][0], static_cast<char>('0' + i)) << "page " << i;
  }
  EXPECT_TRUE(disk->ReadRunZeroCopy(first + n, 1, &views).IsOutOfRange());
  EXPECT_TRUE(disk->ReadRunZeroCopy(first, 0, &views).IsInvalidArgument());
}

TEST_P(VolumeTest, ZeroCopyPointersStableAcrossReads) {
  auto disk = Make(TinyExtents());
  if (!disk->supports_zero_copy()) {
    GTEST_SKIP() << "backend has no memory image (supports_zero_copy false)";
  }
  const uint32_t n = 8;
  const PageId first = disk->AllocateRun(n).value();
  std::vector<const char*> views1, views2;
  ASSERT_TRUE(disk->ReadRunZeroCopy(first, n, &views1).ok());
  // Grow the volume, write through the copying API, read again: the views
  // must be the same addresses and observe the new bytes.
  ASSERT_TRUE(disk->AllocateRun(3 * disk->pages_per_extent()).ok());
  auto data = Pattern(disk->page_size(), 'Z');
  ASSERT_TRUE(disk->WriteRun(first + 2, 1, data.data()).ok());
  ASSERT_TRUE(disk->ReadRunZeroCopy(first, n, &views2).ok());
  ASSERT_EQ(views1.size(), views2.size());
  for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(views1[i], views2[i]);
  EXPECT_EQ(views2[2][0], 'Z');
}

TEST_P(VolumeTest, ReadChainedZeroCopyViewsAndAccounting) {
  auto disk = Make(TinyExtents());
  ASSERT_TRUE(disk->AllocateRun(12).ok());
  std::vector<const char*> views;
  if (!disk->supports_zero_copy()) {
    EXPECT_TRUE(disk->ReadChainedZeroCopy({2, 11, 0}, &views)
                    .IsNotSupported());
    EXPECT_EQ(disk->stats().read_calls, 0u);
    return;
  }
  auto a = Pattern(disk->page_size(), 'a');
  auto b = Pattern(disk->page_size(), 'b');
  ASSERT_TRUE(disk->WriteChained({2, 11}, {a.data(), b.data()}).ok());
  disk->ResetStats();
  ASSERT_TRUE(disk->ReadChainedZeroCopy({2, 11, 0}, &views).ok());
  EXPECT_EQ(disk->stats().read_calls, 1u);
  EXPECT_EQ(disk->stats().pages_read, 3u);
  ASSERT_EQ(views.size(), 3u);
  EXPECT_EQ(views[0][0], 'a');
  EXPECT_EQ(views[1][0], 'b');
  EXPECT_EQ(views[2][0], '\0');
  EXPECT_TRUE(disk->ReadChainedZeroCopy({}, &views).IsInvalidArgument());
  EXPECT_TRUE(disk->ReadChainedZeroCopy({99}, &views).IsOutOfRange());
}

TEST_P(VolumeTest, DefaultGeometryLargeVolumeRoundTrips) {
  auto disk = Make();  // 2 KiB pages, 4 MiB extents -> 2048 pages per extent
  const uint32_t n = disk->pages_per_extent() + 3;  // forces a second extent
  const PageId first = disk->AllocateRun(n).value();
  // Last page of extent 0 and first page of extent 1.
  const PageId boundary = first + disk->pages_per_extent() - 1;
  std::vector<char> two(2 * disk->page_size(), 'E');
  ASSERT_TRUE(disk->WriteRun(boundary, 2, two.data()).ok());
  std::vector<char> buf(2 * disk->page_size());
  ASSERT_TRUE(disk->ReadRun(boundary, 2, buf.data()).ok());
  EXPECT_EQ(buf[0], 'E');
  EXPECT_EQ(buf[2 * disk->page_size() - 1], 'E');
}

// The async read pair is part of the Volume interface: every backend must
// serve SubmitReadChained/CompleteRead with bytes and accounting identical
// to a blocking ReadChained, whether it really overlaps (direct + ring) or
// falls back to the base implementation (everything else — which completes
// inside Submit and returns the 0 "already done" ticket).
TEST_P(VolumeTest, AsyncReadChainedMatchesBlocking) {
  auto disk = Make(TinyExtents());
  const uint32_t page = disk->page_size();
  ASSERT_TRUE(disk->AllocateRun(9).ok());
  std::vector<char> data(page);
  for (PageId id = 0; id < 9; ++id) {
    std::fill(data.begin(), data.end(), static_cast<char>('a' + id));
    ASSERT_TRUE(disk->WriteRun(id, 1, data.data()).ok());
  }
  const std::vector<PageId> ids = {7, 0, 4, 8};  // crosses extents, unsorted

  std::vector<char> blocking(ids.size() * page);
  std::vector<char*> blocking_ptrs;
  for (size_t i = 0; i < ids.size(); ++i) {
    blocking_ptrs.push_back(blocking.data() + i * page);
  }
  ASSERT_TRUE(disk->ReadChained(ids, blocking_ptrs).ok());
  const IoStats before = disk->stats();

  AlignedBuffer staging;
  ASSERT_TRUE(staging.Reserve(ids.size() * page, 4096));
  std::vector<char*> async_ptrs;
  for (size_t i = 0; i < ids.size(); ++i) {
    async_ptrs.push_back(staging.data() + i * page);
  }
  auto ticket_or = disk->SubmitReadChained(ids, async_ptrs);
  ASSERT_TRUE(ticket_or.ok()) << ticket_or.status().ToString();
  // Accounting lands at submit, exactly one call and N page reads.
  const IoStats submitted = disk->stats();
  EXPECT_EQ(submitted.read_calls, before.read_calls + 1);
  EXPECT_EQ(submitted.pages_read, before.pages_read + ids.size());
  ASSERT_TRUE(disk->CompleteRead(ticket_or.value()).ok());
  EXPECT_EQ(std::memcmp(staging.data(), blocking.data(), blocking.size()), 0);
  // Completion charges nothing further.
  EXPECT_EQ(disk->stats().read_calls, submitted.read_calls);
  EXPECT_EQ(disk->stats().pages_read, submitted.pages_read);
  // The 0 sentinel is always a valid, idempotent no-op ticket.
  EXPECT_TRUE(disk->CompleteRead(0).ok());
}

// Misaligned destination buffers must be served through the async entry
// point too (the direct backend degrades that submit to a blocking bounce
// read and hands back the completed ticket) — callers never need to care.
TEST_P(VolumeTest, AsyncReadChainedToleratesMisalignedBuffers) {
  auto disk = Make(TinyExtents());
  const uint32_t page = disk->page_size();
  ASSERT_TRUE(disk->AllocateRun(5).ok());
  std::vector<char> data(page);
  for (PageId id = 0; id < 5; ++id) {
    std::fill(data.begin(), data.end(), static_cast<char>('0' + id));
    ASSERT_TRUE(disk->WriteRun(id, 1, data.data()).ok());
  }
  std::vector<char> raw(3 * page + 1);
  char* misaligned = raw.data() + 1;
  const std::vector<PageId> ids = {4, 1, 2};
  auto ticket_or = disk->SubmitReadChained(
      ids, {misaligned, misaligned + page, misaligned + 2 * page});
  ASSERT_TRUE(ticket_or.ok()) << ticket_or.status().ToString();
  ASSERT_TRUE(disk->CompleteRead(ticket_or.value()).ok());
  EXPECT_EQ(misaligned[0], '4');
  EXPECT_EQ(misaligned[page], '1');
  EXPECT_EQ(misaligned[2 * page], '2');
  EXPECT_EQ(misaligned[3 * page - 1], '2');
}

// Registered-I/O-memory bounce conformance (the aligned_buffer satellite):
// registering a frame arena must not change what any read/write path
// returns — aligned destinations inside the registered region, misaligned
// caller buffers bouncing through the internal AlignedBuffer, and mixes of
// both in one chained call all round-trip byte-identical on every backend
// (mem/mmap treat registration as a no-op; direct turns eligible reads
// into READ_FIXED against the registered region when the kernel allows).
TEST_P(VolumeTest, RegisteredMemoryMixedAlignmentRoundTrips) {
  auto disk = Make(TinyExtents());
  const uint32_t page = disk->page_size();
  ASSERT_TRUE(disk->AllocateRun(8).ok());
  std::vector<char> data(page);
  for (PageId id = 0; id < 8; ++id) {
    std::fill(data.begin(), data.end(), static_cast<char>('A' + id));
    ASSERT_TRUE(disk->WriteRun(id, 1, data.data()).ok());
  }

  // A registered "frame arena" (what the buffer pool registers)...
  AlignedBuffer arena;
  ASSERT_TRUE(arena.Reserve(4 * page, 4096));
  disk->RegisterIoMemory(arena.data(), 4 * page);
  // ...plus a deliberately misaligned caller buffer outside it.
  std::vector<char> raw(2 * page + 1);
  char* misaligned = raw.data() + 1;

  // Chained read mixing registered-arena and misaligned destinations.
  const std::vector<PageId> ids = {6, 2, 5, 0};
  ASSERT_TRUE(disk->ReadChained(ids, {arena.data(), misaligned,
                                      arena.data() + page,
                                      misaligned + page})
                  .ok());
  EXPECT_EQ(arena.data()[0], 'G');
  EXPECT_EQ(misaligned[0], 'C');
  EXPECT_EQ(arena.data()[page], 'F');
  EXPECT_EQ(misaligned[page], 'A');
  EXPECT_EQ(misaligned[2 * page - 1], 'A');

  // The async pair against the registered arena.
  auto ticket_or = disk->SubmitReadChained({3, 7},
                                           {arena.data() + 2 * page,
                                            arena.data() + 3 * page});
  ASSERT_TRUE(ticket_or.ok());
  ASSERT_TRUE(disk->CompleteRead(ticket_or.value()).ok());
  EXPECT_EQ(arena.data()[2 * page], 'D');
  EXPECT_EQ(arena.data()[3 * page], 'H');

  // Writes sourced from the registered region round-trip unchanged.
  std::fill_n(arena.data(), page, 'Z');
  ASSERT_TRUE(disk->WriteRun(1, 1, arena.data()).ok());
  std::vector<char> back(page);
  ASSERT_TRUE(disk->ReadRun(1, 1, back.data()).ok());
  EXPECT_EQ(back[0], 'Z');
  EXPECT_EQ(back[page - 1], 'Z');

  // Unregistration mid-life is safe and changes nothing observable.
  disk->UnregisterIoMemory(arena.data());
  ASSERT_TRUE(disk->ReadRun(6, 1, arena.data()).ok());
  EXPECT_EQ(arena.data()[0], 'G');
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, VolumeTest,
    ::testing::Values(TestBackend::kMem, TestBackend::kMmap,
                      TestBackend::kDirect, TestBackend::kFaultMem,
                      TestBackend::kFaultDirect),
    [](const ::testing::TestParamInfo<TestBackend>& info) {
      return BackendName(info.param);
    });

TEST(IoStatsTest, SinceComputesDelta) {
  IoStats a{10, 4, 3, 2};
  IoStats b{25, 9, 8, 4};
  const IoStats d = b.Since(a);
  EXPECT_EQ(d.pages_read, 15u);
  EXPECT_EQ(d.pages_written, 5u);
  EXPECT_EQ(d.read_calls, 5u);
  EXPECT_EQ(d.write_calls, 2u);
  EXPECT_EQ(d.TotalPages(), 20u);
  EXPECT_EQ(d.TotalCalls(), 7u);
}

TEST(IoStatsTest, ToStringMentionsCounters) {
  IoStats s{1, 2, 3, 4};
  const std::string str = s.ToString();
  EXPECT_NE(str.find("pages_read=1"), std::string::npos);
  EXPECT_NE(str.find("write_calls=4"), std::string::npos);
}

}  // namespace
}  // namespace starfish
