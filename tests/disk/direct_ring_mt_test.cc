// Ring lifetime and concurrency of the reworked DirectVolume (PR 8):
// per-thread io_uring rings with centralized registry teardown.
//
// What must hold, and is asserted here:
//   - worker threads may outlive the volume: their thread-local ring slots
//     go stale when the volume dies and are swept on the next submission
//     against a NEW volume (serial-keyed slots can never match a dead
//     registry), so open/submit/close cycles from long-lived threads are
//     safe;
//   - closing a volume closes every ring fd it handed out, even while the
//     submitting threads are still alive — open/close cycles leak no fds
//     (counted via /proc/self/fd);
//   - a thread can keep several read batches in flight and complete them
//     FIFO (the prefetcher's pattern);
//   - the kShared and kSqpoll modes round-trip the same bytes, and the
//     accessors (io_uring_active, ring_mode, ring_count, sqpoll_active,
//     registered_*_active) report what is actually in effect.
//
// The suite name carries "DirectRingMt" so ci/check.sh's TSan stage picks
// every test up: the per-thread-ring claim is a data-race claim, and TSan
// is the referee. Tests skip (not fail) without O_DIRECT support, like the
// rest of the direct-backend coverage.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "../support/direct_probe.h"
#include "disk/direct_volume.h"
#include "util/aligned_buffer.h"

namespace starfish {
namespace {

using RingMode = DirectVolumeOptions::RingMode;

bool DirectSupportedHere() {
  static const bool supported = test::DirectIoSupportedHere("direct_ring_mt");
  return supported;
}

/// Open fds of this process — the leak meter for open/close cycles. The
/// iterator's own fd is included, but identically on every call, so
/// before/after comparisons are exact.
size_t OpenFdCount() {
  size_t n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

class DirectRingMtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!DirectSupportedHere()) {
      GTEST_SKIP() << "filesystem has no O_DIRECT support";
    }
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_ring_mt_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Small geometry: 512-byte pages, 4 pages per extent.
  DiskOptions Tiny() const {
    DiskOptions o;
    o.page_size = 512;
    o.extent_bytes = 2048;
    return o;
  }

  /// Opens a volume in `dir_` with 8 seeded pages (page id as fill byte).
  std::unique_ptr<DirectVolume> OpenSeeded(DirectVolumeOptions ring = {}) {
    auto disk_or = DirectVolume::Open(dir_, Tiny(), ring);
    if (!disk_or.ok()) return nullptr;
    auto disk = std::move(disk_or).value();
    if (disk->page_count() == 0) {
      if (!disk->AllocateRun(8).ok()) return nullptr;
    }
    std::vector<char> page(512);
    for (PageId id = 0; id < 8; ++id) {
      std::fill(page.begin(), page.end(), static_cast<char>('a' + id));
      if (!disk->WriteRun(id, 1, page.data()).ok()) return nullptr;
    }
    return disk;
  }

  /// One submit/complete round against `disk` from the calling thread:
  /// four pages through the async pair into an aligned staging buffer,
  /// byte-checked. Returns false on any failure (EXPECTs fire too).
  static bool SubmitRound(DirectVolume* disk, AlignedBuffer* staging) {
    const uint32_t page = disk->page_size();
    if (!staging->Reserve(4 * page,
                          std::max<size_t>(4096, disk->io_buffer_alignment())))
      return false;
    const std::vector<PageId> ids = {5, 1, 6, 2};
    std::vector<char*> outs;
    for (size_t i = 0; i < ids.size(); ++i) {
      outs.push_back(staging->data() + i * page);
    }
    auto ticket_or = disk->SubmitReadChained(ids, outs);
    EXPECT_TRUE(ticket_or.ok()) << ticket_or.status().ToString();
    if (!ticket_or.ok()) return false;
    Status done = disk->CompleteRead(ticket_or.value());
    EXPECT_TRUE(done.ok()) << done.ToString();
    if (!done.ok()) return false;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (staging->data()[i * page] != static_cast<char>('a' + ids[i]) ||
          staging->data()[(i + 1) * page - 1] !=
              static_cast<char>('a' + ids[i])) {
        ADD_FAILURE() << "byte mismatch on page " << ids[i];
        return false;
      }
    }
    return true;
  }

  std::string dir_;
};

// The teardown satellite's core scenario: worker threads live across
// several volume generations. Each cycle the main thread opens a fresh
// volume, the workers submit through their (now stale, serial-mismatched)
// thread-local slots — which must be swept and re-pointed, never reused —
// and the main thread destroys the volume while the workers are parked
// but very much alive.
TEST_F(DirectRingMtTest, ThreadsOutliveVolumesAcrossOpenCloseCycles) {
  constexpr int kThreads = 4;
  constexpr int kCycles = 3;

  std::mutex mu;
  std::condition_variable cv;
  DirectVolume* current = nullptr;  // guarded by mu
  int generation = 0;               // guarded by mu
  int done = 0;                     // guarded by mu
  std::atomic<int> failures{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      AlignedBuffer staging;
      for (int g = 1; g <= kCycles; ++g) {
        DirectVolume* disk = nullptr;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return generation >= g; });
          disk = current;
        }
        if (disk == nullptr || !SubmitRound(disk, &staging)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          ++done;
        }
        cv.notify_all();
      }
    });
  }

  for (int g = 1; g <= kCycles; ++g) {
    auto disk = OpenSeeded();
    ASSERT_NE(disk, nullptr) << "cycle " << g;
    {
      std::lock_guard<std::mutex> lock(mu);
      current = disk.get();
      generation = g;
      done = 0;
    }
    cv.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done == kThreads; });
      current = nullptr;
    }
    // The workers are idle but alive; destroying the volume here must
    // close their rings out from under their thread-local slots.
    disk.reset();
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

// Every ring fd (and extent fd, and SQ/CQ mmap) handed out during a cycle
// must be gone when the volume closes — across several cycles, with
// multiple submitting threads per cycle, the process fd table returns to
// its starting size.
TEST_F(DirectRingMtTest, OpenSubmitCloseCyclesLeakNoFds) {
  // Warm one full cycle first: lazily-created process state (glibc
  // internals, gtest artifacts) must not count against the meter.
  {
    auto disk = OpenSeeded();
    ASSERT_NE(disk, nullptr);
    AlignedBuffer staging;
    ASSERT_TRUE(SubmitRound(disk.get(), &staging));
  }
  const size_t fds_before = OpenFdCount();
  for (int cycle = 0; cycle < 5; ++cycle) {
    auto disk = OpenSeeded();
    ASSERT_NE(disk, nullptr) << "cycle " << cycle;
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([&] {
        AlignedBuffer staging;
        for (int round = 0; round < 4; ++round) {
          SubmitRound(disk.get(), &staging);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  EXPECT_EQ(OpenFdCount(), fds_before);
}

// The prefetcher's pattern: one thread keeps several batches in flight and
// completes them oldest-first. Tickets are FIFO per thread; each batch
// lands in its own staging area and every byte must be right.
TEST_F(DirectRingMtTest, MultipleOutstandingTicketsCompleteFifo) {
  auto disk = OpenSeeded();
  ASSERT_NE(disk, nullptr);
  const uint32_t page = disk->page_size();
  constexpr size_t kBatches = 3;
  const std::vector<std::vector<PageId>> batches = {
      {0, 3}, {7, 4}, {1, 6}};

  AlignedBuffer staging;
  ASSERT_TRUE(staging.Reserve(
      kBatches * 2 * page,
      std::max<size_t>(4096, disk->io_buffer_alignment())));
  std::vector<uint64_t> tickets;
  for (size_t b = 0; b < kBatches; ++b) {
    std::vector<char*> outs = {staging.data() + (2 * b) * page,
                               staging.data() + (2 * b + 1) * page};
    auto ticket_or = disk->SubmitReadChained(batches[b], outs);
    ASSERT_TRUE(ticket_or.ok()) << ticket_or.status().ToString();
    tickets.push_back(ticket_or.value());
  }
  for (size_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(disk->CompleteRead(tickets[b]).ok()) << "batch " << b;
    for (size_t i = 0; i < 2; ++i) {
      const char want = static_cast<char>('a' + batches[b][i]);
      EXPECT_EQ(staging.data()[(2 * b + i) * page], want);
      EXPECT_EQ(staging.data()[(2 * b + i + 1) * page - 1], want);
    }
  }
}

// kPerThread: the registry grows one ring per distinct submitting thread,
// never more, and the accessors describe the effective configuration.
TEST_F(DirectRingMtTest, PerThreadModeGrowsOneRingPerThread) {
  auto disk = OpenSeeded();
  ASSERT_NE(disk, nullptr);
  if (!disk->io_uring_active()) {
    GTEST_SKIP() << "kernel has no usable io_uring; ring accounting moot";
  }
  EXPECT_EQ(disk->ring_mode(), RingMode::kPerThread);
  EXPECT_FALSE(disk->sqpoll_active());

  // Main thread has submitted (seeding writes) — its ring exists.
  const size_t base = disk->ring_count();
  EXPECT_GE(base, 1u);
  EXPECT_LE(base, 2u);  // at most: main + Open's probe thread (same thread)

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      AlignedBuffer staging;
      for (int round = 0; round < 3; ++round) {
        SubmitRound(disk.get(), &staging);
      }
    });
  }
  for (auto& w : workers) w.join();
  // Each worker gets its own ring, created once and kept across rounds.
  EXPECT_GE(disk->ring_count(), base);
  EXPECT_LE(disk->ring_count(), base + kThreads);

  // Per-ring registration state for the calling thread: with both
  // registrations requested, the fd table registration is expected on any
  // kernel that granted the ring at all; fixed buffers additionally need a
  // registered region (none here) so the accessor just must not lie.
  const bool files = disk->registered_files_active();
  const bool buffers = disk->registered_buffers_active();
  (void)files;
  EXPECT_FALSE(buffers);  // nothing RegisterIoMemory'd in this test
}

// registered_buffers_active flips on for a thread whose ring covers a
// registered region, and registered reads come back byte-identical.
TEST_F(DirectRingMtTest, RegisteredBufferStateFollowsRegistration) {
  auto disk = OpenSeeded();
  ASSERT_NE(disk, nullptr);
  if (!disk->io_uring_active()) {
    GTEST_SKIP() << "kernel has no usable io_uring";
  }
  const uint32_t page = disk->page_size();
  AlignedBuffer arena;
  ASSERT_TRUE(arena.Reserve(
      4 * page, std::max<size_t>(4096, disk->io_buffer_alignment())));
  disk->RegisterIoMemory(arena.data(), 4 * page);

  std::vector<char*> outs = {arena.data(), arena.data() + page};
  auto ticket_or = disk->SubmitReadChained({2, 7}, outs);
  ASSERT_TRUE(ticket_or.ok());
  ASSERT_TRUE(disk->CompleteRead(ticket_or.value()).ok());
  EXPECT_EQ(arena.data()[0], 'c');
  EXPECT_EQ(arena.data()[page], 'h');
  // The registration may still be refused (RLIMIT_MEMLOCK); the accessor
  // reports the truth either way, and bytes were right above regardless.
  if (disk->registered_buffers_active()) {
    SUCCEED() << "fixed buffers in effect";
  }
  disk->UnregisterIoMemory(arena.data());
  // After unregistration the ring resyncs before its next idle submission.
  ASSERT_TRUE(disk->ReadRun(0, 1, arena.data()).ok());
  EXPECT_EQ(arena.data()[0], 'a');
  EXPECT_FALSE(disk->registered_buffers_active());
}

// The pre-rework arrangement survives as kShared: one ring, mutex-
// serialized submission. Concurrent submitters must still get the right
// bytes, and the registry must hold at most that one ring.
TEST_F(DirectRingMtTest, SharedModeSerializesOneRing) {
  DirectVolumeOptions ring;
  ring.ring_mode = RingMode::kShared;
  auto disk = OpenSeeded(ring);
  ASSERT_NE(disk, nullptr);
  if (!disk->io_uring_active()) {
    GTEST_SKIP() << "kernel has no usable io_uring";
  }
  EXPECT_EQ(disk->ring_mode(), RingMode::kShared);
  EXPECT_FALSE(disk->sqpoll_active());
  EXPECT_LE(disk->ring_count(), 1u);

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      AlignedBuffer staging;
      for (int round = 0; round < 8; ++round) {
        if (!SubmitRound(disk.get(), &staging)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(disk->ring_count(), 1u);
}

// kSqpoll: either the kernel grants SQPOLL (sqpoll_active, one ring,
// submission without syscalls) or the mode documents its own downgrade to
// kPerThread. Both outcomes must serve correct bytes under concurrency.
TEST_F(DirectRingMtTest, SqpollModeRoundTripsOrDowngrades) {
  DirectVolumeOptions ring;
  ring.ring_mode = RingMode::kSqpoll;
  ring.sqpoll_idle_ms = 50;
  auto disk = OpenSeeded(ring);
  ASSERT_NE(disk, nullptr);
  if (!disk->io_uring_active()) {
    GTEST_SKIP() << "kernel has no usable io_uring";
  }
  if (disk->sqpoll_active()) {
    EXPECT_EQ(disk->ring_mode(), RingMode::kSqpoll);
    EXPECT_LE(disk->ring_count(), 1u);
  } else {
    EXPECT_EQ(disk->ring_mode(), RingMode::kPerThread);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      AlignedBuffer staging;
      for (int round = 0; round < 8; ++round) {
        if (!SubmitRound(disk.get(), &staging)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

// Full-pressure TSan target: concurrent readers, a concurrent writer, and
// RegisterIoMemory/UnregisterIoMemory churn against live rings — every
// shared structure the rework added (registry, region list, TLS sweep) is
// exercised under contention at once.
TEST_F(DirectRingMtTest, ConcurrentSubmitWriteRegisterStress) {
  auto disk = OpenSeeded();
  ASSERT_NE(disk, nullptr);
  const uint32_t page = disk->page_size();
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      AlignedBuffer staging;
      while (!stop.load(std::memory_order_relaxed)) {
        // Read only pages the writer never touches (0..3 vs writer's 4).
        if (!staging.Reserve(
                2 * page,
                std::max<size_t>(4096, disk->io_buffer_alignment()))) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        auto ticket_or = disk->SubmitReadChained(
            {0, 3}, {staging.data(), staging.data() + page});
        if (!ticket_or.ok() || !disk->CompleteRead(ticket_or.value()).ok() ||
            staging.data()[0] != 'a' || staging.data()[page] != 'd') {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread writer([&] {
    std::vector<char> buf(page, 'W');
    AlignedBuffer arena;
    arena.Reserve(page, std::max<size_t>(4096, disk->io_buffer_alignment()));
    for (int round = 0; round < 40; ++round) {
      if (!disk->WriteRun(4, 1, buf.data()).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      // Registration churn races against the readers' submissions.
      disk->RegisterIoMemory(arena.data(), page);
      disk->UnregisterIoMemory(arena.data());
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace starfish
