// MmapVolume-specific behaviour: file layout, persistence, reopen.
// Interface conformance (metering, extent boundaries, zero-copy) is covered
// for this backend by the parameterized suite in volume_test.cc.

#include "disk/mmap_volume.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

namespace starfish {
namespace {

class MmapVolumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_mmap_test_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  DiskOptions TinyExtents() {
    DiskOptions o;
    o.page_size = 256;
    o.extent_bytes = 1024;  // 4 pages per extent
    return o;
  }

  std::string dir_;
};

TEST_F(MmapVolumeTest, CreatesOneFilePerExtent) {
  auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
  ASSERT_TRUE(disk->AllocateRun(9).ok());  // 3 extents
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/extent_000000"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/extent_000001"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/extent_000002"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/extent_000003"));
  EXPECT_EQ(std::filesystem::file_size(dir_ + "/extent_000000"), 1024u);
}

TEST_F(MmapVolumeTest, WriteCloseReopenRoundTrips) {
  const uint32_t page_size = TinyExtents().page_size;
  std::vector<char> data(11 * page_size);
  for (uint32_t i = 0; i < 11; ++i) {
    std::fill_n(data.begin() + i * page_size, page_size,
                static_cast<char>('a' + i));
  }
  PageId first;
  {
    auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
    first = disk->AllocateRun(11).value();  // crosses extent boundaries
    ASSERT_TRUE(disk->WriteRun(first, 11, data.data()).ok());
    ASSERT_TRUE(disk->Free(first + 3).ok());
  }  // destructor unmaps and writes volume.meta

  auto disk = MmapVolume::Open(dir_).value();  // geometry comes from meta
  EXPECT_EQ(disk->page_size(), 256u);
  EXPECT_EQ(disk->pages_per_extent(), 4u);
  EXPECT_EQ(disk->page_count(), 11u);
  EXPECT_EQ(disk->live_page_count(), 10u);  // the Free survived too
  std::vector<char> buf(11 * page_size);
  ASSERT_TRUE(disk->ReadRun(first, 11, buf.data()).ok());
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), buf.size()), 0);
  // Double-free of the persisted free is still rejected.
  EXPECT_TRUE(disk->Free(first + 3).IsInvalidArgument());
  // Allocation continues with fresh ids, never reusing persisted ones.
  EXPECT_EQ(disk->Allocate().value(), 11u);
}

TEST_F(MmapVolumeTest, SyncCheckpointsWithoutClose) {
  auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
  const PageId id = disk->AllocateRun(2).value();
  std::vector<char> data(disk->page_size(), 'S');
  ASSERT_TRUE(disk->WriteRun(id, 1, data.data()).ok());
  ASSERT_TRUE(disk->Sync().ok());
  // The meta written by Sync already describes both pages.
  auto reopened = MmapVolume::Open(dir_).value();
  EXPECT_EQ(reopened->page_count(), 2u);
  std::vector<char> buf(reopened->page_size());
  ASSERT_TRUE(reopened->ReadRun(id, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'S');
}

TEST_F(MmapVolumeTest, ReopenedGeometryIgnoresPassedOptions) {
  { auto disk = MmapVolume::Open(dir_, TinyExtents()).value(); }
  DiskOptions other;
  other.page_size = 2048;
  auto disk = MmapVolume::Open(dir_, other).value();
  EXPECT_EQ(disk->page_size(), 256u);  // recorded geometry wins
}

TEST_F(MmapVolumeTest, EmptyDirRejected) {
  EXPECT_FALSE(MmapVolume::Open("").ok());
}

TEST_F(MmapVolumeTest, MissingExtentFileIsCorruption) {
  {
    auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
    ASSERT_TRUE(disk->AllocateRun(9).ok());
  }
  std::filesystem::remove(dir_ + "/extent_000001");
  EXPECT_FALSE(MmapVolume::Open(dir_).ok());
}

TEST_F(MmapVolumeTest, StatsAreNotPersisted) {
  {
    auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
    ASSERT_TRUE(disk->Allocate().ok());
    std::vector<char> buf(disk->page_size());
    ASSERT_TRUE(disk->ReadRun(0, 1, buf.data()).ok());
    EXPECT_EQ(disk->stats().read_calls, 1u);
  }
  auto disk = MmapVolume::Open(dir_).value();
  EXPECT_EQ(disk->stats().TotalCalls(), 0u);  // counters start fresh
}

}  // namespace
}  // namespace starfish
