// MmapVolume-specific behaviour: file layout, persistence, reopen.
// Interface conformance (metering, extent boundaries, zero-copy) is covered
// for this backend by the parameterized suite in volume_test.cc.

#include "disk/mmap_volume.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "disk/volume_meta.h"

namespace starfish {
namespace {

class MmapVolumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_mmap_test_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  DiskOptions TinyExtents() {
    DiskOptions o;
    o.page_size = 256;
    o.extent_bytes = 1024;  // 4 pages per extent
    return o;
  }

  std::string dir_;
};

TEST_F(MmapVolumeTest, CreatesOneFilePerExtent) {
  auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
  ASSERT_TRUE(disk->AllocateRun(9).ok());  // 3 extents
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/extent_000000"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/extent_000001"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/extent_000002"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/extent_000003"));
  EXPECT_EQ(std::filesystem::file_size(dir_ + "/extent_000000"), 1024u);
}

TEST_F(MmapVolumeTest, WriteCloseReopenRoundTrips) {
  const uint32_t page_size = TinyExtents().page_size;
  std::vector<char> data(11 * page_size);
  for (uint32_t i = 0; i < 11; ++i) {
    std::fill_n(data.begin() + i * page_size, page_size,
                static_cast<char>('a' + i));
  }
  PageId first;
  {
    auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
    first = disk->AllocateRun(11).value();  // crosses extent boundaries
    ASSERT_TRUE(disk->WriteRun(first, 11, data.data()).ok());
    ASSERT_TRUE(disk->Free(first + 3).ok());
  }  // destructor unmaps and writes volume.meta

  auto disk = MmapVolume::Open(dir_).value();  // geometry comes from meta
  EXPECT_EQ(disk->page_size(), 256u);
  EXPECT_EQ(disk->pages_per_extent(), 4u);
  EXPECT_EQ(disk->page_count(), 11u);
  EXPECT_EQ(disk->live_page_count(), 10u);  // the Free survived too
  std::vector<char> buf(11 * page_size);
  ASSERT_TRUE(disk->ReadRun(first, 11, buf.data()).ok());
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), buf.size()), 0);
  // Double-free of the persisted free is still rejected.
  EXPECT_TRUE(disk->Free(first + 3).IsInvalidArgument());
  // Allocation continues with fresh ids, never reusing persisted ones.
  EXPECT_EQ(disk->Allocate().value(), 11u);
}

TEST_F(MmapVolumeTest, SyncCheckpointsWithoutClose) {
  auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
  const PageId id = disk->AllocateRun(2).value();
  std::vector<char> data(disk->page_size(), 'S');
  ASSERT_TRUE(disk->WriteRun(id, 1, data.data()).ok());
  ASSERT_TRUE(disk->Sync().ok());
  // The meta written by Sync already describes both pages.
  auto reopened = MmapVolume::Open(dir_).value();
  EXPECT_EQ(reopened->page_count(), 2u);
  std::vector<char> buf(reopened->page_size());
  ASSERT_TRUE(reopened->ReadRun(id, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'S');
}

TEST_F(MmapVolumeTest, ReopenedGeometryIgnoresPassedOptions) {
  { auto disk = MmapVolume::Open(dir_, TinyExtents()).value(); }
  DiskOptions other;
  other.page_size = 2048;
  auto disk = MmapVolume::Open(dir_, other).value();
  EXPECT_EQ(disk->page_size(), 256u);  // recorded geometry wins
}

TEST_F(MmapVolumeTest, EmptyDirRejected) {
  EXPECT_FALSE(MmapVolume::Open("").ok());
}

TEST_F(MmapVolumeTest, MissingExtentFileIsCorruption) {
  {
    auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
    ASSERT_TRUE(disk->AllocateRun(9).ok());
  }
  std::filesystem::remove(dir_ + "/extent_000001");
  EXPECT_FALSE(MmapVolume::Open(dir_).ok());
}

// --- allocator journal (volume.meta v2) -----------------------------------

TEST_F(MmapVolumeTest, SyncAppendsDeltasInsteadOfRewriting) {
  auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
  ASSERT_TRUE(disk->AllocateRun(2).ok());
  ASSERT_TRUE(disk->Sync().ok());
  const auto size_after_first = std::filesystem::file_size(dir_ + "/volume.meta");
  ASSERT_TRUE(disk->AllocateRun(2).ok());
  ASSERT_TRUE(disk->Free(2).ok());
  ASSERT_TRUE(disk->Sync().ok());
  // The journal grew by one small delta record; nothing was rewritten.
  const auto size_after_second =
      std::filesystem::file_size(dir_ + "/volume.meta");
  EXPECT_GT(size_after_second, size_after_first);
  EXPECT_LE(size_after_second, size_after_first + 64);
  // A no-change Sync appends nothing.
  ASSERT_TRUE(disk->Sync().ok());
  EXPECT_EQ(std::filesystem::file_size(dir_ + "/volume.meta"),
            size_after_second);
  // Replay sees the full state.
  VolumeMetaReplay replay;
  ASSERT_TRUE(ReplayVolumeMeta(dir_ + "/volume.meta", &replay).ok());
  EXPECT_EQ(replay.state.page_count, 4u);
  EXPECT_TRUE(replay.state.freed[2]);
  EXPECT_FALSE(replay.torn_tail);
}

TEST_F(MmapVolumeTest, TornJournalTailRecoversLastDurableState) {
  {
    auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
    ASSERT_TRUE(disk->AllocateRun(3).ok());
    ASSERT_TRUE(disk->Sync().ok());
    ASSERT_TRUE(disk->AllocateRun(2).ok());
    ASSERT_TRUE(disk->Free(0).ok());
    ASSERT_TRUE(disk->Sync().ok());  // appends the 5-page / freed-0 delta
  }
  // Tear the tail record mid-append, as a crash during fwrite would.
  const auto full = std::filesystem::file_size(dir_ + "/volume.meta");
  std::filesystem::resize_file(dir_ + "/volume.meta", full - 5);

  VolumeMetaReplay replay;
  ASSERT_TRUE(ReplayVolumeMeta(dir_ + "/volume.meta", &replay).ok());
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.state.page_count, 3u);  // the first durable state
  EXPECT_EQ(replay.state.live_pages(), 3u);

  // Reopen recovers it, compacts the journal, and keeps appending cleanly.
  {
    auto disk = MmapVolume::Open(dir_).value();
    EXPECT_EQ(disk->page_count(), 3u);
    EXPECT_EQ(disk->live_page_count(), 3u);
    ASSERT_TRUE(disk->Allocate().ok());
    ASSERT_TRUE(disk->Sync().ok());
  }
  ASSERT_TRUE(ReplayVolumeMeta(dir_ + "/volume.meta", &replay).ok());
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.state.page_count, 4u);
}

TEST_F(MmapVolumeTest, CorruptJournalRecordDropsOnlyTheTail) {
  {
    auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
    ASSERT_TRUE(disk->AllocateRun(2).ok());
    ASSERT_TRUE(disk->Sync().ok());
    ASSERT_TRUE(disk->AllocateRun(1).ok());
    ASSERT_TRUE(disk->Sync().ok());
  }
  // Flip one byte inside the LAST record: its checksum must reject it.
  const auto size = std::filesystem::file_size(dir_ + "/volume.meta");
  std::FILE* f = std::fopen((dir_ + "/volume.meta").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(size) - 6, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_EQ(std::fseek(f, static_cast<long>(size) - 6, SEEK_SET), 0);
  std::fputc(c ^ 0x5A, f);
  std::fclose(f);

  VolumeMetaReplay replay;
  ASSERT_TRUE(ReplayVolumeMeta(dir_ + "/volume.meta", &replay).ok());
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.state.page_count, 2u);  // second delta discarded
}

TEST_F(MmapVolumeTest, FailedJournalAppendHealsViaCompactedRewrite) {
  auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
  ASSERT_TRUE(disk->AllocateRun(2).ok());
  ASSERT_TRUE(disk->Sync().ok());
  // Block the journal: a directory squatting on its name fails both the
  // append and the atomic rewrite (running as root, chmod is no barrier).
  std::filesystem::remove(dir_ + "/volume.meta");
  std::filesystem::create_directory(dir_ + "/volume.meta");
  ASSERT_TRUE(disk->AllocateRun(2).ok());
  EXPECT_FALSE(disk->Sync().ok());
  // Unblock. Appending now would be unsafe (the tail may be torn), so the
  // next checkpoint must atomically rewrite the compacted snapshot.
  std::filesystem::remove(dir_ + "/volume.meta");
  ASSERT_TRUE(disk->Sync().ok());
  VolumeMetaReplay replay;
  ASSERT_TRUE(ReplayVolumeMeta(dir_ + "/volume.meta", &replay).ok());
  EXPECT_EQ(replay.records, 1u);  // one snapshot, no blind append
  EXPECT_EQ(replay.state.page_count, 4u);
  EXPECT_FALSE(replay.torn_tail);
}

TEST_F(MmapVolumeTest, CorruptJournalHeaderIsCorruptionNotFreshVolume) {
  { auto disk = MmapVolume::Open(dir_, TinyExtents()).value(); }
  std::FILE* f = std::fopen((dir_ + "/volume.meta").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fputc('X', f);  // clobber the magic
  std::fclose(f);
  EXPECT_TRUE(MmapVolume::Open(dir_).status().IsCorruption());
}

// --- reopen hardening after a simulated crash -----------------------------

TEST_F(MmapVolumeTest, ReopenRemovesExtentFilesBeyondDurablePageCount) {
  {
    auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
    ASSERT_TRUE(disk->AllocateRun(4).ok());  // exactly extent 0
    ASSERT_TRUE(disk->Sync().ok());
  }
  // A crashed run allocated further extents (the files exist, full of that
  // run's bytes) but never journaled the allocation.
  for (const char* name : {"/extent_000001", "/extent_000002"}) {
    std::FILE* f = std::fopen((dir_ + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::vector<char> garbage(1024, 'G');
    std::fwrite(garbage.data(), 1, garbage.size(), f);
    std::fclose(f);
  }

  auto disk = MmapVolume::Open(dir_).value();
  EXPECT_EQ(disk->page_count(), 4u);
  // The orphan extent files are gone; re-allocating their range hands out
  // zero-filled pages, not the crashed run's bytes.
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/extent_000001"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/extent_000002"));
  ASSERT_TRUE(disk->AllocateRun(8).ok());
  std::vector<char> buf(disk->page_size());
  ASSERT_TRUE(disk->ReadRun(5, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');
}

TEST_F(MmapVolumeTest, ReopenZeroesUnallocatedTailOfLastExtent) {
  {
    auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
    ASSERT_TRUE(disk->AllocateRun(6).ok());  // extent 1 half-used
    std::vector<char> data(disk->page_size(), 'Z');
    ASSERT_TRUE(disk->WriteRun(5, 1, data.data()).ok());
    ASSERT_TRUE(disk->Sync().ok());
    // Crash-era write into page 6 (allocated but never journaled): poke the
    // extent file directly, as a dying kernel flushing page cache might.
  }
  {
    std::FILE* f = std::fopen((dir_ + "/extent_000001").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 2 * 256, SEEK_SET);  // page 6 = third page of extent 1
    std::fputc('!', f);
    std::fclose(f);
  }
  auto disk = MmapVolume::Open(dir_).value();
  EXPECT_EQ(disk->page_count(), 6u);
  ASSERT_TRUE(disk->Allocate().ok());  // hands out page 6 again
  std::vector<char> buf(disk->page_size());
  ASSERT_TRUE(disk->ReadRun(6, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');  // the crashed run's byte is gone
  ASSERT_TRUE(disk->ReadRun(5, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'Z');  // durable pages untouched
}

TEST_F(MmapVolumeTest, ReconcileLiveRevivesAndReclaims) {
  auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
  ASSERT_TRUE(disk->AllocateRun(6).ok());
  ASSERT_TRUE(disk->Free(1).ok());
  ASSERT_TRUE(disk->Free(4).ok());
  EXPECT_EQ(disk->live_page_count(), 4u);
  // The committed catalog says: 0, 1, 3 are live (1 was freed by an
  // uncommitted checkpoint — revive it; 2 and 5 are orphans — reclaim).
  ASSERT_TRUE(disk->ReconcileLive({0, 1, 3, 3}).ok());  // dupes tolerated
  EXPECT_EQ(disk->live_page_count(), 3u);
  EXPECT_TRUE(disk->Free(1).ok());               // live again -> freeable
  EXPECT_TRUE(disk->Free(2).IsInvalidArgument()); // already reclaimed
  EXPECT_TRUE(disk->ReconcileLive({99}).IsInvalidArgument());
  // Sync after reconcile folds the journal into a snapshot (deltas cannot
  // express un-freeing) and reopen agrees.
  ASSERT_TRUE(disk->ReconcileLive({0, 3}).ok());
  ASSERT_TRUE(disk->Sync().ok());
  VolumeMetaReplay replay;
  ASSERT_TRUE(ReplayVolumeMeta(dir_ + "/volume.meta", &replay).ok());
  EXPECT_EQ(replay.state.page_count, 6u);
  EXPECT_EQ(replay.state.live_pages(), 2u);
}

TEST_F(MmapVolumeTest, StatsAreNotPersisted) {
  {
    auto disk = MmapVolume::Open(dir_, TinyExtents()).value();
    ASSERT_TRUE(disk->Allocate().ok());
    std::vector<char> buf(disk->page_size());
    ASSERT_TRUE(disk->ReadRun(0, 1, buf.data()).ok());
    EXPECT_EQ(disk->stats().read_calls, 1u);
  }
  auto disk = MmapVolume::Open(dir_).value();
  EXPECT_EQ(disk->stats().TotalCalls(), 0u);  // counters start fresh
}

}  // namespace
}  // namespace starfish
