// DirectVolume-specific behaviour: O_DIRECT persistence and reopen, the
// shared on-disk format with MmapVolume, device-alignment rejection, the
// io_uring-unavailable fallback, bounce-buffer correctness for misaligned
// caller buffers, and the end-to-end store + sf_fsck path over the direct
// backend.
//
// Every test skips (rather than fails) on filesystems without O_DIRECT
// support — tmpfs and overlayfs, common in containers — via the same
// runtime probe CreateVolume users are documented to rely on.

#include "disk/direct_volume.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "../support/direct_probe.h"
#include "core/complex_object_store.h"
#include "disk/mmap_volume.h"
#include "disk/volume_meta.h"
#include "tools/fsck.h"

namespace starfish {
namespace {

bool DirectSupportedHere() {
  static const bool supported = test::DirectIoSupportedHere("direct_suite");
  return supported;
}

class DirectVolumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!DirectSupportedHere()) {
      GTEST_SKIP() << "filesystem has no O_DIRECT support";
    }
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_direct_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Small geometry: 512-byte pages, 4 pages per extent.
  DiskOptions Tiny() const {
    DiskOptions o;
    o.page_size = 512;
    o.extent_bytes = 2048;
    return o;
  }

  std::string dir_;
};

TEST_F(DirectVolumeTest, PersistsAcrossReopen) {
  std::vector<char> page(512);
  {
    auto disk_or = DirectVolume::Open(dir_, Tiny());
    ASSERT_TRUE(disk_or.ok()) << disk_or.status().ToString();
    auto disk = std::move(disk_or).value();
    ASSERT_TRUE(disk->AllocateRun(9).ok());  // three extents
    for (PageId id = 0; id < 9; ++id) {
      std::fill(page.begin(), page.end(), static_cast<char>('a' + id));
      ASSERT_TRUE(disk->WriteRun(id, 1, page.data()).ok());
    }
    ASSERT_TRUE(disk->Free(4).ok());
    ASSERT_TRUE(disk->Sync().ok());
  }
  auto disk_or = DirectVolume::Open(dir_, Tiny());
  ASSERT_TRUE(disk_or.ok()) << disk_or.status().ToString();
  auto disk = std::move(disk_or).value();
  EXPECT_EQ(disk->page_count(), 9u);
  EXPECT_EQ(disk->live_page_count(), 8u);
  for (PageId id = 0; id < 9; ++id) {
    ASSERT_TRUE(disk->ReadRun(id, 1, page.data()).ok());
    EXPECT_EQ(page[0], static_cast<char>('a' + id)) << "page " << id;
    EXPECT_EQ(page[511], static_cast<char>('a' + id)) << "page " << id;
  }
  EXPECT_TRUE(disk->Free(4).IsInvalidArgument());  // still freed
}

TEST_F(DirectVolumeTest, RecordedGeometryWinsOnReopen) {
  {
    auto disk_or = DirectVolume::Open(dir_, Tiny());
    ASSERT_TRUE(disk_or.ok());
    ASSERT_TRUE(disk_or.value()->AllocateRun(2).ok());
    ASSERT_TRUE(disk_or.value()->Sync().ok());
  }
  DiskOptions other;
  other.page_size = 4096;
  auto disk_or = DirectVolume::Open(dir_, other);
  ASSERT_TRUE(disk_or.ok()) << disk_or.status().ToString();
  EXPECT_EQ(disk_or.value()->page_size(), 512u);
  EXPECT_EQ(disk_or.value()->pages_per_extent(), 4u);
}

TEST_F(DirectVolumeTest, SharesOnDiskFormatWithMmap) {
  std::vector<char> page(512);
  // Write with the mmap backend...
  {
    auto mmap_or = MmapVolume::Open(dir_, Tiny());
    ASSERT_TRUE(mmap_or.ok());
    auto disk = std::move(mmap_or).value();
    ASSERT_TRUE(disk->AllocateRun(6).ok());
    std::fill(page.begin(), page.end(), 'M');
    ASSERT_TRUE(disk->WriteRun(5, 1, page.data()).ok());
    ASSERT_TRUE(disk->Sync().ok());
  }
  // ...reopen with the direct backend, read, write more...
  {
    auto direct_or = DirectVolume::Open(dir_, Tiny());
    ASSERT_TRUE(direct_or.ok()) << direct_or.status().ToString();
    auto disk = std::move(direct_or).value();
    EXPECT_EQ(disk->page_count(), 6u);
    ASSERT_TRUE(disk->ReadRun(5, 1, page.data()).ok());
    EXPECT_EQ(page[0], 'M');
    std::fill(page.begin(), page.end(), 'D');
    ASSERT_TRUE(disk->WriteRun(0, 1, page.data()).ok());
    ASSERT_TRUE(disk->Sync().ok());
  }
  // ...and reopen with mmap again: both writes visible.
  auto mmap_or = MmapVolume::Open(dir_, Tiny());
  ASSERT_TRUE(mmap_or.ok());
  ASSERT_TRUE(mmap_or.value()->ReadRun(0, 1, page.data()).ok());
  EXPECT_EQ(page[0], 'D');
  ASSERT_TRUE(mmap_or.value()->ReadRun(5, 1, page.data()).ok());
  EXPECT_EQ(page[0], 'M');
}

// The alignment-violation error: a page size no device can DMA (not a
// multiple of the 512-byte sector) is rejected at Open with a clear error,
// not discovered as EINVAL at the first transfer.
TEST_F(DirectVolumeTest, RejectsNonSectorPageSize) {
  DiskOptions bad;
  bad.page_size = 256;
  auto disk_or = DirectVolume::Open(dir_, bad);
  ASSERT_FALSE(disk_or.ok());
  EXPECT_TRUE(disk_or.status().IsInvalidArgument())
      << disk_or.status().ToString();
}

// Misaligned caller buffers must round-trip through the internal bounce
// path bit-for-bit (the buffer pool aligns its frames, but nothing forces
// arbitrary callers to).
TEST_F(DirectVolumeTest, MisalignedCallerBuffersBounce) {
  auto disk_or = DirectVolume::Open(dir_, Tiny());
  ASSERT_TRUE(disk_or.ok());
  auto disk = std::move(disk_or).value();
  ASSERT_TRUE(disk->AllocateRun(8).ok());

  std::vector<char> raw(6 * 512 + 1);
  char* misaligned = raw.data() + 1;  // definitely not sector-aligned
  for (int i = 0; i < 5 * 512; ++i) {
    misaligned[i] = static_cast<char>('A' + i % 23);
  }
  ASSERT_TRUE(disk->WriteRun(2, 5, misaligned).ok());  // crosses an extent

  std::vector<char> raw2(6 * 512 + 1);
  char* misaligned2 = raw2.data() + 1;
  ASSERT_TRUE(disk->ReadRun(2, 5, misaligned2).ok());
  EXPECT_EQ(std::memcmp(misaligned, misaligned2, 5 * 512), 0);

  // Chained ops with a mix of aligned and misaligned buffers.
  std::vector<char> aligned(512);
  ASSERT_TRUE(
      disk->ReadChained({3, 6}, {misaligned2, aligned.data()}).ok());
  EXPECT_EQ(std::memcmp(misaligned2, misaligned + 512, 512), 0);
}

// Forcing the ring off must be observable and produce identical bytes and
// identical meter readings to the default path — the fallback is a
// first-class citizen, not a degraded mode.
TEST_F(DirectVolumeTest, IoUringUnavailableFallbackMatches) {
  const std::string dir_uring = dir_ + "_uring";
  std::filesystem::remove_all(dir_uring);

  DirectVolumeOptions no_uring;
  no_uring.use_io_uring = false;
  auto a_or = DirectVolume::Open(dir_, Tiny(), no_uring);
  ASSERT_TRUE(a_or.ok());
  auto a = std::move(a_or).value();
  EXPECT_FALSE(a->io_uring_active());

  auto b_or = DirectVolume::Open(dir_uring, Tiny());  // ring if the kernel allows
  ASSERT_TRUE(b_or.ok());
  auto b = std::move(b_or).value();

  std::vector<char> page(512), back_a(7 * 512), back_b(7 * 512);
  for (DirectVolume* disk : {a.get(), b.get()}) {
    ASSERT_TRUE(disk->AllocateRun(7).ok());
    for (PageId id = 0; id < 7; ++id) {
      std::fill(page.begin(), page.end(), static_cast<char>('0' + id));
      ASSERT_TRUE(disk->WriteRun(id, 1, page.data()).ok());
    }
  }
  ASSERT_TRUE(a->ReadRun(0, 7, back_a.data()).ok());
  ASSERT_TRUE(b->ReadRun(0, 7, back_b.data()).ok());
  EXPECT_EQ(std::memcmp(back_a.data(), back_b.data(), back_a.size()), 0);

  ASSERT_TRUE(a->ReadChained({6, 1, 3}, {back_a.data(),
                                         back_a.data() + 512,
                                         back_a.data() + 1024})
                  .ok());
  ASSERT_TRUE(b->ReadChained({6, 1, 3}, {back_b.data(),
                                         back_b.data() + 512,
                                         back_b.data() + 1024})
                  .ok());
  EXPECT_EQ(std::memcmp(back_a.data(), back_b.data(), 3 * 512), 0);

  // Same call/page accounting regardless of the submission path.
  const IoStats sa = a->stats(), sb = b->stats();
  EXPECT_EQ(sa.read_calls, sb.read_calls);
  EXPECT_EQ(sa.pages_read, sb.pages_read);
  EXPECT_EQ(sa.write_calls, sb.write_calls);
  EXPECT_EQ(sa.pages_written, sb.pages_written);

  std::error_code ec;
  a.reset();
  b.reset();
  std::filesystem::remove_all(dir_uring, ec);
}

// Batches larger than the submission queue must be chunked correctly.
TEST_F(DirectVolumeTest, BatchesLargerThanRingDepth) {
  DirectVolumeOptions tiny_ring;
  tiny_ring.ring_depth = 2;
  auto disk_or = DirectVolume::Open(dir_, Tiny(), tiny_ring);
  ASSERT_TRUE(disk_or.ok());
  auto disk = std::move(disk_or).value();
  const uint32_t n = 21;  // many extents, > 2 ops per call
  ASSERT_TRUE(disk->AllocateRun(n).ok());
  std::vector<char> data(n * 512);
  for (uint32_t i = 0; i < n; ++i) {
    std::fill_n(data.begin() + i * 512, 512, static_cast<char>('a' + i % 26));
  }
  ASSERT_TRUE(disk->WriteRun(0, n, data.data()).ok());
  EXPECT_EQ(disk->stats().write_calls, 1u);
  EXPECT_EQ(disk->stats().pages_written, n);
  std::vector<char> back(n * 512);
  ASSERT_TRUE(disk->ReadRun(0, n, back.data()).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);
}

TEST_F(DirectVolumeTest, StrayExtentFilesRemovedOnFreshOpen) {
  std::filesystem::create_directories(dir_);
  {
    std::ofstream stray(dir_ + "/" + ExtentFileName(0), std::ios::binary);
    stray << std::string(2048, 'x');
  }
  auto disk_or = DirectVolume::Open(dir_, Tiny());
  ASSERT_TRUE(disk_or.ok());
  auto disk = std::move(disk_or).value();
  // The stale bytes must not surface as "fresh" page content.
  ASSERT_TRUE(disk->AllocateRun(4).ok());
  std::vector<char> page(512, 'x');
  ASSERT_TRUE(disk->ReadRun(0, 1, page.data()).ok());
  for (char c : page) ASSERT_EQ(c, '\0');
}

// The full store stack over the direct backend: put, durable checkpoint,
// reopen, read back — and the offline verifier must find the directory
// exactly as clean as an mmap-backed store's (the satellite fix: sf_fsck
// and the example understand the direct backend's files because the two
// persistent backends share one on-disk naming scheme).
TEST_F(DirectVolumeTest, StoreRoundTripAndFsckClean) {
  auto item = SchemaBuilder("Item").AddInt32("K").AddString("S").Build();
  auto doc = SchemaBuilder("Doc")
                 .AddInt32("Id")
                 .AddString("Name")
                 .AddRelation("Items", item)
                 .Build();
  StoreOptions options;
  options.backend = VolumeKind::kDirect;
  options.path = dir_;
  options.page_size = 2048;
  Tuple object{{Value::Int32(7), Value::Str("seven"),
                Value::Relation({Tuple{{Value::Int32(1), Value::Str("one")}},
                                 Tuple{{Value::Int32(2), Value::Str("two")}}})}};
  {
    auto store_or = ComplexObjectStore::Open(doc, options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    EXPECT_TRUE(store->persistent());
    ASSERT_TRUE(store->Put(7, object).ok());
    ASSERT_TRUE(store->Flush().ok());
    EXPECT_EQ(store->catalog_generation(), 1u);
  }
  auto report_or = RunFsck(dir_);
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  EXPECT_TRUE(report_or.value().clean()) << report_or.value().ToString();
  EXPECT_TRUE(report_or.value().warnings.empty())
      << report_or.value().ToString();

  auto store_or = ComplexObjectStore::Open(doc, options);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto got = store_or.value()->Get(7);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), object);
}

// A store written with the mmap backend reopens with the direct backend
// (and vice versa): backend choice is an access-path decision, not a
// format decision.
TEST_F(DirectVolumeTest, StoreWrittenWithMmapReopensWithDirect) {
  auto doc = SchemaBuilder("Doc").AddInt32("Id").AddString("Name").Build();
  Tuple object{{Value::Int32(1), Value::Str("cross-backend")}};
  StoreOptions options;
  options.backend = VolumeKind::kMmap;
  options.path = dir_;
  {
    auto store_or = ComplexObjectStore::Open(doc, options);
    ASSERT_TRUE(store_or.ok());
    ASSERT_TRUE(store_or.value()->Put(1, object).ok());
    ASSERT_TRUE(store_or.value()->Flush().ok());
  }
  options.backend = VolumeKind::kDirect;
  auto store_or = ComplexObjectStore::Open(doc, options);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto got = store_or.value()->GetByKey(1, Projection::All(*doc));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), object);
}

}  // namespace
}  // namespace starfish
