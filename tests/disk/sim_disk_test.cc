#include "disk/sim_disk.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace starfish {
namespace {

std::vector<char> Pattern(uint32_t page_size, char fill) {
  return std::vector<char>(page_size, fill);
}

TEST(SimDiskTest, AllocateGrowsVolume) {
  SimDisk disk;
  EXPECT_EQ(disk.page_count(), 0u);
  const PageId a = disk.Allocate();
  const PageId b = disk.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(disk.page_count(), 2u);
  EXPECT_EQ(disk.live_page_count(), 2u);
}

TEST(SimDiskTest, AllocateRunIsContiguous) {
  SimDisk disk;
  disk.Allocate();
  const PageId first = disk.AllocateRun(5);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(disk.page_count(), 6u);
}

TEST(SimDiskTest, FreshPagesAreZeroFilled) {
  SimDisk disk;
  const PageId id = disk.Allocate();
  std::vector<char> buf(disk.page_size(), 'x');
  ASSERT_TRUE(disk.ReadRun(id, 1, buf.data()).ok());
  for (char c : buf) EXPECT_EQ(c, '\0');
}

TEST(SimDiskTest, WriteReadRoundTrip) {
  SimDisk disk;
  const PageId id = disk.Allocate();
  auto data = Pattern(disk.page_size(), 'A');
  ASSERT_TRUE(disk.WriteRun(id, 1, data.data()).ok());
  std::vector<char> buf(disk.page_size());
  ASSERT_TRUE(disk.ReadRun(id, 1, buf.data()).ok());
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), disk.page_size()), 0);
}

TEST(SimDiskTest, RunCountsOneCallManyPages) {
  SimDisk disk;
  const PageId first = disk.AllocateRun(4);
  std::vector<char> buf(4 * disk.page_size());
  ASSERT_TRUE(disk.ReadRun(first, 4, buf.data()).ok());
  EXPECT_EQ(disk.stats().read_calls, 1u);
  EXPECT_EQ(disk.stats().pages_read, 4u);
  ASSERT_TRUE(disk.WriteRun(first, 4, buf.data()).ok());
  EXPECT_EQ(disk.stats().write_calls, 1u);
  EXPECT_EQ(disk.stats().pages_written, 4u);
}

TEST(SimDiskTest, ChainedIoCountsOneCall) {
  SimDisk disk;
  disk.AllocateRun(10);
  std::vector<char> b0(disk.page_size()), b1(disk.page_size()),
      b2(disk.page_size());
  ASSERT_TRUE(disk.ReadChained({2, 7, 9}, {b0.data(), b1.data(), b2.data()})
                  .ok());
  EXPECT_EQ(disk.stats().read_calls, 1u);
  EXPECT_EQ(disk.stats().pages_read, 3u);
}

TEST(SimDiskTest, ChainedWriteRoundTrip) {
  SimDisk disk;
  disk.AllocateRun(5);
  auto a = Pattern(disk.page_size(), 'a');
  auto b = Pattern(disk.page_size(), 'b');
  ASSERT_TRUE(disk.WriteChained({1, 4}, {a.data(), b.data()}).ok());
  EXPECT_EQ(disk.stats().write_calls, 1u);
  std::vector<char> buf(disk.page_size());
  ASSERT_TRUE(disk.ReadRun(4, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'b');
}

TEST(SimDiskTest, OutOfRangeAccessRejected) {
  SimDisk disk;
  disk.Allocate();
  std::vector<char> buf(disk.page_size());
  EXPECT_TRUE(disk.ReadRun(1, 1, buf.data()).IsOutOfRange());
  EXPECT_TRUE(disk.ReadRun(0, 2, buf.data()).IsOutOfRange());
  EXPECT_TRUE(disk.ReadRun(kInvalidPageId, 1, buf.data()).IsOutOfRange());
}

TEST(SimDiskTest, EmptyRunRejected) {
  SimDisk disk;
  disk.Allocate();
  std::vector<char> buf(disk.page_size());
  EXPECT_TRUE(disk.ReadRun(0, 0, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(disk.ReadChained({}, {}).IsInvalidArgument());
}

TEST(SimDiskTest, ChainedSizeMismatchRejected) {
  SimDisk disk;
  disk.Allocate();
  std::vector<char> buf(disk.page_size());
  EXPECT_TRUE(
      disk.ReadChained({0}, {buf.data(), buf.data()}).IsInvalidArgument());
}

TEST(SimDiskTest, DoubleFreeRejected) {
  SimDisk disk;
  const PageId id = disk.Allocate();
  EXPECT_TRUE(disk.Free(id).ok());
  EXPECT_EQ(disk.live_page_count(), 0u);
  EXPECT_TRUE(disk.Free(id).IsInvalidArgument());
}

TEST(SimDiskTest, CustomPageSize) {
  SimDisk disk(DiskOptions{512});
  EXPECT_EQ(disk.page_size(), 512u);
  const PageId id = disk.Allocate();
  auto data = Pattern(512, 'z');
  ASSERT_TRUE(disk.WriteRun(id, 1, data.data()).ok());
}

TEST(SimDiskTest, ResetStatsZeroesCounters) {
  SimDisk disk;
  disk.AllocateRun(2);
  std::vector<char> buf(disk.page_size());
  ASSERT_TRUE(disk.ReadRun(0, 1, buf.data()).ok());
  disk.ResetStats();
  EXPECT_EQ(disk.stats().TotalCalls(), 0u);
  EXPECT_EQ(disk.stats().TotalPages(), 0u);
}

TEST(IoStatsTest, SinceComputesDelta) {
  IoStats a{10, 4, 3, 2};
  IoStats b{25, 9, 8, 4};
  const IoStats d = b.Since(a);
  EXPECT_EQ(d.pages_read, 15u);
  EXPECT_EQ(d.pages_written, 5u);
  EXPECT_EQ(d.read_calls, 5u);
  EXPECT_EQ(d.write_calls, 2u);
  EXPECT_EQ(d.TotalPages(), 20u);
  EXPECT_EQ(d.TotalCalls(), 7u);
}

TEST(IoStatsTest, ToStringMentionsCounters) {
  IoStats s{1, 2, 3, 4};
  const std::string str = s.ToString();
  EXPECT_NE(str.find("pages_read=1"), std::string::npos);
  EXPECT_NE(str.find("write_calls=4"), std::string::npos);
}

}  // namespace
}  // namespace starfish
