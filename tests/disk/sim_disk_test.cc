#include "disk/sim_disk.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace starfish {
namespace {

std::vector<char> Pattern(uint32_t page_size, char fill) {
  return std::vector<char>(page_size, fill);
}

TEST(SimDiskTest, AllocateGrowsVolume) {
  SimDisk disk;
  EXPECT_EQ(disk.page_count(), 0u);
  const PageId a = disk.Allocate();
  const PageId b = disk.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(disk.page_count(), 2u);
  EXPECT_EQ(disk.live_page_count(), 2u);
}

TEST(SimDiskTest, AllocateRunIsContiguous) {
  SimDisk disk;
  disk.Allocate();
  const PageId first = disk.AllocateRun(5);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(disk.page_count(), 6u);
}

TEST(SimDiskTest, FreshPagesAreZeroFilled) {
  SimDisk disk;
  const PageId id = disk.Allocate();
  std::vector<char> buf(disk.page_size(), 'x');
  ASSERT_TRUE(disk.ReadRun(id, 1, buf.data()).ok());
  for (char c : buf) EXPECT_EQ(c, '\0');
}

TEST(SimDiskTest, WriteReadRoundTrip) {
  SimDisk disk;
  const PageId id = disk.Allocate();
  auto data = Pattern(disk.page_size(), 'A');
  ASSERT_TRUE(disk.WriteRun(id, 1, data.data()).ok());
  std::vector<char> buf(disk.page_size());
  ASSERT_TRUE(disk.ReadRun(id, 1, buf.data()).ok());
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), disk.page_size()), 0);
}

TEST(SimDiskTest, RunCountsOneCallManyPages) {
  SimDisk disk;
  const PageId first = disk.AllocateRun(4);
  std::vector<char> buf(4 * disk.page_size());
  ASSERT_TRUE(disk.ReadRun(first, 4, buf.data()).ok());
  EXPECT_EQ(disk.stats().read_calls, 1u);
  EXPECT_EQ(disk.stats().pages_read, 4u);
  ASSERT_TRUE(disk.WriteRun(first, 4, buf.data()).ok());
  EXPECT_EQ(disk.stats().write_calls, 1u);
  EXPECT_EQ(disk.stats().pages_written, 4u);
}

TEST(SimDiskTest, ChainedIoCountsOneCall) {
  SimDisk disk;
  disk.AllocateRun(10);
  std::vector<char> b0(disk.page_size()), b1(disk.page_size()),
      b2(disk.page_size());
  ASSERT_TRUE(disk.ReadChained({2, 7, 9}, {b0.data(), b1.data(), b2.data()})
                  .ok());
  EXPECT_EQ(disk.stats().read_calls, 1u);
  EXPECT_EQ(disk.stats().pages_read, 3u);
}

TEST(SimDiskTest, ChainedWriteRoundTrip) {
  SimDisk disk;
  disk.AllocateRun(5);
  auto a = Pattern(disk.page_size(), 'a');
  auto b = Pattern(disk.page_size(), 'b');
  ASSERT_TRUE(disk.WriteChained({1, 4}, {a.data(), b.data()}).ok());
  EXPECT_EQ(disk.stats().write_calls, 1u);
  std::vector<char> buf(disk.page_size());
  ASSERT_TRUE(disk.ReadRun(4, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'b');
}

TEST(SimDiskTest, OutOfRangeAccessRejected) {
  SimDisk disk;
  disk.Allocate();
  std::vector<char> buf(disk.page_size());
  EXPECT_TRUE(disk.ReadRun(1, 1, buf.data()).IsOutOfRange());
  EXPECT_TRUE(disk.ReadRun(0, 2, buf.data()).IsOutOfRange());
  EXPECT_TRUE(disk.ReadRun(kInvalidPageId, 1, buf.data()).IsOutOfRange());
}

TEST(SimDiskTest, EmptyRunRejected) {
  SimDisk disk;
  disk.Allocate();
  std::vector<char> buf(disk.page_size());
  EXPECT_TRUE(disk.ReadRun(0, 0, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(disk.ReadChained({}, {}).IsInvalidArgument());
}

TEST(SimDiskTest, ChainedSizeMismatchRejected) {
  SimDisk disk;
  disk.Allocate();
  std::vector<char> buf(disk.page_size());
  EXPECT_TRUE(
      disk.ReadChained({0}, {buf.data(), buf.data()}).IsInvalidArgument());
}

TEST(SimDiskTest, DoubleFreeRejected) {
  SimDisk disk;
  const PageId id = disk.Allocate();
  EXPECT_TRUE(disk.Free(id).ok());
  EXPECT_EQ(disk.live_page_count(), 0u);
  EXPECT_TRUE(disk.Free(id).IsInvalidArgument());
}

TEST(SimDiskTest, CustomPageSize) {
  SimDisk disk(DiskOptions{512});
  EXPECT_EQ(disk.page_size(), 512u);
  const PageId id = disk.Allocate();
  auto data = Pattern(512, 'z');
  ASSERT_TRUE(disk.WriteRun(id, 1, data.data()).ok());
}

TEST(SimDiskTest, ResetStatsZeroesCounters) {
  SimDisk disk;
  disk.AllocateRun(2);
  std::vector<char> buf(disk.page_size());
  ASSERT_TRUE(disk.ReadRun(0, 1, buf.data()).ok());
  disk.ResetStats();
  EXPECT_EQ(disk.stats().TotalCalls(), 0u);
  EXPECT_EQ(disk.stats().TotalPages(), 0u);
}

// --- arena / extent-boundary coverage -------------------------------------

// A tiny geometry (4 pages per extent) so runs cross extents cheaply.
DiskOptions TinyExtents() {
  DiskOptions o;
  o.page_size = 256;
  o.extent_bytes = 1024;
  return o;
}

TEST(SimDiskArenaTest, GeometryFollowsOptions) {
  SimDisk disk(TinyExtents());
  EXPECT_EQ(disk.pages_per_extent(), 4u);
  // An extent smaller than one page still holds one page.
  DiskOptions big;
  big.page_size = 4096;
  big.extent_bytes = 1024;
  EXPECT_EQ(SimDisk(big).pages_per_extent(), 1u);
}

TEST(SimDiskArenaTest, RunSpanningExtentsRoundTrips) {
  SimDisk disk(TinyExtents());
  const uint32_t n = 11;  // crosses two extent boundaries
  const PageId first = disk.AllocateRun(n);
  std::vector<char> data(n * disk.page_size());
  for (uint32_t i = 0; i < n; ++i) {
    std::fill_n(data.begin() + i * disk.page_size(), disk.page_size(),
                static_cast<char>('a' + i));
  }
  ASSERT_TRUE(disk.WriteRun(first, n, data.data()).ok());
  EXPECT_EQ(disk.stats().write_calls, 1u);
  EXPECT_EQ(disk.stats().pages_written, n);
  std::vector<char> buf(n * disk.page_size());
  ASSERT_TRUE(disk.ReadRun(first, n, buf.data()).ok());
  EXPECT_EQ(disk.stats().read_calls, 1u);
  EXPECT_EQ(disk.stats().pages_read, n);
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), buf.size()), 0);
}

TEST(SimDiskArenaTest, RunStartingMidExtentSpansBoundary) {
  SimDisk disk(TinyExtents());
  disk.AllocateRun(3);                       // pages 0..2
  const PageId first = disk.AllocateRun(4);  // pages 3..6: extents 0 and 1
  EXPECT_EQ(first, 3u);
  std::vector<char> data(4 * disk.page_size(), 'S');
  ASSERT_TRUE(disk.WriteRun(first, 4, data.data()).ok());
  std::vector<char> buf(disk.page_size());
  for (PageId id = first; id < first + 4; ++id) {
    ASSERT_TRUE(disk.ReadRun(id, 1, buf.data()).ok());
    EXPECT_EQ(buf[0], 'S') << "page " << id;
  }
}

TEST(SimDiskArenaTest, FreshPagesZeroFilledAcrossManyExtents) {
  SimDisk disk(TinyExtents());
  const uint32_t n = 4 * disk.pages_per_extent() + 2;
  const PageId first = disk.AllocateRun(n);
  std::vector<char> buf(n * disk.page_size(), 'x');
  ASSERT_TRUE(disk.ReadRun(first, n, buf.data()).ok());
  for (char c : buf) ASSERT_EQ(c, '\0');
}

TEST(SimDiskArenaTest, PeekPageIsUnmeteredAndStable) {
  SimDisk disk(TinyExtents());
  const PageId id = disk.AllocateRun(6) + 5;
  auto data = Pattern(disk.page_size(), 'P');
  ASSERT_TRUE(disk.WriteRun(id, 1, data.data()).ok());
  disk.ResetStats();
  const char* view = disk.PeekPage(id);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view[0], 'P');
  EXPECT_EQ(disk.stats().TotalCalls(), 0u);  // peeking is not an I/O
  // Growing the volume must not move existing pages.
  disk.AllocateRun(64);
  EXPECT_EQ(disk.PeekPage(id), view);
  // Out of range -> nullptr.
  EXPECT_EQ(disk.PeekPage(disk.page_count()), nullptr);
  EXPECT_EQ(disk.PeekPage(kInvalidPageId), nullptr);
}

TEST(SimDiskArenaTest, ReadRunZeroCopyViewsAndAccounting) {
  SimDisk disk(TinyExtents());
  const uint32_t n = 9;  // spans three extents
  const PageId first = disk.AllocateRun(n);
  std::vector<char> data(n * disk.page_size());
  for (uint32_t i = 0; i < n; ++i) {
    std::fill_n(data.begin() + i * disk.page_size(), disk.page_size(),
                static_cast<char>('0' + i));
  }
  ASSERT_TRUE(disk.WriteRun(first, n, data.data()).ok());
  disk.ResetStats();
  std::vector<const char*> views;
  ASSERT_TRUE(disk.ReadRunZeroCopy(first, n, &views).ok());
  EXPECT_EQ(disk.stats().read_calls, 1u);
  EXPECT_EQ(disk.stats().pages_read, n);
  ASSERT_EQ(views.size(), n);
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(views[i][0], static_cast<char>('0' + i)) << "page " << i;
  }
  EXPECT_TRUE(disk.ReadRunZeroCopy(first + n, 1, &views).IsOutOfRange());
  EXPECT_TRUE(disk.ReadRunZeroCopy(first, 0, &views).IsInvalidArgument());
}

TEST(SimDiskArenaTest, ReadChainedZeroCopyViewsAndAccounting) {
  SimDisk disk(TinyExtents());
  disk.AllocateRun(12);
  auto a = Pattern(disk.page_size(), 'a');
  auto b = Pattern(disk.page_size(), 'b');
  ASSERT_TRUE(disk.WriteChained({2, 11}, {a.data(), b.data()}).ok());
  disk.ResetStats();
  std::vector<const char*> views;
  ASSERT_TRUE(disk.ReadChainedZeroCopy({2, 11, 0}, &views).ok());
  EXPECT_EQ(disk.stats().read_calls, 1u);
  EXPECT_EQ(disk.stats().pages_read, 3u);
  ASSERT_EQ(views.size(), 3u);
  EXPECT_EQ(views[0][0], 'a');
  EXPECT_EQ(views[1][0], 'b');
  EXPECT_EQ(views[2][0], '\0');
  EXPECT_TRUE(disk.ReadChainedZeroCopy({}, &views).IsInvalidArgument());
  EXPECT_TRUE(disk.ReadChainedZeroCopy({99}, &views).IsOutOfRange());
}

TEST(SimDiskArenaTest, DefaultGeometryLargeVolumeRoundTrips) {
  SimDisk disk;  // 2 KiB pages, 4 MiB extents -> 2048 pages per extent
  const uint32_t n = disk.pages_per_extent() + 3;  // forces a second extent
  const PageId first = disk.AllocateRun(n);
  // Last page of extent 0 and first page of extent 1.
  const PageId boundary = first + disk.pages_per_extent() - 1;
  std::vector<char> two(2 * disk.page_size(), 'E');
  ASSERT_TRUE(disk.WriteRun(boundary, 2, two.data()).ok());
  std::vector<char> buf(2 * disk.page_size());
  ASSERT_TRUE(disk.ReadRun(boundary, 2, buf.data()).ok());
  EXPECT_EQ(buf[0], 'E');
  EXPECT_EQ(buf[2 * disk.page_size() - 1], 'E');
}

TEST(IoStatsTest, SinceComputesDelta) {
  IoStats a{10, 4, 3, 2};
  IoStats b{25, 9, 8, 4};
  const IoStats d = b.Since(a);
  EXPECT_EQ(d.pages_read, 15u);
  EXPECT_EQ(d.pages_written, 5u);
  EXPECT_EQ(d.read_calls, 5u);
  EXPECT_EQ(d.write_calls, 2u);
  EXPECT_EQ(d.TotalPages(), 20u);
  EXPECT_EQ(d.TotalCalls(), 7u);
}

TEST(IoStatsTest, ToStringMentionsCounters) {
  IoStats s{1, 2, 3, 4};
  const std::string str = s.ToString();
  EXPECT_NE(str.find("pages_read=1"), std::string::npos);
  EXPECT_NE(str.find("write_calls=4"), std::string::npos);
}

}  // namespace
}  // namespace starfish
