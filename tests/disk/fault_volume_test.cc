// FaultVolume-specific behaviour: fault injection, torn writes, write
// buffering and simulated power loss. Transparent-passthrough conformance
// (faults disabled) runs in the backend-parameterized suite in
// volume_test.cc.

#include "disk/fault_volume.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "disk/log_file.h"
#include "disk/mem_volume.h"
#include "disk/mmap_volume.h"
#include "util/file_io.h"

namespace starfish {
namespace {

/// A fresh temp path for a wrapped log file.
std::string TempLogPath(const std::string& tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("starfish_faultlog_" + tag))
          .string();
  std::filesystem::remove(path);
  return path;
}

std::string FileBytes(const std::string& path) {
  std::string bytes;
  bool found = false;
  EXPECT_TRUE(ReadFileToString(path, &bytes, &found).ok());
  return found ? bytes : std::string();
}

DiskOptions TinyExtents() {
  DiskOptions o;
  o.page_size = 256;
  o.extent_bytes = 1024;  // 4 pages per extent
  return o;
}

std::vector<char> Pattern(uint32_t page_size, char fill) {
  return std::vector<char>(page_size, fill);
}

TEST(FaultVolumeTest, PassthroughSharesPointersAndStats) {
  auto inner = std::make_unique<MemVolume>(TinyExtents());
  MemVolume* raw = inner.get();
  FaultVolume fault(std::move(inner));
  const PageId first = fault.AllocateRun(4).value();
  auto data = Pattern(fault.page_size(), 'p');
  ASSERT_TRUE(fault.WriteRun(first, 1, data.data()).ok());
  // Identical zero-copy pointers: the decorator adds no staging layer.
  EXPECT_EQ(fault.PeekPage(first), raw->PeekPage(first));
  std::vector<const char*> views;
  ASSERT_TRUE(fault.ReadRunZeroCopy(first, 4, &views).ok());
  EXPECT_EQ(views[0], raw->PeekPage(first));
  // Identical accounting: every transfer reached the backend's meter.
  const IoStats outer = fault.stats();
  const IoStats inner_stats = raw->stats();
  EXPECT_EQ(outer.pages_read, inner_stats.pages_read);
  EXPECT_EQ(outer.pages_written, inner_stats.pages_written);
  EXPECT_EQ(outer.read_calls, inner_stats.read_calls);
  EXPECT_EQ(outer.write_calls, inner_stats.write_calls);
}

TEST(FaultVolumeTest, FailsExactlyTheArmedWriteCall) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  const PageId first = fault.AllocateRun(8).value();
  auto data = Pattern(fault.page_size(), 'w');
  FaultPlan plan;
  plan.fail_write_call = 3;
  fault.SetPlan(plan);
  EXPECT_TRUE(fault.WriteRun(first, 1, data.data()).ok());
  EXPECT_TRUE(fault.WriteRun(first + 1, 1, data.data()).ok());
  EXPECT_TRUE(fault.WriteRun(first + 2, 1, data.data()).IsIOError());
  EXPECT_EQ(fault.faults_fired(), 1u);
  // One-shot: the next write works again (the plan names call 3 only).
  EXPECT_TRUE(fault.WriteRun(first + 3, 1, data.data()).ok());
  EXPECT_EQ(fault.write_calls_seen(), 4u);
  // The failed write transferred nothing (torn_pages = 0).
  EXPECT_EQ(fault.PeekPage(first + 2)[0], '\0');
}

TEST(FaultVolumeTest, TornWriteAppliesPrefixOnly) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  const PageId first = fault.AllocateRun(6).value();
  std::vector<char> data(4 * fault.page_size());
  for (uint32_t i = 0; i < 4; ++i) {
    std::fill_n(data.begin() + i * fault.page_size(), fault.page_size(),
                static_cast<char>('0' + i));
  }
  FaultPlan plan;
  plan.fail_write_call = 1;
  plan.torn_pages = 2;
  fault.SetPlan(plan);
  EXPECT_TRUE(fault.WriteRun(first, 4, data.data()).IsIOError());
  EXPECT_EQ(fault.PeekPage(first)[0], '0');
  EXPECT_EQ(fault.PeekPage(first + 1)[0], '1');
  EXPECT_EQ(fault.PeekPage(first + 2)[0], '\0');  // never transferred
  EXPECT_EQ(fault.PeekPage(first + 3)[0], '\0');
}

TEST(FaultVolumeTest, SyncFaultFiresBeforeBackend) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  FaultPlan plan;
  plan.fail_sync_call = 2;
  fault.SetPlan(plan);
  EXPECT_TRUE(fault.Sync().ok());
  EXPECT_TRUE(fault.Sync().IsIOError());
  EXPECT_TRUE(fault.Sync().ok());
  EXPECT_EQ(fault.sync_calls_seen(), 3u);
  EXPECT_EQ(fault.faults_fired(), 1u);
}

TEST(FaultVolumeTest, BufferedWritesVisibleThroughEveryReadPath) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()), options);
  const PageId first = fault.AllocateRun(6).value();
  auto data = Pattern(fault.page_size(), 'B');
  ASSERT_TRUE(fault.WriteRun(first + 1, 1, data.data()).ok());
  std::vector<char> buf(2 * fault.page_size());
  ASSERT_TRUE(fault.ReadRun(first, 2, buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');
  EXPECT_EQ(buf[fault.page_size()], 'B');
  std::vector<const char*> views;
  ASSERT_TRUE(fault.ReadRunZeroCopy(first, 2, &views).ok());
  EXPECT_EQ(views[1][0], 'B');
  ASSERT_TRUE(fault.ReadChainedZeroCopy({first + 1, first}, &views).ok());
  EXPECT_EQ(views[0][0], 'B');
  EXPECT_EQ(fault.PeekPage(first + 1)[0], 'B');
  // Write accounting still meters (locally; the backend never saw it).
  EXPECT_EQ(fault.stats().write_calls, 1u);
  EXPECT_EQ(fault.stats().pages_written, 1u);
}

TEST(FaultVolumeTest, PowerLossDropsUnsyncedWritesOnMmap) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "starfish_fault_powerloss")
          .string();
  std::filesystem::remove_all(dir);
  {
    FaultVolumeOptions options;
    options.buffer_unsynced_writes = true;
    FaultVolume fault(
        std::move(MmapVolume::Open(dir, TinyExtents()).value()), options);
    const PageId first = fault.AllocateRun(4).value();
    auto synced = Pattern(fault.page_size(), 'S');
    ASSERT_TRUE(fault.WriteRun(first, 1, synced.data()).ok());
    ASSERT_TRUE(fault.Sync().ok());
    auto lost = Pattern(fault.page_size(), 'L');
    ASSERT_TRUE(fault.WriteRun(first + 1, 1, lost.data()).ok());
    // The running store still reads its own un-synced write back...
    std::vector<char> buf(fault.page_size());
    ASSERT_TRUE(fault.ReadRun(first + 1, 1, buf.data()).ok());
    EXPECT_EQ(buf[0], 'L');
    fault.SimulatePowerLoss();
    // ...but the dead machine serves nothing.
    EXPECT_TRUE(fault.ReadRun(first, 1, buf.data()).IsIOError());
    EXPECT_TRUE(fault.WriteRun(first, 1, buf.data()).IsIOError());
    EXPECT_TRUE(fault.Sync().IsIOError());
    EXPECT_EQ(fault.PeekPage(first), nullptr);
  }  // inner MmapVolume destructor appends allocator metadata, as a crashed
     // kernel would have already persisted the allocation (file creation)

  // The reopened directory holds exactly the synced state.
  auto reopened = MmapVolume::Open(dir).value();
  std::vector<char> buf(reopened->page_size());
  ASSERT_TRUE(reopened->ReadRun(0, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'S');
  ASSERT_TRUE(reopened->ReadRun(1, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');  // the un-synced 'L' write is gone
  std::filesystem::remove_all(dir);
}

TEST(FaultVolumeTest, TornPrefixSurvivesPowerLossWhenBuffered) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  auto inner = std::make_unique<MemVolume>(TinyExtents());
  MemVolume* raw = inner.get();
  FaultVolume fault(std::move(inner), options);
  const PageId first = fault.AllocateRun(4).value();
  std::vector<char> data(3 * fault.page_size(), 'T');
  FaultPlan plan;
  plan.fail_write_call = 1;
  plan.torn_pages = 1;
  plan.power_loss_on_fault = true;
  fault.SetPlan(plan);
  EXPECT_TRUE(fault.WriteRun(first, 3, data.data()).IsIOError());
  EXPECT_TRUE(fault.down());
  // The torn prefix bypassed the volatile cache and hit the medium; the
  // remaining pages never existed anywhere.
  EXPECT_EQ(raw->PeekPage(first)[0], 'T');
  EXPECT_EQ(raw->PeekPage(first + 1)[0], '\0');
  EXPECT_EQ(raw->PeekPage(first + 2)[0], '\0');
}

TEST(FaultVolumeTest, SyncAppliesBufferedWritesWithoutDoubleMetering) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  auto inner = std::make_unique<MemVolume>(TinyExtents());
  MemVolume* raw = inner.get();
  FaultVolume fault(std::move(inner), options);
  const PageId first = fault.AllocateRun(2).value();
  std::vector<char> data(2 * fault.page_size(), 'D');
  ASSERT_TRUE(fault.WriteRun(first, 2, data.data()).ok());
  EXPECT_EQ(raw->PeekPage(first)[0], '\0');  // still only in the cache
  ASSERT_TRUE(fault.Sync().ok());
  EXPECT_EQ(raw->PeekPage(first)[0], 'D');  // flushed to the medium
  EXPECT_EQ(raw->PeekPage(first + 1)[0], 'D');
  // One write call, two page writes — the cache flush is not a transfer.
  EXPECT_EQ(fault.stats().write_calls, 1u);
  EXPECT_EQ(fault.stats().pages_written, 2u);
  // Reads after the flush still serve correct bytes.
  std::vector<char> buf(fault.page_size());
  ASSERT_TRUE(fault.ReadRun(first, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'D');
}

TEST(FaultVolumeTest, FailsExactlyTheArmedReadCall) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  const PageId first = fault.AllocateRun(4).value();
  std::vector<char> data(4 * fault.page_size(), 'r');
  ASSERT_TRUE(fault.WriteRun(first, 4, data.data()).ok());
  FaultPlan plan;
  plan.fail_read_call = 2;
  fault.SetPlan(plan);
  std::vector<char> buf(fault.page_size());
  EXPECT_TRUE(fault.ReadRun(first, 1, buf.data()).ok());
  EXPECT_TRUE(fault.ReadRun(first + 1, 1, buf.data()).IsIOError());
  EXPECT_EQ(fault.faults_fired(), 1u);
  // One-shot, and the medium is unharmed: the retry serves correct bytes.
  ASSERT_TRUE(fault.ReadRun(first + 1, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'r');
  EXPECT_EQ(fault.read_calls_seen(), 3u);
}

TEST(FaultVolumeTest, ReadFaultCountsEveryReadPathButNotPeeks) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  const PageId first = fault.AllocateRun(4).value();
  std::vector<char> buf(fault.page_size());
  std::vector<const char*> views;
  ASSERT_TRUE(fault.ReadRun(first, 1, buf.data()).ok());
  ASSERT_TRUE(fault.ReadRunZeroCopy(first, 2, &views).ok());
  ASSERT_TRUE(fault.ReadChained({first, first + 1}, {buf.data(), buf.data()})
                  .ok());
  ASSERT_TRUE(fault.ReadChainedZeroCopy({first + 1}, &views).ok());
  EXPECT_NE(fault.PeekPage(first), nullptr);  // a peek, not an I/O
  EXPECT_EQ(fault.read_calls_seen(), 4u);
  fault.ResetFaultCounters();
  EXPECT_EQ(fault.read_calls_seen(), 0u);
}

TEST(FaultVolumeTest, ReadFaultWithPowerLossDownsTheVolume) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  const PageId first = fault.AllocateRun(2).value();
  FaultPlan plan;
  plan.fail_read_call = 1;
  plan.power_loss_on_fault = true;
  fault.SetPlan(plan);
  std::vector<char> buf(fault.page_size());
  EXPECT_TRUE(fault.ReadRun(first, 1, buf.data()).IsIOError());
  EXPECT_TRUE(fault.down());
  EXPECT_TRUE(fault.ReadRun(first, 1, buf.data()).IsIOError());
}

TEST(FaultVolumeTest, ReviveRestoresServiceWithoutLostWrites) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()), options);
  const PageId first = fault.AllocateRun(2).value();
  auto data = Pattern(fault.page_size(), 'R');
  ASSERT_TRUE(fault.WriteRun(first, 1, data.data()).ok());
  fault.SimulatePowerLoss();
  fault.Revive();
  std::vector<char> buf(fault.page_size());
  ASSERT_TRUE(fault.ReadRun(first, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');  // the un-synced write stayed lost
  ASSERT_TRUE(fault.WriteRun(first, 1, data.data()).ok());
  ASSERT_TRUE(fault.ReadRun(first, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'R');
}

// ----------------------------------------------------------- log faults --

TEST(FaultVolumeTest, LogFaultFailsExactlyTheArmedAppend) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  const std::string path = TempLogPath("armed_append");
  auto log = fault.WrapLogFile(OpenPosixLogFile(path).value());
  FaultPlan plan;
  plan.fail_log_append = 2;
  fault.SetPlan(plan);
  EXPECT_TRUE(log->Append("one").ok());
  EXPECT_TRUE(log->Append("LOST").IsIOError());
  EXPECT_EQ(fault.faults_fired(), 1u);
  // One-shot: the next append lands, and the failed one left no bytes
  // (torn_log_bytes = 0).
  EXPECT_TRUE(log->Append("two").ok());
  ASSERT_TRUE(log->Sync().ok());
  EXPECT_EQ(FileBytes(path), "onetwo");
  EXPECT_EQ(fault.log_append_calls_seen(), 3u);
  std::filesystem::remove(path);
}

TEST(FaultVolumeTest, LogSyncFaultFiresBeforeTheMedium) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  const std::string path = TempLogPath("armed_sync");
  auto log = fault.WrapLogFile(OpenPosixLogFile(path).value());
  FaultPlan plan;
  plan.fail_log_sync = 1;
  fault.SetPlan(plan);
  ASSERT_TRUE(log->Append("abc").ok());
  EXPECT_TRUE(log->Sync().IsIOError());
  EXPECT_EQ(fault.log_sync_calls_seen(), 1u);
  EXPECT_EQ(fault.faults_fired(), 1u);
  EXPECT_TRUE(log->Sync().ok());
  std::filesystem::remove(path);
}

TEST(FaultVolumeTest, BufferedLogTailDiesWithThePower) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()), options);
  const std::string path = TempLogPath("buffered_tail");
  auto log = fault.WrapLogFile(OpenPosixLogFile(path).value());
  ASSERT_TRUE(log->Append("SYNCED").ok());
  ASSERT_TRUE(log->Sync().ok());
  ASSERT_TRUE(log->Append("tail").ok());  // lives in the volatile cache
  EXPECT_EQ(FileBytes(path), "SYNCED");   // ...so the medium has no tail yet
  fault.SimulatePowerLoss();
  EXPECT_TRUE(log->Append("x").IsIOError());
  EXPECT_TRUE(log->Sync().IsIOError());
  EXPECT_EQ(FileBytes(path), "SYNCED");  // the un-synced tail is gone
  fault.Revive();
  ASSERT_TRUE(log->Append("again").ok());
  ASSERT_TRUE(log->Sync().ok());
  EXPECT_EQ(FileBytes(path), "SYNCEDagain");  // pending cleared by the loss
  std::filesystem::remove(path);
}

TEST(FaultVolumeTest, TornLogPrefixReachesTheMediumOnFault) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()), options);
  const std::string path = TempLogPath("torn_prefix");
  auto log = fault.WrapLogFile(OpenPosixLogFile(path).value());
  ASSERT_TRUE(log->Append("BASE").ok());
  ASSERT_TRUE(log->Sync().ok());
  ASSERT_TRUE(log->Append("12").ok());  // pending
  FaultPlan plan;
  plan.fail_log_append = 3;
  plan.torn_log_bytes = 4;  // pending "12" + half of the failing "3456"
  plan.power_loss_on_fault = true;
  fault.SetPlan(plan);
  EXPECT_TRUE(log->Append("3456").IsIOError());
  EXPECT_TRUE(fault.down());
  // The cache made it 4 bytes out before the machine died: the synced
  // prefix plus a torn tail crossing the failed append's boundary.
  EXPECT_EQ(FileBytes(path), "BASE1234");
  std::filesystem::remove(path);
}

TEST(FaultVolumeTest, LogReplaceClearsThePendingTail) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()), options);
  const std::string path = TempLogPath("replace");
  auto log = fault.WrapLogFile(OpenPosixLogFile(path).value());
  ASSERT_TRUE(log->Append("stale-pending").ok());
  ASSERT_TRUE(log->Replace("fresh").ok());
  ASSERT_TRUE(log->Sync().ok());  // must not flush the pre-Replace tail
  EXPECT_EQ(FileBytes(path), "fresh");
  EXPECT_EQ(log->path(), path);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace starfish
