// FaultVolume-specific behaviour: fault injection, torn writes, write
// buffering and simulated power loss. Transparent-passthrough conformance
// (faults disabled) runs in the backend-parameterized suite in
// volume_test.cc.

#include "disk/fault_volume.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "disk/mem_volume.h"
#include "disk/mmap_volume.h"

namespace starfish {
namespace {

DiskOptions TinyExtents() {
  DiskOptions o;
  o.page_size = 256;
  o.extent_bytes = 1024;  // 4 pages per extent
  return o;
}

std::vector<char> Pattern(uint32_t page_size, char fill) {
  return std::vector<char>(page_size, fill);
}

TEST(FaultVolumeTest, PassthroughSharesPointersAndStats) {
  auto inner = std::make_unique<MemVolume>(TinyExtents());
  MemVolume* raw = inner.get();
  FaultVolume fault(std::move(inner));
  const PageId first = fault.AllocateRun(4).value();
  auto data = Pattern(fault.page_size(), 'p');
  ASSERT_TRUE(fault.WriteRun(first, 1, data.data()).ok());
  // Identical zero-copy pointers: the decorator adds no staging layer.
  EXPECT_EQ(fault.PeekPage(first), raw->PeekPage(first));
  std::vector<const char*> views;
  ASSERT_TRUE(fault.ReadRunZeroCopy(first, 4, &views).ok());
  EXPECT_EQ(views[0], raw->PeekPage(first));
  // Identical accounting: every transfer reached the backend's meter.
  const IoStats outer = fault.stats();
  const IoStats inner_stats = raw->stats();
  EXPECT_EQ(outer.pages_read, inner_stats.pages_read);
  EXPECT_EQ(outer.pages_written, inner_stats.pages_written);
  EXPECT_EQ(outer.read_calls, inner_stats.read_calls);
  EXPECT_EQ(outer.write_calls, inner_stats.write_calls);
}

TEST(FaultVolumeTest, FailsExactlyTheArmedWriteCall) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  const PageId first = fault.AllocateRun(8).value();
  auto data = Pattern(fault.page_size(), 'w');
  FaultPlan plan;
  plan.fail_write_call = 3;
  fault.SetPlan(plan);
  EXPECT_TRUE(fault.WriteRun(first, 1, data.data()).ok());
  EXPECT_TRUE(fault.WriteRun(first + 1, 1, data.data()).ok());
  EXPECT_TRUE(fault.WriteRun(first + 2, 1, data.data()).IsIOError());
  EXPECT_EQ(fault.faults_fired(), 1u);
  // One-shot: the next write works again (the plan names call 3 only).
  EXPECT_TRUE(fault.WriteRun(first + 3, 1, data.data()).ok());
  EXPECT_EQ(fault.write_calls_seen(), 4u);
  // The failed write transferred nothing (torn_pages = 0).
  EXPECT_EQ(fault.PeekPage(first + 2)[0], '\0');
}

TEST(FaultVolumeTest, TornWriteAppliesPrefixOnly) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  const PageId first = fault.AllocateRun(6).value();
  std::vector<char> data(4 * fault.page_size());
  for (uint32_t i = 0; i < 4; ++i) {
    std::fill_n(data.begin() + i * fault.page_size(), fault.page_size(),
                static_cast<char>('0' + i));
  }
  FaultPlan plan;
  plan.fail_write_call = 1;
  plan.torn_pages = 2;
  fault.SetPlan(plan);
  EXPECT_TRUE(fault.WriteRun(first, 4, data.data()).IsIOError());
  EXPECT_EQ(fault.PeekPage(first)[0], '0');
  EXPECT_EQ(fault.PeekPage(first + 1)[0], '1');
  EXPECT_EQ(fault.PeekPage(first + 2)[0], '\0');  // never transferred
  EXPECT_EQ(fault.PeekPage(first + 3)[0], '\0');
}

TEST(FaultVolumeTest, SyncFaultFiresBeforeBackend) {
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()));
  FaultPlan plan;
  plan.fail_sync_call = 2;
  fault.SetPlan(plan);
  EXPECT_TRUE(fault.Sync().ok());
  EXPECT_TRUE(fault.Sync().IsIOError());
  EXPECT_TRUE(fault.Sync().ok());
  EXPECT_EQ(fault.sync_calls_seen(), 3u);
  EXPECT_EQ(fault.faults_fired(), 1u);
}

TEST(FaultVolumeTest, BufferedWritesVisibleThroughEveryReadPath) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()), options);
  const PageId first = fault.AllocateRun(6).value();
  auto data = Pattern(fault.page_size(), 'B');
  ASSERT_TRUE(fault.WriteRun(first + 1, 1, data.data()).ok());
  std::vector<char> buf(2 * fault.page_size());
  ASSERT_TRUE(fault.ReadRun(first, 2, buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');
  EXPECT_EQ(buf[fault.page_size()], 'B');
  std::vector<const char*> views;
  ASSERT_TRUE(fault.ReadRunZeroCopy(first, 2, &views).ok());
  EXPECT_EQ(views[1][0], 'B');
  ASSERT_TRUE(fault.ReadChainedZeroCopy({first + 1, first}, &views).ok());
  EXPECT_EQ(views[0][0], 'B');
  EXPECT_EQ(fault.PeekPage(first + 1)[0], 'B');
  // Write accounting still meters (locally; the backend never saw it).
  EXPECT_EQ(fault.stats().write_calls, 1u);
  EXPECT_EQ(fault.stats().pages_written, 1u);
}

TEST(FaultVolumeTest, PowerLossDropsUnsyncedWritesOnMmap) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "starfish_fault_powerloss")
          .string();
  std::filesystem::remove_all(dir);
  {
    FaultVolumeOptions options;
    options.buffer_unsynced_writes = true;
    FaultVolume fault(
        std::move(MmapVolume::Open(dir, TinyExtents()).value()), options);
    const PageId first = fault.AllocateRun(4).value();
    auto synced = Pattern(fault.page_size(), 'S');
    ASSERT_TRUE(fault.WriteRun(first, 1, synced.data()).ok());
    ASSERT_TRUE(fault.Sync().ok());
    auto lost = Pattern(fault.page_size(), 'L');
    ASSERT_TRUE(fault.WriteRun(first + 1, 1, lost.data()).ok());
    // The running store still reads its own un-synced write back...
    std::vector<char> buf(fault.page_size());
    ASSERT_TRUE(fault.ReadRun(first + 1, 1, buf.data()).ok());
    EXPECT_EQ(buf[0], 'L');
    fault.SimulatePowerLoss();
    // ...but the dead machine serves nothing.
    EXPECT_TRUE(fault.ReadRun(first, 1, buf.data()).IsIOError());
    EXPECT_TRUE(fault.WriteRun(first, 1, buf.data()).IsIOError());
    EXPECT_TRUE(fault.Sync().IsIOError());
    EXPECT_EQ(fault.PeekPage(first), nullptr);
  }  // inner MmapVolume destructor appends allocator metadata, as a crashed
     // kernel would have already persisted the allocation (file creation)

  // The reopened directory holds exactly the synced state.
  auto reopened = MmapVolume::Open(dir).value();
  std::vector<char> buf(reopened->page_size());
  ASSERT_TRUE(reopened->ReadRun(0, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'S');
  ASSERT_TRUE(reopened->ReadRun(1, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');  // the un-synced 'L' write is gone
  std::filesystem::remove_all(dir);
}

TEST(FaultVolumeTest, TornPrefixSurvivesPowerLossWhenBuffered) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  auto inner = std::make_unique<MemVolume>(TinyExtents());
  MemVolume* raw = inner.get();
  FaultVolume fault(std::move(inner), options);
  const PageId first = fault.AllocateRun(4).value();
  std::vector<char> data(3 * fault.page_size(), 'T');
  FaultPlan plan;
  plan.fail_write_call = 1;
  plan.torn_pages = 1;
  plan.power_loss_on_fault = true;
  fault.SetPlan(plan);
  EXPECT_TRUE(fault.WriteRun(first, 3, data.data()).IsIOError());
  EXPECT_TRUE(fault.down());
  // The torn prefix bypassed the volatile cache and hit the medium; the
  // remaining pages never existed anywhere.
  EXPECT_EQ(raw->PeekPage(first)[0], 'T');
  EXPECT_EQ(raw->PeekPage(first + 1)[0], '\0');
  EXPECT_EQ(raw->PeekPage(first + 2)[0], '\0');
}

TEST(FaultVolumeTest, SyncAppliesBufferedWritesWithoutDoubleMetering) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  auto inner = std::make_unique<MemVolume>(TinyExtents());
  MemVolume* raw = inner.get();
  FaultVolume fault(std::move(inner), options);
  const PageId first = fault.AllocateRun(2).value();
  std::vector<char> data(2 * fault.page_size(), 'D');
  ASSERT_TRUE(fault.WriteRun(first, 2, data.data()).ok());
  EXPECT_EQ(raw->PeekPage(first)[0], '\0');  // still only in the cache
  ASSERT_TRUE(fault.Sync().ok());
  EXPECT_EQ(raw->PeekPage(first)[0], 'D');  // flushed to the medium
  EXPECT_EQ(raw->PeekPage(first + 1)[0], 'D');
  // One write call, two page writes — the cache flush is not a transfer.
  EXPECT_EQ(fault.stats().write_calls, 1u);
  EXPECT_EQ(fault.stats().pages_written, 2u);
  // Reads after the flush still serve correct bytes.
  std::vector<char> buf(fault.page_size());
  ASSERT_TRUE(fault.ReadRun(first, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'D');
}

TEST(FaultVolumeTest, ReviveRestoresServiceWithoutLostWrites) {
  FaultVolumeOptions options;
  options.buffer_unsynced_writes = true;
  FaultVolume fault(std::make_unique<MemVolume>(TinyExtents()), options);
  const PageId first = fault.AllocateRun(2).value();
  auto data = Pattern(fault.page_size(), 'R');
  ASSERT_TRUE(fault.WriteRun(first, 1, data.data()).ok());
  fault.SimulatePowerLoss();
  fault.Revive();
  std::vector<char> buf(fault.page_size());
  ASSERT_TRUE(fault.ReadRun(first, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');  // the un-synced write stayed lost
  ASSERT_TRUE(fault.WriteRun(first, 1, data.data()).ok());
  ASSERT_TRUE(fault.ReadRun(first, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 'R');
}

}  // namespace
}  // namespace starfish
