// sf_fsck library behaviour over directories in known states: clean
// stores, crash artifacts (warnings), and real inconsistencies (errors).
// End-to-end crash coverage (every fault point -> recovery -> fsck clean)
// lives in tests/integration/crash_matrix_test.cc.

#include "tools/fsck.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/complex_object_store.h"
#include "core/generations.h"
#include "nf2/schema.h"
#include "nf2/value.h"

namespace starfish {
namespace {

class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_fsck_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// A small committed store: 10 objects, one checkpoint.
  void BuildStore() {
    auto item = SchemaBuilder("Item").AddInt32("N").AddString("S").Build();
    auto schema = SchemaBuilder("Obj")
                      .AddInt32("Id")
                      .AddString("Name")
                      .AddRelation("Items", item)
                      .Build();
    StoreOptions options;
    options.backend = VolumeKind::kMmap;
    options.path = dir_;
    auto store = ComplexObjectStore::Open(schema, options).value();
    for (int i = 0; i < 10; ++i) {
      Tuple obj{{Value::Int32(i), Value::Str("obj-" + std::to_string(i)),
                 Value::Relation({
                     Tuple{{Value::Int32(i), Value::Str("a")}},
                     Tuple{{Value::Int32(i + 100), Value::Str("b")}},
                 })}};
      ASSERT_TRUE(store->Put(i, obj).ok());
    }
    ASSERT_TRUE(store->Flush().ok());
  }

  FsckReport Run() {
    auto report_or = RunFsck(dir_);
    EXPECT_TRUE(report_or.ok()) << report_or.status().ToString();
    return report_or.ok() ? report_or.value() : FsckReport{};
  }

  std::string dir_;
};

TEST_F(FsckTest, CleanStoreReportsZeroInconsistencies) {
  BuildStore();
  const FsckReport report = Run();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_TRUE(report.warnings.empty()) << report.ToString();
  EXPECT_TRUE(report.volume_found);
  EXPECT_TRUE(report.catalog_found);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_GT(report.segment_count, 0u);
  EXPECT_GT(report.referenced_pages, 0u);
  EXPECT_EQ(report.orphan_pages, 0u);
  EXPECT_EQ(report.referenced_pages, report.live_pages);
}

TEST_F(FsckTest, EmptyDirectoryIsCleanAndBareVolumeIsClean) {
  std::filesystem::create_directories(dir_);
  FsckReport report = Run();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_FALSE(report.volume_found);
  EXPECT_FALSE(report.catalog_found);
  // Not a directory at all -> hard error, not a report.
  EXPECT_FALSE(RunFsck(dir_ + "_nonexistent").ok());
}

TEST_F(FsckTest, UncommittedGenerationAndOrphanExtentAreWarnings) {
  BuildStore();
  // Crash artifacts: a generation newer than CURRENT and an extent file
  // beyond the durable page count.
  {
    std::FILE* f =
        std::fopen(CatalogGenerationPath(dir_, 9).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("uncommitted", f);
    std::fclose(f);
  }
  {
    std::FILE* f = std::fopen((dir_ + "/extent_000099").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("stale", f);
    std::fclose(f);
  }
  const FsckReport report = Run();
  EXPECT_TRUE(report.clean()) << report.ToString();  // artifacts, not damage
  EXPECT_EQ(report.warnings.size(), 2u) << report.ToString();
}

TEST_F(FsckTest, CorruptCurrentIsAnError) {
  BuildStore();
  std::FILE* f = std::fopen(CurrentPath(dir_).c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not-a-catalog-name\n", f);
  std::fclose(f);
  const FsckReport report = Run();
  EXPECT_FALSE(report.clean());
}

TEST_F(FsckTest, MissingVolumeMetaFailsTheCatalogChecks) {
  BuildStore();
  std::filesystem::remove(dir_ + "/volume.meta");
  const FsckReport report = Run();
  EXPECT_FALSE(report.volume_found);
  EXPECT_FALSE(report.clean()) << report.ToString();
}

TEST_F(FsckTest, TamperedPageHeaderIsAnError) {
  BuildStore();
  // Flip the segment-id field (byte 8) of page 0's header in place.
  std::FILE* f = std::fopen((dir_ + "/extent_000000").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8, SEEK_SET);
  const int original = std::fgetc(f);
  std::fseek(f, 8, SEEK_SET);
  std::fputc(original ^ 0x7F, f);
  std::fclose(f);
  const FsckReport report = Run();
  EXPECT_FALSE(report.clean());
  bool mentions_header = false;
  for (const std::string& error : report.errors) {
    if (error.find("header") != std::string::npos) mentions_header = true;
  }
  EXPECT_TRUE(mentions_header) << report.ToString();
}

TEST_F(FsckTest, GarbageJournalTailIsAWarningNotAnError) {
  BuildStore();
  // A torn append: garbage after the last valid record.
  std::FILE* f = std::fopen((dir_ + "/volume.meta").c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("torn-append-gar", f);
  std::fclose(f);
  const FsckReport report = Run();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_FALSE(report.warnings.empty()) << report.ToString();
}

}  // namespace
}  // namespace starfish
