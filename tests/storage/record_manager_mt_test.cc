// Concurrent writers at the storage layer: each segment carries its own
// write latch (segment.h) and RecordManager holds it across a whole
// record op, so writers to DIFFERENT segments proceed in parallel over
// the sharded (thread-safe) buffer pool while writers to the SAME
// segment serialize. This is the layer the store's multi-writer WAL path
// stands on; the full-stack concurrent proof is tests/wal/wal_crash_test.cc
// and tests/integration/concurrent_read_test.cc.

#include "storage/record_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "storage/storage_engine.h"

namespace starfish {
namespace {

constexpr size_t kThreads = 4;
constexpr size_t kRecordsPerThread = 300;

std::string RecordBytes(size_t writer, size_t i) {
  // ~60-120 byte records, content identifying writer and sequence so a
  // cross-threaded or torn write cannot go unnoticed.
  std::string payload = "w" + std::to_string(writer) + ":" + std::to_string(i);
  payload.resize(60 + (i * 7 + writer) % 60, static_cast<char>('A' + writer));
  return payload;
}

StorageEngineOptions ShardedOptions() {
  StorageEngineOptions options;
  options.buffer.shard_count = 8;  // thread-safe pool
  options.buffer.frame_count = 256;
  return options;
}

TEST(RecordManagerMtTest, ParallelWritersOnDistinctSegmentsStayIsolated) {
  StorageEngine engine(ShardedOptions());
  std::vector<std::unique_ptr<RecordManager>> managers;
  for (size_t w = 0; w < kThreads; ++w) {
    auto seg = engine.CreateSegment("mt_seg_" + std::to_string(w));
    ASSERT_TRUE(seg.ok());
    managers.push_back(std::make_unique<RecordManager>(seg.value()));
  }

  std::vector<std::vector<Tid>> tids(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 0; i < kRecordsPerThread; ++i) {
        auto tid = managers[w]->Insert(RecordBytes(w, i));
        if (!tid.ok()) {
          failed = true;
          return;
        }
        tids[w].push_back(tid.value());
      }
      // A round of same-size in-place updates and deletes, still racing
      // the other segments' writers through the shared pool.
      for (size_t i = 0; i < kRecordsPerThread; i += 3) {
        std::string updated = RecordBytes(w, i);
        for (char& c : updated) c = static_cast<char>(std::toupper(c));
        if (!managers[w]->Update(tids[w][i], updated).ok()) {
          failed = true;
          return;
        }
      }
      for (size_t i = 1; i < kRecordsPerThread; i += 5) {
        if (!managers[w]->Delete(tids[w][i]).ok()) {
          failed = true;
          return;
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_FALSE(failed);

  // Every surviving record reads back exactly as its writer left it.
  for (size_t w = 0; w < kThreads; ++w) {
    ASSERT_EQ(tids[w].size(), kRecordsPerThread);
    for (size_t i = 0; i < kRecordsPerThread; ++i) {
      if (i % 5 == 1) continue;  // deleted (the delete loop ran last)
      auto rec = managers[w]->Read(tids[w][i]);
      ASSERT_TRUE(rec.ok()) << "writer " << w << " record " << i << ": "
                            << rec.status().ToString();
      std::string expected = RecordBytes(w, i);
      if (i % 3 == 0) {
        for (char& c : expected) c = static_cast<char>(std::toupper(c));
      }
      EXPECT_EQ(rec.value(), expected) << "writer " << w << " record " << i;
    }
  }
}

TEST(RecordManagerMtTest, RacingWritersOnOneSegmentSerializeCleanly) {
  StorageEngine engine(ShardedOptions());
  auto seg = engine.CreateSegment("mt_shared");
  ASSERT_TRUE(seg.ok());
  RecordManager rm(seg.value());

  std::vector<std::vector<std::pair<Tid, std::string>>> written(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 0; i < kRecordsPerThread; ++i) {
        std::string payload = RecordBytes(w, i);
        auto tid = rm.Insert(payload);
        if (!tid.ok()) {
          failed = true;
          return;
        }
        written[w].emplace_back(tid.value(), std::move(payload));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_FALSE(failed);

  // All inserts landed, each readable at its TID with its own bytes, and
  // no two writers were handed the same TID.
  std::set<std::pair<PageId, uint32_t>> seen;
  for (size_t w = 0; w < kThreads; ++w) {
    for (const auto& [tid, payload] : written[w]) {
      EXPECT_TRUE(seen.emplace(tid.page, tid.slot).second)
          << "duplicate tid page " << tid.page << " slot " << tid.slot;
      auto rec = rm.Read(tid);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      EXPECT_EQ(rec.value(), payload);
    }
  }
  EXPECT_EQ(seen.size(), kThreads * kRecordsPerThread);
}

}  // namespace
}  // namespace starfish
