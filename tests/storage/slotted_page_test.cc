#include "storage/slotted_page.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "util/random.h"

namespace starfish {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : data_(kDefaultPageSize, '\0'),
                      page_(data_.data(), kDefaultPageSize) {
    page_.Init(/*segment_id=*/7, PageType::kSlotted);
  }
  std::vector<char> data_;
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InitFormatsHeader) {
  EXPECT_TRUE(page_.IsFormatted());
  EXPECT_EQ(page_.type(), PageType::kSlotted);
  EXPECT_EQ(page_.segment_id(), 7u);
  EXPECT_EQ(page_.slot_count(), 0u);
  EXPECT_EQ(page_.live_count(), 0u);
}

TEST_F(SlottedPageTest, UnformattedPageDetected) {
  std::vector<char> raw(kDefaultPageSize, '\0');
  SlottedPage view(raw.data(), kDefaultPageSize);
  EXPECT_FALSE(view.IsFormatted());
}

TEST_F(SlottedPageTest, InsertReadRoundTrip) {
  auto slot = page_.Insert("hello world");
  ASSERT_TRUE(slot.ok());
  auto rec = page_.Read(slot.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value(), "hello world");
}

TEST_F(SlottedPageTest, MultipleRecordsKeepDistinctSlots) {
  auto a = page_.Insert("aaa");
  auto b = page_.Insert("bbbbbb");
  auto c = page_.Insert("c");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(page_.live_count(), 3u);
  EXPECT_EQ(page_.Read(a.value()).value(), "aaa");
  EXPECT_EQ(page_.Read(b.value()).value(), "bbbbbb");
  EXPECT_EQ(page_.Read(c.value()).value(), "c");
}

TEST_F(SlottedPageTest, EmptyRecordAllowed) {
  auto slot = page_.Insert("");
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(page_.Read(slot.value()).value(), "");
}

TEST_F(SlottedPageTest, ReadInvalidSlotFails) {
  EXPECT_TRUE(page_.Read(0).status().IsNotFound());
  ASSERT_TRUE(page_.Insert("x").ok());
  EXPECT_TRUE(page_.Read(5).status().IsNotFound());
}

TEST_F(SlottedPageTest, FreeSpaceShrinksWithInserts) {
  const uint32_t before = page_.FreeSpaceForNewRecord();
  ASSERT_TRUE(page_.Insert(std::string(100, 'x')).ok());
  const uint32_t after = page_.FreeSpaceForNewRecord();
  EXPECT_EQ(before - after, 100u + 4u);  // record + slot entry
}

TEST_F(SlottedPageTest, FillUntilFull) {
  const std::string record(100, 'r');
  int inserted = 0;
  while (true) {
    auto slot = page_.Insert(record);
    if (!slot.ok()) {
      EXPECT_TRUE(slot.status().IsResourceExhausted());
      break;
    }
    ++inserted;
  }
  // usable = 2048 - 36 = 2012; per record 104 -> 19 records.
  EXPECT_EQ(inserted, 19);
  EXPECT_LT(page_.FreeSpaceForNewRecord(), 100u);
}

TEST_F(SlottedPageTest, OversizedRecordRejectedUpfront) {
  const std::string record(kDefaultPageSize, 'x');
  EXPECT_TRUE(page_.Insert(record).status().IsInvalidArgument());
}

TEST_F(SlottedPageTest, MaxRecordSizeFitsExactly) {
  const std::string record(SlottedPage::MaxRecordSize(kDefaultPageSize), 'm');
  auto slot = page_.Insert(record);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(page_.Read(slot.value()).value(), record);
  EXPECT_EQ(page_.FreeSpaceForNewRecord(), 0u);
}

TEST_F(SlottedPageTest, DeleteFreesSpaceAndSlot) {
  auto a = page_.Insert(std::string(200, 'a'));
  auto b = page_.Insert(std::string(300, 'b'));
  ASSERT_TRUE(a.ok() && b.ok());
  const uint32_t before = page_.FreeSpaceForNewRecord();
  ASSERT_TRUE(page_.Delete(a.value()).ok());
  EXPECT_GT(page_.FreeSpaceForNewRecord(), before);
  EXPECT_TRUE(page_.Read(a.value()).status().IsNotFound());
  // b survives compaction.
  EXPECT_EQ(page_.Read(b.value()).value(), std::string(300, 'b'));
}

TEST_F(SlottedPageTest, DeletedSlotIsReused) {
  auto a = page_.Insert("first");
  auto b = page_.Insert("second");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(page_.Delete(a.value()).ok());
  auto c = page_.Insert("third");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), a.value());  // slot reuse
  EXPECT_EQ(page_.Read(b.value()).value(), "second");
}

TEST_F(SlottedPageTest, DeleteLastSlotShrinksDirectory) {
  auto a = page_.Insert("a");
  auto b = page_.Insert("b");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(page_.Delete(b.value()).ok());
  EXPECT_EQ(page_.slot_count(), 1u);
}

TEST_F(SlottedPageTest, UpdateSameSizeInPlace) {
  auto slot = page_.Insert("0123456789");
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(page_.Update(slot.value(), "abcdefghij").ok());
  EXPECT_EQ(page_.Read(slot.value()).value(), "abcdefghij");
}

TEST_F(SlottedPageTest, UpdateGrowAndShrink) {
  auto a = page_.Insert("short");
  auto b = page_.Insert("neighbour");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(page_.Update(a.value(), std::string(500, 'G')).ok());
  EXPECT_EQ(page_.Read(a.value()).value(), std::string(500, 'G'));
  ASSERT_TRUE(page_.Update(a.value(), "tiny").ok());
  EXPECT_EQ(page_.Read(a.value()).value(), "tiny");
  EXPECT_EQ(page_.Read(b.value()).value(), "neighbour");
}

TEST_F(SlottedPageTest, UpdateThatCannotFitIsNonDestructive) {
  const std::string big(SlottedPage::MaxRecordSize(kDefaultPageSize) - 200, 'x');
  auto a = page_.Insert(big);
  auto b = page_.Insert(std::string(100, 'y'));
  ASSERT_TRUE(a.ok() && b.ok());
  // Growing b beyond the remaining space fails; both records are intact.
  auto st = page_.Update(b.value(), std::string(600, 'z'));
  EXPECT_TRUE(st.IsResourceExhausted());
  EXPECT_EQ(page_.Read(b.value()).value(), std::string(100, 'y'));
  EXPECT_EQ(page_.Read(a.value()).value(), big);
}

TEST_F(SlottedPageTest, RandomizedOpsAgainstReferenceModel) {
  Rng rng(2024);
  std::map<uint16_t, std::string> reference;
  for (int op = 0; op < 2000; ++op) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 50) {
      const std::string rec = rng.RandomString(rng.Uniform(120) + 1);
      auto slot = page_.Insert(rec);
      if (slot.ok()) reference[slot.value()] = rec;
    } else if (dice < 75 && !reference.empty()) {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      ASSERT_TRUE(page_.Delete(it->first).ok());
      reference.erase(it);
    } else if (!reference.empty()) {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      const std::string rec = rng.RandomString(rng.Uniform(150) + 1);
      Status st = page_.Update(it->first, rec);
      if (st.ok()) {
        it->second = rec;  // failed grows are non-destructive
      }
    }
    // Invariant: every reference record is readable and correct.
    for (const auto& [slot, rec] : reference) {
      auto got = page_.Read(slot);
      ASSERT_TRUE(got.ok()) << "op " << op << " slot " << slot;
      ASSERT_EQ(got.value(), rec) << "op " << op;
    }
    ASSERT_EQ(page_.live_count(), reference.size());
  }
}

}  // namespace
}  // namespace starfish
