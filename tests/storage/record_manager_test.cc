#include "storage/record_manager.h"

#include <gtest/gtest.h>

#include <map>

#include "storage/storage_engine.h"
#include "util/random.h"

namespace starfish {
namespace {

class RecordManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto seg = engine_.CreateSegment("records");
    ASSERT_TRUE(seg.ok());
    segment_ = seg.value();
    rm_ = std::make_unique<RecordManager>(segment_);
  }

  StorageEngine engine_;
  Segment* segment_ = nullptr;
  std::unique_ptr<RecordManager> rm_;
};

TEST_F(RecordManagerTest, InsertReadRoundTrip) {
  auto tid = rm_->Insert("payload");
  ASSERT_TRUE(tid.ok());
  auto rec = rm_->Read(tid.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value(), "payload");
}

TEST_F(RecordManagerTest, RecordsClusterOnPagesInInsertOrder) {
  // 100-byte records, ~19 per page: consecutive inserts share pages.
  std::vector<Tid> tids;
  for (int i = 0; i < 40; ++i) {
    auto tid = rm_->Insert(std::string(100, 'a' + i % 26));
    ASSERT_TRUE(tid.ok());
    tids.push_back(tid.value());
  }
  EXPECT_EQ(segment_->pages().size(), 3u);  // ceil(40 / 19)
  EXPECT_EQ(tids[0].page, tids[1].page);
  EXPECT_LE(tids.front().page, tids.back().page);
}

TEST_F(RecordManagerTest, TooLargeRecordRejected) {
  const std::string big(engine_.disk()->page_size(), 'x');
  EXPECT_TRUE(rm_->Insert(big).status().IsInvalidArgument());
}

TEST_F(RecordManagerTest, UpdateInPlaceSameSize) {
  auto tid = rm_->Insert("0123456789");
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(rm_->Update(tid.value(), "abcdefghij").ok());
  EXPECT_EQ(rm_->Read(tid.value()).value(), "abcdefghij");
  EXPECT_EQ(segment_->pages().size(), 1u);
}

TEST_F(RecordManagerTest, UpdateOverflowForwardsTidStaysValid) {
  // Fill the first page nearly full so a grown record cannot stay.
  auto victim = rm_->Insert(std::string(100, 'v'));
  ASSERT_TRUE(victim.ok());
  while (true) {
    auto tid = rm_->Insert(std::string(180, 'f'));
    ASSERT_TRUE(tid.ok());
    if (tid->page != victim->page) break;  // first page now full
  }
  const std::string grown(1500, 'G');
  ASSERT_TRUE(rm_->Update(victim.value(), grown).ok());
  // The original TID still reads the new payload (via forwarding).
  EXPECT_EQ(rm_->Read(victim.value()).value(), grown);
}

TEST_F(RecordManagerTest, ForwardedRecordCanBeUpdatedAgain) {
  auto victim = rm_->Insert(std::string(100, 'v'));
  ASSERT_TRUE(victim.ok());
  while (true) {
    auto tid = rm_->Insert(std::string(180, 'f'));
    ASSERT_TRUE(tid.ok());
    if (tid->page != victim->page) break;
  }
  ASSERT_TRUE(rm_->Update(victim.value(), std::string(1500, 'A')).ok());
  ASSERT_TRUE(rm_->Update(victim.value(), std::string(1500, 'B')).ok());
  EXPECT_EQ(rm_->Read(victim.value()).value(), std::string(1500, 'B'));
  ASSERT_TRUE(rm_->Update(victim.value(), std::string(1900, 'C')).ok());
  EXPECT_EQ(rm_->Read(victim.value()).value(), std::string(1900, 'C'));
}

TEST_F(RecordManagerTest, DeleteRemovesRecord) {
  auto tid = rm_->Insert("gone soon");
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(rm_->Delete(tid.value()).ok());
  EXPECT_TRUE(rm_->Read(tid.value()).status().IsNotFound());
}

TEST_F(RecordManagerTest, DeleteForwardedRecordRemovesBothPieces) {
  auto victim = rm_->Insert(std::string(100, 'v'));
  ASSERT_TRUE(victim.ok());
  while (true) {
    auto tid = rm_->Insert(std::string(180, 'f'));
    ASSERT_TRUE(tid.ok());
    if (tid->page != victim->page) break;
  }
  ASSERT_TRUE(rm_->Update(victim.value(), std::string(1500, 'Z')).ok());
  ASSERT_TRUE(rm_->Delete(victim.value()).ok());
  EXPECT_TRUE(rm_->Read(victim.value()).status().IsNotFound());
  // Scan must not surface any moved-payload orphan.
  int count = 0;
  for (PageId page : segment_->pages()) {
    ASSERT_TRUE(rm_->ForEachOnPage(page, [&](Tid, std::string_view rec) {
      EXPECT_EQ(rec[0], 'f');
      ++count;
      return Status::OK();
    }).ok());
  }
  EXPECT_GT(count, 0);
}

TEST_F(RecordManagerTest, ForEachOnPageVisitsForwardedAtHomeTid) {
  auto victim = rm_->Insert(std::string(100, 'v'));
  ASSERT_TRUE(victim.ok());
  while (true) {
    auto tid = rm_->Insert(std::string(180, 'f'));
    ASSERT_TRUE(tid.ok());
    if (tid->page != victim->page) break;
  }
  const std::string grown(1500, 'M');
  ASSERT_TRUE(rm_->Update(victim.value(), grown).ok());
  bool seen = false;
  for (PageId page : segment_->pages()) {
    ASSERT_TRUE(rm_->ForEachOnPage(page, [&](Tid tid, std::string_view rec) {
      if (tid == victim.value()) {
        seen = true;
        EXPECT_EQ(std::string(rec), grown);
      } else {
        EXPECT_NE(std::string(rec), grown);  // moved copy not re-reported
      }
      return Status::OK();
    }).ok());
  }
  EXPECT_TRUE(seen);
}

TEST_F(RecordManagerTest, RandomizedOpsAgainstReferenceModel) {
  Rng rng(77);
  std::map<uint64_t, std::string> reference;  // packed tid -> payload
  for (int op = 0; op < 3000; ++op) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 55) {
      const std::string rec = rng.RandomString(rng.Uniform(400) + 1);
      auto tid = rm_->Insert(rec);
      ASSERT_TRUE(tid.ok());
      reference[tid->Pack()] = rec;
    } else if (dice < 80 && !reference.empty()) {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      const std::string rec = rng.RandomString(rng.Uniform(900) + 1);
      ASSERT_TRUE(rm_->Update(Tid::Unpack(it->first), rec).ok());
      it->second = rec;
    } else if (!reference.empty()) {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      ASSERT_TRUE(rm_->Delete(Tid::Unpack(it->first)).ok());
      reference.erase(it);
    }
  }
  for (const auto& [packed, rec] : reference) {
    auto got = rm_->Read(Tid::Unpack(packed));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), rec);
  }
  // Full scan sees exactly the reference records.
  size_t scanned = 0;
  for (PageId page : segment_->pages()) {
    ASSERT_TRUE(rm_->ForEachOnPage(page, [&](Tid tid, std::string_view rec) {
      auto it = reference.find(tid.Pack());
      EXPECT_NE(it, reference.end());
      if (it != reference.end()) {
        EXPECT_EQ(it->second, std::string(rec));
      }
      ++scanned;
      return Status::OK();
    }).ok());
  }
  EXPECT_EQ(scanned, reference.size());
}

}  // namespace
}  // namespace starfish
