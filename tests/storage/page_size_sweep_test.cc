// Parameterized sweep: the record layouts and models must be correct for
// any page geometry, not just the DASDBS 2 KiB (the page-size ablation
// bench relies on this).

#include <gtest/gtest.h>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"
#include "models/model_factory.h"
#include "storage/complex_record.h"
#include "util/random.h"

namespace starfish {
namespace {

class PageSizeSweepTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  StorageEngineOptions Options() {
    StorageEngineOptions options;
    options.disk.page_size = GetParam();
    options.buffer.frame_count = 4096u * 1024u / GetParam();  // ~4 MiB pool
    return options;
  }
};

TEST_P(PageSizeSweepTest, ComplexRecordsRoundTrip) {
  StorageEngine engine(Options());
  auto segment = engine.CreateSegment("objs");
  ASSERT_TRUE(segment.ok());
  ComplexRecordStore store(segment.value());
  Rng rng(GetParam());
  std::vector<std::pair<Tid, std::vector<RecordRegion>>> stored;
  for (int i = 0; i < 60; ++i) {
    std::vector<RecordRegion> regions;
    const uint32_t n = 1 + rng.Uniform(10);
    for (uint32_t r = 0; r < n; ++r) {
      regions.push_back(RecordRegion{r, rng.RandomString(rng.Uniform(1200))});
    }
    auto tid = store.Insert(regions);
    ASSERT_TRUE(tid.ok()) << tid.status().ToString();
    stored.emplace_back(tid.value(), std::move(regions));
  }
  for (const auto& [tid, regions] : stored) {
    auto back = store.ReadAll(tid);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), regions);
  }
}

TEST_P(PageSizeSweepTest, RegionsRespectChunkGeometry) {
  StorageEngine engine(Options());
  auto segment = engine.CreateSegment("objs");
  ASSERT_TRUE(segment.ok());
  ComplexRecordStore store(segment.value());
  const uint32_t chunk = GetParam() - kPageHeaderSize;
  // Two regions of 60% chunk size each must land on separate data pages.
  const size_t region = chunk * 3 / 5;
  auto tid = store.Insert({RecordRegion{0, std::string(region, 'a')},
                           RecordRegion{1, std::string(region, 'b')},
                           RecordRegion{2, std::string(region, 'c')}});
  ASSERT_TRUE(tid.ok());
  auto info = store.GetInfo(tid.value());
  ASSERT_TRUE(info.ok());
  ASSERT_FALSE(info->is_small);
  EXPECT_EQ(info->data_pages, 3u);
}

TEST_P(PageSizeSweepTest, ModelsRoundTripTheBenchmark) {
  bench::GeneratorConfig config;
  config.n_objects = 25;
  config.seed = GetParam();
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  for (StorageModelKind kind :
       {StorageModelKind::kDsm, StorageModelKind::kDasdbsNsm}) {
    StorageEngine engine(Options());
    ModelConfig mc;
    mc.schema = db->schema();
    auto model = CreateStorageModel(kind, &engine, mc);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE(db->LoadInto(model->get(), &engine).ok());
    const Projection all = Projection::All(*db->schema());
    for (const auto& object : db->objects()) {
      auto got = (*model)->GetByRef(object.ref, all);
      ASSERT_TRUE(got.ok()) << ToString(kind) << " page " << GetParam();
      EXPECT_EQ(got.value(), object.tuple);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, PageSizeSweepTest,
                         ::testing::Values(512u, 1024u, 2048u, 4096u, 8192u),
                         [](const auto& info) {
                           return "page" + std::to_string(info.param);
                         });

TEST(ModelFactoryTest, CreatesEveryKind) {
  auto schema = bench::MakeStationSchema();
  for (StorageModelKind kind : AllStorageModelKinds()) {
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = schema;
    auto model = CreateStorageModel(kind, &engine, mc);
    ASSERT_TRUE(model.ok()) << ToString(kind);
    EXPECT_EQ((*model)->kind(), kind);
    EXPECT_EQ((*model)->object_count(), 0u);
  }
  EXPECT_EQ(AllStorageModelKinds().size(), 5u);
}

TEST(ModelFactoryTest, RejectsMissingSchema) {
  StorageEngine engine;
  EXPECT_FALSE(CreateStorageModel(StorageModelKind::kDsm, &engine,
                                  ModelConfig{}).ok());
}

}  // namespace
}  // namespace starfish
