#include "storage/complex_record.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "storage/storage_engine.h"
#include "util/random.h"

namespace starfish {
namespace {

std::vector<RecordRegion> MakeRegions(std::initializer_list<size_t> sizes,
                                      char fill = 'r') {
  std::vector<RecordRegion> regions;
  uint32_t tag = 0;
  for (size_t size : sizes) {
    regions.push_back(RecordRegion{tag++, std::string(size, fill)});
  }
  return regions;
}

class ComplexRecordTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto seg = engine_.CreateSegment("objects");
    ASSERT_TRUE(seg.ok());
    segment_ = seg.value();
    store_ = std::make_unique<ComplexRecordStore>(segment_);
  }

  StorageEngine engine_;
  Segment* segment_ = nullptr;
  std::unique_ptr<ComplexRecordStore> store_;
};

TEST_F(ComplexRecordTest, SmallRecordRoundTrip) {
  const auto regions = MakeRegions({50, 120, 7});
  auto tid = store_->Insert(regions);
  ASSERT_TRUE(tid.ok());
  EXPECT_FALSE(tid->is_complex());
  auto back = store_->ReadAll(tid.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), regions);
}

TEST_F(ComplexRecordTest, SmallRecordsSharePages) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store_->Insert(MakeRegions({100})).ok());
  }
  EXPECT_EQ(segment_->pages().size(), 1u);
}

TEST_F(ComplexRecordTest, LargeRecordGetsHeaderAndDataPages) {
  const auto regions = MakeRegions({112, 116, 118, 118, 404, 404, 404, 404,
                                    404, 404, 404, 404});  // ~3.7 KB
  auto tid = store_->Insert(regions);
  ASSERT_TRUE(tid.ok());
  EXPECT_TRUE(tid->is_complex());
  auto info = store_->GetInfo(tid.value());
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->is_small);
  EXPECT_EQ(info->header_pages, 1u);
  // 464-byte prefix + 8 x 404 bytes with no-straddle padding -> 3 chunks.
  EXPECT_EQ(info->data_pages, 3u);
  auto back = store_->ReadAll(tid.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), regions);
}

TEST_F(ComplexRecordTest, RegionsDoNotStraddlePages) {
  // Two regions of 1100 bytes each: each must start on its own chunk.
  const auto regions = MakeRegions({1100, 1100});
  auto tid = store_->Insert(regions);
  ASSERT_TRUE(tid.ok());
  auto info = store_->GetInfo(tid.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->data_pages, 2u);  // 1100 + pad + 1100
  auto back = store_->ReadAll(tid.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), regions);
}

TEST_F(ComplexRecordTest, OversizedRegionSpansPages) {
  const auto regions = MakeRegions({5000});
  auto tid = store_->Insert(regions);
  ASSERT_TRUE(tid.ok());
  auto info = store_->GetInfo(tid.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->data_pages, 3u);  // ceil(5000 / 2012)
  auto back = store_->ReadAll(tid.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), regions);
}

TEST_F(ComplexRecordTest, ReadPartialSelectsByTag) {
  auto regions = MakeRegions({100, 600, 600, 600});
  regions[0].tag = 0;
  regions[1].tag = 1;
  regions[2].tag = 1;
  regions[3].tag = 2;
  auto tid = store_->Insert(regions);
  ASSERT_TRUE(tid.ok());
  auto part = store_->ReadPartial(tid.value(),
                                  [](uint32_t tag) { return tag == 1; });
  ASSERT_TRUE(part.ok());
  ASSERT_EQ(part->size(), 2u);
  EXPECT_EQ((*part)[0], regions[1]);
  EXPECT_EQ((*part)[1], regions[2]);
}

TEST_F(ComplexRecordTest, PartialReadTouchesFewerPagesThanFullRead) {
  // Root region on data page 0, big tail regions on pages 1..3.
  auto regions = MakeRegions({100, 1800, 1800, 1800});
  for (uint32_t i = 0; i < regions.size(); ++i) regions[i].tag = i;
  auto tid = store_->Insert(regions);
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(engine_.DropCache().ok());
  engine_.ResetStats();
  ASSERT_TRUE(store_
                  ->ReadPartial(tid.value(),
                                [](uint32_t tag) { return tag == 0; })
                  .ok());
  const uint64_t partial_pages = engine_.stats().io.pages_read;
  ASSERT_TRUE(engine_.DropCache().ok());
  engine_.ResetStats();
  ASSERT_TRUE(store_->ReadAll(tid.value()).ok());
  const uint64_t full_pages = engine_.stats().io.pages_read;
  EXPECT_EQ(partial_pages, 2u);  // header + first data page
  EXPECT_EQ(full_pages, 4u);     // header + 3 data pages (100+1800 share)
}

TEST_F(ComplexRecordTest, DasdbsCallPattern) {
  // Root page, then data pages: full cold read of a 1-header record costs
  // exactly two read calls (root, chained data).
  auto tid = store_->Insert(MakeRegions({1800, 1800, 1800}));
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(engine_.DropCache().ok());
  engine_.ResetStats();
  ASSERT_TRUE(store_->ReadAll(tid.value()).ok());
  EXPECT_EQ(engine_.stats().io.read_calls, 2u);
  EXPECT_EQ(engine_.stats().io.pages_read, 4u);
}

TEST_F(ComplexRecordTest, ManyRegionsSpillIntoExtensionHeaders) {
  // 200 regions -> directory > root page capacity (166 entries).
  std::vector<RecordRegion> regions;
  for (uint32_t i = 0; i < 200; ++i) {
    regions.push_back(RecordRegion{i, std::string(20, 'x')});
  }
  auto tid = store_->Insert(regions);
  ASSERT_TRUE(tid.ok());
  auto info = store_->GetInfo(tid.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->header_pages, 2u);
  auto back = store_->ReadAll(tid.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), regions);
}

TEST_F(ComplexRecordTest, ReplaceInPlaceKeepsTid) {
  auto tid = store_->Insert(MakeRegions({1800, 1800}));
  ASSERT_TRUE(tid.ok());
  const auto regions2 = MakeRegions({1700, 1900}, 'n');
  auto tid2 = store_->Replace(tid.value(), regions2);
  ASSERT_TRUE(tid2.ok());
  EXPECT_EQ(tid2.value(), tid.value());
  EXPECT_EQ(store_->ReadAll(tid.value()).value(), regions2);
}

TEST_F(ComplexRecordTest, ReplaceGrowingRecordKeepsTid) {
  auto tid = store_->Insert(MakeRegions({1800, 1800}));
  ASSERT_TRUE(tid.ok());
  const auto bigger = MakeRegions({1800, 1800, 1800, 1800, 1800}, 'g');
  auto tid2 = store_->Replace(tid.value(), bigger);
  ASSERT_TRUE(tid2.ok());
  EXPECT_EQ(tid2.value(), tid.value());  // root page is the stable anchor
  EXPECT_EQ(store_->ReadAll(tid.value()).value(), bigger);
}

TEST_F(ComplexRecordTest, ReplaceSmallInPlace) {
  auto tid = store_->Insert(MakeRegions({50, 50}));
  ASSERT_TRUE(tid.ok());
  const auto regions2 = MakeRegions({60, 40}, 'w');
  auto tid2 = store_->Replace(tid.value(), regions2);
  ASSERT_TRUE(tid2.ok());
  EXPECT_EQ(tid2.value(), tid.value());
  EXPECT_EQ(store_->ReadAll(tid.value()).value(), regions2);
}

TEST_F(ComplexRecordTest, ReplaceSmallToLargeChangesTid) {
  auto tid = store_->Insert(MakeRegions({50}));
  ASSERT_TRUE(tid.ok());
  const auto big = MakeRegions({1500, 1500}, 'L');
  auto tid2 = store_->Replace(tid.value(), big);
  ASSERT_TRUE(tid2.ok());
  EXPECT_NE(tid2.value(), tid.value());
  EXPECT_TRUE(tid2->is_complex());
  EXPECT_EQ(store_->ReadAll(tid2.value()).value(), big);
  EXPECT_FALSE(store_->ReadAll(tid.value()).ok());
}

TEST_F(ComplexRecordTest, UpdateRegionSameLengthInPlace) {
  auto regions = MakeRegions({100, 1800, 1800});
  auto tid = store_->Insert(regions);
  ASSERT_TRUE(tid.ok());
  const std::string patch(100, 'P');
  auto same_tid = store_->UpdateRegion(tid.value(), 0, 0, patch);
  ASSERT_TRUE(same_tid.ok());
  EXPECT_EQ(same_tid.value(), tid.value());
  auto back = store_->ReadAll(tid.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].bytes, patch);
  EXPECT_EQ((*back)[1], regions[1]);
}

TEST_F(ComplexRecordTest, UpdateRegionDifferentLengthRebuilds) {
  auto regions = MakeRegions({100, 1800});
  auto tid = store_->Insert(regions);
  ASSERT_TRUE(tid.ok());
  const std::string patch(250, 'Q');
  auto new_tid = store_->UpdateRegion(tid.value(), 0, 0, patch);
  ASSERT_TRUE(new_tid.ok()) << new_tid.status().ToString();
  auto back = store_->ReadAll(new_tid.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].bytes, patch);
}

TEST_F(ComplexRecordTest, UpdateRegionOnSmallRecord) {
  auto regions = MakeRegions({40, 40});
  auto tid = store_->Insert(regions);
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(store_->UpdateRegion(tid.value(), 1, 0, std::string(40, 'U')).ok());

  auto back = store_->ReadAll(tid.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[1].bytes, std::string(40, 'U'));
}

TEST_F(ComplexRecordTest, UpdateRegionUnknownTagFails) {
  auto tid = store_->Insert(MakeRegions({40}));
  ASSERT_TRUE(tid.ok());
  EXPECT_TRUE(store_->UpdateRegion(tid.value(), 99, 0, "x").status().IsNotFound());
}

TEST_F(ComplexRecordTest, PagePoolWritesOnEveryChangeAttribute) {
  ComplexStoreOptions options;
  options.change_attr_page_pool = 1;
  auto seg = engine_.CreateSegment("pooled");
  ASSERT_TRUE(seg.ok());
  ComplexRecordStore pooled(seg.value(), options);
  auto tid = pooled.Insert(MakeRegions({100, 1800}));
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(engine_.Flush().ok());
  engine_.ResetStats();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pooled.UpdateRegion(tid.value(), 0, 0,
                                    std::string(100, 'a' + i)).ok());
  }
  // Each change-attribute op writes the one-page pool immediately (§5.3).
  EXPECT_GE(engine_.stats().io.pages_written, 5u);
  EXPECT_GE(engine_.stats().io.write_calls, 5u);
}

TEST_F(ComplexRecordTest, DeleteSmallRecord) {
  auto tid = store_->Insert(MakeRegions({30}));
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(store_->Delete(tid.value()).ok());
  EXPECT_FALSE(store_->ReadAll(tid.value()).ok());
}

TEST_F(ComplexRecordTest, DeleteLargeRecordFreesPages) {
  auto tid = store_->Insert(MakeRegions({1800, 1800, 1800}));
  ASSERT_TRUE(tid.ok());
  const uint64_t live_before = engine_.disk()->live_page_count();
  ASSERT_TRUE(store_->Delete(tid.value()).ok());
  EXPECT_EQ(engine_.disk()->live_page_count(), live_before - 4);
}

TEST_F(ComplexRecordTest, ScanVisitsEveryRecordInOrder) {
  std::vector<Tid> tids;
  for (int i = 0; i < 8; ++i) {
    // Mix small and large records.
    auto tid = store_->Insert(i % 2 == 0 ? MakeRegions({100})
                                         : MakeRegions({1800, 1800}));
    ASSERT_TRUE(tid.ok());
    tids.push_back(tid.value());
  }
  std::vector<Tid> seen;
  ASSERT_TRUE(store_->ScanObjects(
      [&](Tid tid, const std::vector<RecordRegion>& regions) {
        EXPECT_FALSE(regions.empty());
        seen.push_back(tid);
        return Status::OK();
      }).ok());
  // Scans visit records in physical order (page, then slot).
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(seen, tids);
}

TEST_F(ComplexRecordTest, ForceLargeOption) {
  ComplexStoreOptions options;
  options.force_large = true;
  auto seg = engine_.CreateSegment("forced");
  ASSERT_TRUE(seg.ok());
  ComplexRecordStore forced(seg.value(), options);
  auto tid = forced.Insert(MakeRegions({10}));
  ASSERT_TRUE(tid.ok());
  EXPECT_TRUE(tid->is_complex());
}

TEST_F(ComplexRecordTest, RandomizedRoundTrips) {
  Rng rng(4242);
  std::vector<std::pair<Tid, std::vector<RecordRegion>>> stored;
  for (int i = 0; i < 120; ++i) {
    std::vector<RecordRegion> regions;
    const uint32_t n = 1 + rng.Uniform(12);
    for (uint32_t r = 0; r < n; ++r) {
      regions.push_back(RecordRegion{
          static_cast<uint32_t>(rng.Uniform(4)),
          rng.RandomString(rng.Uniform(900))});
    }
    auto tid = store_->Insert(regions);
    ASSERT_TRUE(tid.ok());
    stored.emplace_back(tid.value(), std::move(regions));
  }
  // Replace a third of them.
  for (size_t i = 0; i < stored.size(); i += 3) {
    std::vector<RecordRegion> regions;
    const uint32_t n = 1 + rng.Uniform(8);
    for (uint32_t r = 0; r < n; ++r) {
      regions.push_back(RecordRegion{r, rng.RandomString(rng.Uniform(1200))});
    }
    auto tid = store_->Replace(stored[i].first, regions);
    ASSERT_TRUE(tid.ok());
    stored[i] = {tid.value(), std::move(regions)};
  }
  for (const auto& [tid, regions] : stored) {
    auto back = store_->ReadAll(tid);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), regions);
  }
}

}  // namespace
}  // namespace starfish
