#include "storage/storage_engine.h"

#include <gtest/gtest.h>

namespace starfish {
namespace {

TEST(StorageEngineTest, CreateAndLookupSegments) {
  StorageEngine engine;
  auto a = engine.CreateSegment("alpha");
  auto b = engine.CreateSegment("beta");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(engine.GetSegment("alpha"), a.value());
  EXPECT_EQ(engine.GetSegment("beta"), b.value());
  EXPECT_EQ(engine.GetSegment("gamma"), nullptr);
  EXPECT_EQ(engine.segments().size(), 2u);
  EXPECT_NE(a.value()->id(), b.value()->id());
}

TEST(StorageEngineTest, DuplicateSegmentNameRejected) {
  StorageEngine engine;
  ASSERT_TRUE(engine.CreateSegment("dup").ok());
  EXPECT_TRUE(engine.CreateSegment("dup").status().IsAlreadyExists());
}

TEST(StorageEngineTest, StatsCombineDiskAndBuffer) {
  StorageEngine engine;
  auto seg = engine.CreateSegment("s");
  ASSERT_TRUE(seg.ok());
  auto page = seg.value()->AllocatePage(PageType::kSlotted);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.DropCache().ok());
  engine.ResetStats();
  { auto g = engine.buffer()->Fix(page.value()); ASSERT_TRUE(g.ok()); }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.buffer.fixes, 1u);
  EXPECT_EQ(stats.io.pages_read, 1u);
}

TEST(StorageEngineTest, DropCacheMakesNextAccessCold) {
  StorageEngine engine;
  auto seg = engine.CreateSegment("s");
  ASSERT_TRUE(seg.ok());
  auto page = seg.value()->AllocatePage(PageType::kSlotted);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(engine.DropCache().ok());
  engine.ResetStats();
  { auto g = engine.buffer()->Fix(page.value()); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(engine.stats().io.pages_read, 1u);
  engine.ResetStats();
  { auto g = engine.buffer()->Fix(page.value()); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(engine.stats().io.pages_read, 0u);  // warm now
}

TEST(StorageEngineTest, SegmentFreeHintsTrackInserts) {
  StorageEngine engine;
  auto seg_result = engine.CreateSegment("hints");
  ASSERT_TRUE(seg_result.ok());
  Segment* seg = seg_result.value();
  auto page = seg->AllocatePage(PageType::kSlotted);
  ASSERT_TRUE(page.ok());
  const uint32_t initial = seg->FreeHint(page.value());
  EXPECT_GT(initial, 1900u);
  seg->SetFreeHint(page.value(), 10);
  EXPECT_EQ(seg->FreeHint(page.value()), 10u);
  EXPECT_EQ(seg->FindSlottedPageWithSpace(11), kInvalidPageId);
  EXPECT_EQ(seg->FindSlottedPageWithSpace(10), page.value());
}

TEST(StorageEngineTest, FreePagesRemovesFromSegment) {
  StorageEngine engine;
  auto seg_result = engine.CreateSegment("free");
  ASSERT_TRUE(seg_result.ok());
  Segment* seg = seg_result.value();
  auto first = seg->AllocateRun(3, PageType::kComplexData);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(seg->pages().size(), 3u);
  ASSERT_TRUE(seg->FreePages({first.value() + 1}).ok());
  EXPECT_EQ(seg->pages().size(), 2u);
  EXPECT_TRUE(seg->FreePages({999}).IsNotFound());
}

TEST(StorageEngineTest, CustomGeometry) {
  StorageEngineOptions options;
  options.disk.page_size = 1024;
  options.buffer.frame_count = 8;
  StorageEngine engine(options);
  EXPECT_EQ(engine.disk()->page_size(), 1024u);
  EXPECT_EQ(engine.buffer()->frame_count(), 8u);
}

TEST(StorageEngineTest, DefaultBackendIsMemAndUntimed) {
  StorageEngine engine;
  EXPECT_TRUE(engine.init_status().ok());
  EXPECT_EQ(engine.disk()->kind(), VolumeKind::kMem);
  EXPECT_EQ(engine.timed_volume(), nullptr);
}

TEST(StorageEngineTest, OpenPropagatesBackendFailure) {
  StorageEngineOptions options;
  options.backend = VolumeKind::kMmap;  // no path -> invalid
  auto engine = StorageEngine::Open(options);
  EXPECT_FALSE(engine.ok());
  // The constructor survives by falling back to the mem backend, but
  // records the failure.
  StorageEngine fallback(options);
  EXPECT_FALSE(fallback.init_status().ok());
  EXPECT_EQ(fallback.disk()->kind(), VolumeKind::kMem);
}

TEST(StorageEngineTest, OpenOrCreateSegmentReusesExisting) {
  StorageEngine engine;
  auto a = engine.OpenOrCreateSegment("seg");
  ASSERT_TRUE(a.ok());
  auto b = engine.OpenOrCreateSegment("seg");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(engine.segments().size(), 1u);
}

TEST(StorageEngineTest, TimedEngineChargesVolumeTraffic) {
  StorageEngineOptions options;
  options.timed = true;
  options.timing = LinearTimingModel{10.0, 2.0};
  StorageEngine engine(options);
  ASSERT_NE(engine.timed_volume(), nullptr);
  auto seg = engine.CreateSegment("t");
  ASSERT_TRUE(seg.ok());
  auto page = seg.value()->AllocatePage(PageType::kSlotted);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.DropCache().ok());
  engine.ResetStats();
  EXPECT_EQ(engine.timed_volume()->elapsed_ms(), 0.0);
  { auto g = engine.buffer()->Fix(page.value()); ASSERT_TRUE(g.ok()); }
  // One cold single-page read: d1 + 1 * d2.
  EXPECT_DOUBLE_EQ(engine.timed_volume()->elapsed_ms(), 12.0);
}

TEST(StorageEngineTest, SegmentCatalogRoundTrips) {
  StorageEngine engine;
  auto a = engine.CreateSegment("first");
  auto b = engine.CreateSegment("second");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a.value()->AllocateRun(3, PageType::kSlotted).ok());
  ASSERT_TRUE(b.value()->AllocatePage(PageType::kComplexHeader).ok());

  std::string catalog;
  engine.SaveCatalog(&catalog);

  StorageEngine restored;
  std::string_view in(catalog);
  ASSERT_TRUE(restored.LoadCatalog(&in).ok());
  EXPECT_TRUE(in.empty());  // fully consumed
  Segment* first = restored.GetSegment("first");
  Segment* second = restored.GetSegment("second");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->pages(), a.value()->pages());
  EXPECT_EQ(second->pages(), b.value()->pages());
  EXPECT_EQ(first->FreeHint(first->pages()[0]),
            a.value()->FreeHint(a.value()->pages()[0]));
  EXPECT_EQ(second->TypeHint(second->pages()[0]), PageType::kComplexHeader);
}

TEST(StorageEngineTest, TruncatedCatalogRejected) {
  StorageEngine engine;
  auto a = engine.CreateSegment("seg");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a.value()->AllocateRun(2, PageType::kSlotted).ok());
  std::string catalog;
  engine.SaveCatalog(&catalog);

  StorageEngine restored;
  std::string_view truncated(catalog.data(), catalog.size() / 2);
  EXPECT_TRUE(restored.LoadCatalog(&truncated).IsCorruption());
}

}  // namespace
}  // namespace starfish
