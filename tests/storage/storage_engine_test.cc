#include "storage/storage_engine.h"

#include <gtest/gtest.h>

namespace starfish {
namespace {

TEST(StorageEngineTest, CreateAndLookupSegments) {
  StorageEngine engine;
  auto a = engine.CreateSegment("alpha");
  auto b = engine.CreateSegment("beta");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(engine.GetSegment("alpha"), a.value());
  EXPECT_EQ(engine.GetSegment("beta"), b.value());
  EXPECT_EQ(engine.GetSegment("gamma"), nullptr);
  EXPECT_EQ(engine.segments().size(), 2u);
  EXPECT_NE(a.value()->id(), b.value()->id());
}

TEST(StorageEngineTest, DuplicateSegmentNameRejected) {
  StorageEngine engine;
  ASSERT_TRUE(engine.CreateSegment("dup").ok());
  EXPECT_TRUE(engine.CreateSegment("dup").status().IsAlreadyExists());
}

TEST(StorageEngineTest, StatsCombineDiskAndBuffer) {
  StorageEngine engine;
  auto seg = engine.CreateSegment("s");
  ASSERT_TRUE(seg.ok());
  auto page = seg.value()->AllocatePage(PageType::kSlotted);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.DropCache().ok());
  engine.ResetStats();
  { auto g = engine.buffer()->Fix(page.value()); ASSERT_TRUE(g.ok()); }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.buffer.fixes, 1u);
  EXPECT_EQ(stats.io.pages_read, 1u);
}

TEST(StorageEngineTest, DropCacheMakesNextAccessCold) {
  StorageEngine engine;
  auto seg = engine.CreateSegment("s");
  ASSERT_TRUE(seg.ok());
  auto page = seg.value()->AllocatePage(PageType::kSlotted);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(engine.DropCache().ok());
  engine.ResetStats();
  { auto g = engine.buffer()->Fix(page.value()); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(engine.stats().io.pages_read, 1u);
  engine.ResetStats();
  { auto g = engine.buffer()->Fix(page.value()); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(engine.stats().io.pages_read, 0u);  // warm now
}

TEST(StorageEngineTest, SegmentFreeHintsTrackInserts) {
  StorageEngine engine;
  auto seg_result = engine.CreateSegment("hints");
  ASSERT_TRUE(seg_result.ok());
  Segment* seg = seg_result.value();
  auto page = seg->AllocatePage(PageType::kSlotted);
  ASSERT_TRUE(page.ok());
  const uint32_t initial = seg->FreeHint(page.value());
  EXPECT_GT(initial, 1900u);
  seg->SetFreeHint(page.value(), 10);
  EXPECT_EQ(seg->FreeHint(page.value()), 10u);
  EXPECT_EQ(seg->FindSlottedPageWithSpace(11), kInvalidPageId);
  EXPECT_EQ(seg->FindSlottedPageWithSpace(10), page.value());
}

TEST(StorageEngineTest, FreePagesRemovesFromSegment) {
  StorageEngine engine;
  auto seg_result = engine.CreateSegment("free");
  ASSERT_TRUE(seg_result.ok());
  Segment* seg = seg_result.value();
  auto first = seg->AllocateRun(3, PageType::kComplexData);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(seg->pages().size(), 3u);
  ASSERT_TRUE(seg->FreePages({first.value() + 1}).ok());
  EXPECT_EQ(seg->pages().size(), 2u);
  EXPECT_TRUE(seg->FreePages({999}).IsNotFound());
}

TEST(StorageEngineTest, CustomGeometry) {
  StorageEngineOptions options;
  options.disk.page_size = 1024;
  options.buffer.frame_count = 8;
  StorageEngine engine(options);
  EXPECT_EQ(engine.disk()->page_size(), 1024u);
  EXPECT_EQ(engine.buffer()->frame_count(), 8u);
}

}  // namespace
}  // namespace starfish
