// Parallel segment applies: with a striped direct model
// (StoreOptions::write_stripes > 1) ops on refs in different stripes hold
// disjoint write-latch sets and run the whole apply + append + stamp path
// concurrently. These tests drive that path from racing threads — run
// under TSan by ci/check.sh — and pin the striped layout's persistence
// rules (reopen with the wrong stripe count must refuse).

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/generator.h"
#include "core/complex_object_store.h"
#include "tools/fsck.h"

namespace starfish {
namespace {

constexpr uint32_t kStripes = 4;
constexpr size_t kPerWriter = 12;

class ParallelApplyMtTest
    : public ::testing::TestWithParam<StorageModelKind> {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_papply_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    bench::GeneratorConfig config;
    config.n_objects = kStripes * kPerWriter;
    config.seed = 401;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  StoreOptions Options(WalSyncPolicy sync) {
    StoreOptions options;
    options.model = GetParam();
    options.backend = VolumeKind::kMmap;
    options.path = dir_;
    options.write_stripes = kStripes;
    options.buffer_shards = 4;
    options.wal_sync = sync;
    return options;
  }

  /// kStripes threads, writer w owning exactly the refs ≡ w (mod
  /// kStripes): every pair of concurrent ops holds disjoint latch sets.
  void RaceWriters(ComplexObjectStore* store) {
    std::vector<std::thread> writers;
    writers.reserve(kStripes);
    for (uint32_t w = 0; w < kStripes; ++w) {
      writers.emplace_back([&, w] {
        for (size_t i = 0; i < db_->objects().size(); ++i) {
          const auto& object = db_->objects()[i];
          if (object.ref % kStripes != w) continue;
          ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
        }
      });
    }
    for (std::thread& t : writers) t.join();
  }

  void VerifyAll(ComplexObjectStore* store) {
    for (const auto& object : db_->objects()) {
      auto got = store->Get(object.ref);
      ASSERT_TRUE(got.ok()) << "ref " << object.ref << ": "
                            << got.status().ToString();
      EXPECT_EQ(got.value(), object.tuple) << "ref " << object.ref;
    }
  }

  std::string dir_;
  std::unique_ptr<bench::BenchmarkDatabase> db_;
};

TEST_P(ParallelApplyMtTest, DisjointStripeWritersRaceCleanly) {
  {
    auto store_or =
        ComplexObjectStore::Open(db_->schema(), Options(WalSyncPolicy::kNone));
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    RaceWriters(store.get());
    VerifyAll(store.get());
    ASSERT_TRUE(store->Close().ok());
  }
  // The parallel applies left a recoverable, checkable image behind.
  auto store_or =
      ComplexObjectStore::Open(db_->schema(), Options(WalSyncPolicy::kNone));
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();
  VerifyAll(store.get());
  ASSERT_TRUE(store->Close().ok());
  store.reset();
  auto report = RunFsck(dir_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean()) << report.value().ToString();
}

// Same race under kAlways: parallel applies feed the shared group-commit
// log, every ack is a durable record.
TEST_P(ParallelApplyMtTest, ParallelAppliesShareGroupCommit) {
  auto store_or =
      ComplexObjectStore::Open(db_->schema(), Options(WalSyncPolicy::kAlways));
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();
  RaceWriters(store.get());
  VerifyAll(store.get());
  ASSERT_TRUE(store->Close().ok());
}

// Racing transactions on disjoint stripes: each writer wraps its slice in
// one transaction; half commit, half roll back. Committed slices survive,
// rolled-back slices vanish — under full concurrency.
TEST_P(ParallelApplyMtTest, ConcurrentTransactionsOnDisjointStripes) {
  auto store_or =
      ComplexObjectStore::Open(db_->schema(), Options(WalSyncPolicy::kAlways));
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();
  std::vector<std::thread> writers;
  for (uint32_t w = 0; w < kStripes; ++w) {
    writers.emplace_back([&, w] {
      auto txn_or = store->Begin();
      ASSERT_TRUE(txn_or.ok());
      auto txn = std::move(txn_or).value();
      for (size_t i = 0; i < db_->objects().size(); ++i) {
        const auto& object = db_->objects()[i];
        if (object.ref % kStripes != w) continue;
        ASSERT_TRUE(txn.Put(object.ref, object.tuple).ok());
      }
      if (w % 2 == 0) {
        ASSERT_TRUE(txn.Commit().ok());
      } else {
        ASSERT_TRUE(txn.Rollback().ok());
      }
    });
  }
  for (std::thread& t : writers) t.join();
  for (const auto& object : db_->objects()) {
    auto got = store->Get(object.ref);
    if (object.ref % kStripes % 2 == 0) {
      ASSERT_TRUE(got.ok()) << "committed ref " << object.ref << " lost";
      EXPECT_EQ(got.value(), object.tuple);
    } else {
      EXPECT_FALSE(got.ok())
          << "rolled-back ref " << object.ref << " survived";
    }
  }
  ASSERT_TRUE(store->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(DirectModels, ParallelApplyMtTest,
                         ::testing::Values(StorageModelKind::kDsm,
                                           StorageModelKind::kDasdbsDsm),
                         [](const ::testing::TestParamInfo<StorageModelKind>&
                                info) {
                           return info.param == StorageModelKind::kDsm
                                      ? "dsm"
                                      : "dasdbs_dsm";
                         });

// ------------------------------------------------- striped persistence --

class StripedDirectStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_striped_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    bench::GeneratorConfig config;
    config.n_objects = 16;
    config.seed = 919;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  StoreOptions Options(uint32_t stripes) {
    StoreOptions options;
    options.model = StorageModelKind::kDsm;
    options.backend = VolumeKind::kMmap;
    options.path = dir_;
    options.write_stripes = stripes;
    return options;
  }

  std::string dir_;
  std::unique_ptr<bench::BenchmarkDatabase> db_;
};

TEST_F(StripedDirectStoreTest, ReopenWithTheSameStripeCountRestoresAll) {
  {
    auto store_or = ComplexObjectStore::Open(db_->schema(), Options(4));
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    for (const auto& object : db_->objects()) {
      ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
    }
    ASSERT_TRUE(store->Close().ok());
  }
  auto store_or = ComplexObjectStore::Open(db_->schema(), Options(4));
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();
  for (const auto& object : db_->objects()) {
    auto got = store->Get(object.ref);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), object.tuple);
  }
  ASSERT_TRUE(store->Close().ok());
  store.reset();
  auto report = RunFsck(dir_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean()) << report.value().ToString();
}

TEST_F(StripedDirectStoreTest, ReopenWithADifferentStripeCountRefuses) {
  {
    auto store_or = ComplexObjectStore::Open(db_->schema(), Options(4));
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    for (const auto& object : db_->objects()) {
      ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
    }
    ASSERT_TRUE(store->Close().ok());
  }
  for (uint32_t wrong : {1u, 2u}) {
    auto store_or = ComplexObjectStore::Open(db_->schema(), Options(wrong));
    ASSERT_FALSE(store_or.ok())
        << "stripe count " << wrong << " accepted against a 4-stripe store";
    EXPECT_TRUE(store_or.status().IsInvalidArgument())
        << store_or.status().ToString();
  }
  // The refusals were read-only: the right count still opens clean.
  auto store_or = ComplexObjectStore::Open(db_->schema(), Options(4));
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  EXPECT_TRUE(store_or.value()->Get(db_->objects()[0].ref).ok());
}

}  // namespace
}  // namespace starfish
