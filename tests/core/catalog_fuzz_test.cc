// Property-style fuzz test of the catalog-generation round trip.
//
// Property: for ANY store contents and ANY single-file corruption of the
// newest catalog generation (byte flips, truncation), reopening either
// falls back to the previous committed generation — recovering exactly its
// contents — or fails cleanly with Corruption. It never parses garbage,
// never loses an OLDER committed generation, and never reuses a generation
// number.
//
// Everything is seeded (std::mt19937, base seed from STARFISH_SEED or a
// fixed default); nothing reads the wall clock, so failures replay exactly:
//
//   STARFISH_SEED=<printed seed> ./starfish_tests --gtest_filter='*CatalogFuzz*'

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>
#include <string>

#include "../support/env_seed.h"
#include "benchmark/generator.h"
#include "core/complex_object_store.h"
#include "core/generations.h"
#include "tools/fsck.h"

namespace starfish {
namespace {

constexpr uint32_t kDefaultSeed = 20260728;
constexpr int kIterations = 20;

/// STARFISH_SEED if set, else the fixed default.
uint32_t BaseSeed() {
  return static_cast<uint32_t>(test::TestSeed(kDefaultSeed));
}

class CatalogFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_catalog_fuzz_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  StoreOptions Options(StorageModelKind kind) {
    StoreOptions options;
    options.model = kind;
    options.backend = VolumeKind::kMmap;
    options.path = dir_;
    return options;
  }

  /// Flips one byte (guaranteed to change) or truncates the file, per
  /// `rng`. Returns a description for failure messages.
  std::string CorruptFile(const std::string& path, std::mt19937* rng) {
    const auto size = std::filesystem::file_size(path);
    if ((*rng)() % 3 == 0) {
      const auto keep = (*rng)() % size;  // 0 .. size-1: always loses bytes
      std::filesystem::resize_file(path, keep);
      return "truncate to " + std::to_string(keep) + "/" +
             std::to_string(size) + " bytes";
    }
    const long offset = static_cast<long>((*rng)() % size);
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    EXPECT_NE(f, nullptr);
    std::fseek(f, offset, SEEK_SET);
    const int original = std::fgetc(f);
    const int flip = 1 + static_cast<int>((*rng)() % 255);  // never 0
    std::fseek(f, offset, SEEK_SET);
    std::fputc(original ^ flip, f);
    std::fclose(f);
    return "flip byte " + std::to_string(offset) + " of " +
           std::to_string(size);
  }

  std::string dir_;
};

TEST_F(CatalogFuzzTest, CorruptNewestGenerationFallsBackOrFailsCleanly) {
  const uint32_t base = BaseSeed();
  const auto kinds = AllStorageModelKinds();
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    std::mt19937 rng(base + iteration);
    const StorageModelKind kind = kinds[iteration % kinds.size()];
    const size_t n1 = 3 + rng() % 6;
    const size_t n2 = 3 + rng() % 6;
    SCOPED_TRACE("STARFISH_SEED=" + std::to_string(base) + " iteration " +
                 std::to_string(iteration) + " model " + ToString(kind) +
                 " n1=" + std::to_string(n1) + " n2=" + std::to_string(n2));
    std::filesystem::remove_all(dir_);

    bench::GeneratorConfig config;
    config.n_objects = static_cast<uint32_t>(n1 + n2);
    config.seed = base + iteration;
    auto db_or = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db_or.ok());
    const auto db = std::move(db_or).value();
    const bool by_ref = kind != StorageModelKind::kNsm;

    // Two committed generations: gen 1 = batch 1, gen 2 = batches 1+2.
    {
      auto store = ComplexObjectStore::Open(db.schema(), Options(kind)).value();
      for (size_t i = 0; i < n1; ++i) {
        ASSERT_TRUE(store->Put(db.objects()[i].ref, db.objects()[i].tuple).ok());
      }
      ASSERT_TRUE(store->Flush().ok());
      for (size_t i = n1; i < n1 + n2; ++i) {
        ASSERT_TRUE(store->Put(db.objects()[i].ref, db.objects()[i].tuple).ok());
      }
      ASSERT_TRUE(store->Flush().ok());
      EXPECT_EQ(store->catalog_generation(), 2u);
    }  // clean close: nothing dirty, no extra generation churned

    const std::string corruption =
        CorruptFile(CatalogGenerationPath(dir_, 2), &rng);
    SCOPED_TRACE(corruption);

    // Reopen: the checksum rejects generation 2, generation 1 loads.
    {
      auto store_or = ComplexObjectStore::Open(db.schema(), Options(kind));
      ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
      auto store = std::move(store_or).value();
      EXPECT_TRUE(store->opened_from_fallback());
      EXPECT_EQ(store->catalog_generation(), 1u);
      EXPECT_EQ(store->model()->object_count(), n1);
      for (size_t i = 0; i < n1; ++i) {
        auto got = by_ref ? store->Get(db.objects()[i].ref)
                          : store->GetByKey(db.objects()[i].key,
                                            Projection::All(*db.schema()));
        ASSERT_TRUE(got.ok()) << "object " << i << ": "
                              << got.status().ToString();
        EXPECT_EQ(got.value(), db.objects()[i].tuple) << "object " << i;
      }
      for (size_t i = n1; i < n1 + n2; ++i) {
        EXPECT_FALSE(store->GetByKey(db.objects()[i].key,
                                     Projection::All(*db.schema()))
                         .ok())
            << "rolled-back object " << i << " resurfaced";
      }
      // Scans walk the pages themselves: generation 2's record images are
      // all on disk, so this catches any phantom the slotted-page scrub
      // failed to remove.
      size_t scanned = 0;
      EXPECT_TRUE(store->Scan(Projection::All(*db.schema()),
                              [&](int64_t, const Tuple&) {
                                ++scanned;
                                return Status::OK();
                              })
                      .ok());
      EXPECT_EQ(scanned, n1) << "phantom objects visible in a scan";
      // Open repaired the directory: CURRENT points at 1, the corpse of
      // generation 2 is gone, and generation numbers never rewind.
      bool found = false;
      auto current = ReadCurrentGeneration(dir_, &found);
      ASSERT_TRUE(current.ok());
      EXPECT_TRUE(found);
      EXPECT_EQ(current.value(), 1u);
      EXPECT_FALSE(
          std::filesystem::exists(CatalogGenerationPath(dir_, 2)));

      // New work commits as generation 3 — the burned number 2 is never
      // reused, so no stale file can ever shadow a commit.
      ASSERT_TRUE(store
                      ->Put(db.objects()[n1].ref, db.objects()[n1].tuple)
                      .ok());
      ASSERT_TRUE(store->Flush().ok());
      EXPECT_EQ(store->catalog_generation(), 3u);
    }

    auto report_or = RunFsck(dir_);
    ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
    EXPECT_TRUE(report_or.value().clean()) << report_or.value().ToString();

    // A later reopen must keep the ACTUAL on-disk predecessor (generation
    // 1 — numbers are non-consecutive after the burned 2), preserving one
    // level of checksum-fallback depth: corrupt 3 afterwards and the
    // store still recovers 1.
    {
      auto store_or = ComplexObjectStore::Open(db.schema(), Options(kind));
      ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
      EXPECT_FALSE(store_or.value()->opened_from_fallback());
      EXPECT_EQ(store_or.value()->catalog_generation(), 3u);
    }
    ASSERT_TRUE(std::filesystem::exists(CatalogGenerationPath(dir_, 1)))
        << "housekeeping deleted the fallback generation";
    CorruptFile(CatalogGenerationPath(dir_, 3), &rng);
    {
      auto store_or = ComplexObjectStore::Open(db.schema(), Options(kind));
      ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
      EXPECT_TRUE(store_or.value()->opened_from_fallback());
      EXPECT_EQ(store_or.value()->catalog_generation(), 1u);
      EXPECT_EQ(store_or.value()->model()->object_count(), n1);
    }
  }
}

TEST_F(CatalogFuzzTest, AllGenerationsCorruptFailsCleanlyNeverGarbage) {
  const uint32_t base = BaseSeed();
  const auto kinds = AllStorageModelKinds();
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    std::mt19937 rng(base ^ (0x9E3779B9u + iteration));
    const StorageModelKind kind = kinds[iteration % kinds.size()];
    SCOPED_TRACE("STARFISH_SEED=" + std::to_string(base) + " iteration " +
                 std::to_string(iteration) + " model " + ToString(kind));
    std::filesystem::remove_all(dir_);

    bench::GeneratorConfig config;
    config.n_objects = 6;
    config.seed = base + 1000 + iteration;
    auto db_or = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db_or.ok());
    const auto db = std::move(db_or).value();

    {
      auto store = ComplexObjectStore::Open(db.schema(), Options(kind)).value();
      for (size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(store->Put(db.objects()[i].ref, db.objects()[i].tuple).ok());
      }
      ASSERT_TRUE(store->Flush().ok());
      for (size_t i = 3; i < 6; ++i) {
        ASSERT_TRUE(store->Put(db.objects()[i].ref, db.objects()[i].tuple).ok());
      }
      ASSERT_TRUE(store->Flush().ok());
    }
    CorruptFile(CatalogGenerationPath(dir_, 1), &rng);
    CorruptFile(CatalogGenerationPath(dir_, 2), &rng);

    auto store_or = ComplexObjectStore::Open(db.schema(), Options(kind));
    ASSERT_FALSE(store_or.ok()) << "opened a store with no intact generation";
    EXPECT_TRUE(store_or.status().IsCorruption())
        << store_or.status().ToString();
  }
}

}  // namespace
}  // namespace starfish
