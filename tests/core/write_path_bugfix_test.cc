// Regression tests for three write-path bugs fixed together with the
// transaction work:
//
//   1. the destructor silently swallowed a failed best-effort checkpoint —
//      Close() now exists to surface it (and the destructor at least
//      complains on stderr);
//   2. the mem-backend write path invalidated the object cache even when
//      the apply failed validation before dirtying a single page, evicting
//      perfectly good assemblies for nothing;
//   3. an op whose WAL append failed left its dirtied frames pending
//      forever — eviction over an all-pending pool must fail fast with
//      FailedPrecondition instead of deadlocking or spinning.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "benchmark/generator.h"
#include "buffer/buffer_manager.h"
#include "core/complex_object_store.h"
#include "disk/fault_volume.h"
#include "disk/mem_volume.h"

namespace starfish {
namespace {

class WritePathBugfixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_writefix_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    bench::GeneratorConfig config;
    config.n_objects = 10;
    config.seed = 17;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
  std::unique_ptr<bench::BenchmarkDatabase> db_;
};

// --- 1: Close() surfaces the checkpoint failure the destructor can't. ---

TEST_F(WritePathBugfixTest, CloseReportsAFaultedCheckpoint) {
  FaultVolume* fault = nullptr;
  StoreOptions options;
  options.model = StorageModelKind::kDsm;
  options.backend = VolumeKind::kMmap;
  options.path = dir_;
  options.volume_decorator =
      [&fault](std::unique_ptr<Volume> inner) -> std::unique_ptr<Volume> {
    auto wrapped = std::make_unique<FaultVolume>(std::move(inner));
    fault = wrapped.get();
    return wrapped;
  };
  auto store_or = ComplexObjectStore::Open(db_->schema(), options);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();
  ASSERT_TRUE(store->Put(db_->objects()[0].ref, db_->objects()[0].tuple).ok());

  FaultPlan plan;
  plan.fail_sync_call = 1;  // the checkpoint's Volume::Sync dies
  fault->SetPlan(plan);
  fault->ResetFaultCounters();
  Status closed = store->Close();
  EXPECT_FALSE(closed.ok()) << "Close swallowed the checkpoint failure";
  // The verdict was delivered: Close is now a no-op, and the destructor
  // (which runs when `store` leaves scope) must not flush again.
  EXPECT_TRUE(store->Close().ok());
}

TEST_F(WritePathBugfixTest, CloseIsIdempotentAndCheckpointsOnce) {
  StoreOptions options;
  options.model = StorageModelKind::kDsm;
  options.backend = VolumeKind::kMmap;
  options.path = dir_;
  {
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok());
    auto store = std::move(store_or).value();
    for (const auto& object : db_->objects()) {
      ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
    }
    EXPECT_TRUE(store->Close().ok());
    EXPECT_TRUE(store->Close().ok());
  }
  auto reopened = ComplexObjectStore::Open(db_->schema(), options);
  ASSERT_TRUE(reopened.ok());
  for (const auto& object : db_->objects()) {
    auto got = reopened.value()->Get(object.ref);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), object.tuple);
  }
}

// --- 2: a failed validation that moved nothing must not purge the cache. --

TEST_F(WritePathBugfixTest, FailedApplyThatDirtiedNothingKeepsTheObjcache) {
  StoreOptions options;
  options.model = StorageModelKind::kDsm;
  options.backend = VolumeKind::kMem;
  options.objcache.enabled = true;
  auto store_or = ComplexObjectStore::Open(db_->schema(), options);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(store_or).value();
  for (const auto& object : db_->objects()) {
    ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
  }
  auto first = store->Get(db_->objects()[5].ref);
  ASSERT_TRUE(first.ok());
  const auto cached = store->objcache_stats();
  ASSERT_GT(cached.entries, 0u);

  // Replace of a ref that was never inserted fails inside the model before
  // a single page is dirtied. The cache must not be touched.
  const ObjectRef absent = 424242;
  EXPECT_FALSE(store->Replace(absent, db_->objects()[5].tuple).ok());
  const auto after = store->objcache_stats();
  EXPECT_EQ(after.invalidations, cached.invalidations)
      << "a no-op failure invalidated live assemblies";
  EXPECT_EQ(after.entries, cached.entries);

  // And the assembly it would have evicted is still byte-equal.
  const uint64_t hits_before = store->objcache_stats().hits;
  auto second = store->Get(db_->objects()[5].ref);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), db_->objects()[5].tuple);
  EXPECT_GT(store->objcache_stats().hits, hits_before)
      << "the assembly was silently dropped";
}

// --- 3: an all-pending pool fails eviction fast, with the right status. --

TEST_F(WritePathBugfixTest, AllPendingPoolFailsEvictionWithClearStatus) {
  MemVolume disk;
  ASSERT_TRUE(disk.AllocateRun(8).ok());
  BufferOptions options;
  options.frame_count = 4;
  BufferManager bm(&disk, options);

  // Dirty every frame under a write capture and never stamp an LSN —
  // exactly the state a failed WAL append leaves behind.
  bm.BeginWriteCapture(0);
  for (PageId id = 0; id < 4; ++id) {
    auto guard = bm.Fix(id);
    ASSERT_TRUE(guard.ok());
    guard->MarkDirty();
  }
  BufferManager::WriteCapture capture = bm.TakeWriteCapture();
  ASSERT_EQ(capture.dirtied.size(), 4u);

  // Every frame is unevictable (pending): the next miss must fail fast.
  auto stuck = bm.Fix(5);
  ASSERT_FALSE(stuck.ok());
  EXPECT_TRUE(stuck.status().IsFailedPrecondition())
      << stuck.status().ToString();

  // Clearing the pending marks (what recovery's reopen effectively does)
  // makes the pool usable again — the frames were stuck, not leaked.
  bm.StampRecoveryLsn(capture.dirtied, 0);
  auto unstuck = bm.Fix(5);
  EXPECT_TRUE(unstuck.ok()) << unstuck.status().ToString();
}

// The store-level shape of the same bug: after a failed WAL append the op
// fails, later ops fail fast on the poisoned log (no deadlock, no spin),
// and a reopen recovers every acknowledged write.
TEST_F(WritePathBugfixTest, FailedWalAppendPoisonsButNeverWedgesTheStore) {
  FaultVolume* fault = nullptr;
  StoreOptions options;
  options.model = StorageModelKind::kDsm;
  options.backend = VolumeKind::kMmap;
  options.path = dir_;
  options.wal_sync = WalSyncPolicy::kAlways;
  options.buffer_frames = 64;
  options.volume_decorator =
      [&fault](std::unique_ptr<Volume> inner) -> std::unique_ptr<Volume> {
    auto wrapped = std::make_unique<FaultVolume>(std::move(inner));
    fault = wrapped.get();
    return wrapped;
  };
  options.wal_log_decorator =
      [&fault](std::unique_ptr<LogFile> inner) -> std::unique_ptr<LogFile> {
    return fault->WrapLogFile(std::move(inner));
  };
  size_t acked = 0;
  {
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    FaultPlan plan;
    plan.fail_log_append = 4;  // the 4th workload append dies mid-stream
    fault->SetPlan(plan);
    fault->ResetFaultCounters();
    for (const auto& object : db_->objects()) {
      if (store->Put(object.ref, object.tuple).ok()) {
        ++acked;
      } else {
        break;
      }
    }
    ASSERT_LT(acked, db_->objects().size()) << "the fault never fired";
    // The log is poisoned: every further op must return, quickly and
    // unambiguously, rather than wait on frames that can never drain.
    EXPECT_FALSE(store->Put(db_->objects()[9].ref,
                            db_->objects()[9].tuple).ok());
    EXPECT_FALSE(store->Flush().ok());
  }  // destructor: best-effort flush fails, logs to stderr, must not hang
  StoreOptions reopen = options;
  reopen.volume_decorator = nullptr;
  reopen.wal_log_decorator = nullptr;
  auto store_or = ComplexObjectStore::Open(db_->schema(), reopen);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();
  for (size_t i = 0; i < acked; ++i) {
    auto got = store->Get(db_->objects()[i].ref);
    ASSERT_TRUE(got.ok()) << "acked object " << i << " lost: "
                          << got.status().ToString();
    EXPECT_EQ(got.value(), db_->objects()[i].tuple);
  }
}

}  // namespace
}  // namespace starfish
