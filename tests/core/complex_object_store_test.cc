#include "core/complex_object_store.h"

#include <gtest/gtest.h>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"

namespace starfish {
namespace {

class ComplexObjectStoreTest
    : public ::testing::TestWithParam<StorageModelKind> {
 protected:
  void SetUp() override {
    bench::GeneratorConfig config;
    config.n_objects = 30;
    config.seed = 61;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());
    StoreOptions options;
    options.model = GetParam();
    auto store = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
    for (const auto& object : db_->objects()) {
      ASSERT_TRUE(store_->Put(object.ref, object.tuple).ok());
    }
    ASSERT_TRUE(store_->Flush().ok());
  }

  std::unique_ptr<bench::BenchmarkDatabase> db_;
  std::unique_ptr<ComplexObjectStore> store_;
};

TEST_P(ComplexObjectStoreTest, PutGetRoundTrip) {
  if (GetParam() == StorageModelKind::kNsm) GTEST_SKIP();
  auto got = store_->Get(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), db_->objects()[7].tuple);
}

TEST_P(ComplexObjectStoreTest, GetByKeyWorksForAllModels) {
  auto got = store_->GetByKey(db_->objects()[4].key,
                              Projection::All(*db_->schema()));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), db_->objects()[4].tuple);
}

TEST_P(ComplexObjectStoreTest, ScanSeesEverything) {
  size_t count = 0;
  ASSERT_TRUE(store_->Scan(Projection::All(*db_->schema()),
                           [&](int64_t, const Tuple&) {
                             ++count;
                             return Status::OK();
                           }).ok());
  EXPECT_EQ(count, db_->objects().size());
}

TEST_P(ComplexObjectStoreTest, ChildrenAndRootRecord) {
  auto children = store_->Children(3);
  ASSERT_TRUE(children.ok());
  auto root = store_->RootRecord(3);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->values[0].as_int32(),
            static_cast<int32_t>(db_->objects()[3].key));
}

TEST_P(ComplexObjectStoreTest, UpdateRootRecord) {
  auto root = store_->RootRecord(9);
  ASSERT_TRUE(root.ok());
  Tuple updated = root.value();
  updated.values[1] = Value::Int32(777);
  ASSERT_TRUE(store_->UpdateRootRecord(9, updated).ok());
  auto after = store_->RootRecord(9);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->values[1].as_int32(), 777);
}

TEST_P(ComplexObjectStoreTest, StatsAndTimingAccumulate) {
  store_->ResetStats();
  EXPECT_DOUBLE_EQ(store_->EstimatedIoMillis(), 0.0);
  ASSERT_TRUE(store_->engine()->DropCache().ok());
  store_->ResetStats();
  (void)store_->GetByKey(db_->objects()[2].key, Projection::All(*db_->schema()));
  EXPECT_GT(store_->stats().io.pages_read, 0u);
  EXPECT_GT(store_->stats().buffer.fixes, 0u);
  EXPECT_GT(store_->EstimatedIoMillis(), 0.0);
}

TEST_P(ComplexObjectStoreTest, OptionsArePlumbedThrough) {
  StoreOptions options;
  options.model = GetParam();
  options.page_size = 1024;
  options.buffer_frames = 64;
  auto store = ComplexObjectStore::Open(bench::MakeStationSchema(), options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->engine()->disk()->page_size(), 1024u);
  EXPECT_EQ((*store)->engine()->buffer()->frame_count(), 64u);
  EXPECT_EQ((*store)->model()->kind(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ComplexObjectStoreTest,
    ::testing::ValuesIn(AllStorageModelKinds()),
    [](const ::testing::TestParamInfo<StorageModelKind>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(ComplexObjectStoreOpenTest, RejectsNullSchema) {
  EXPECT_TRUE(ComplexObjectStore::Open(nullptr).status().IsInvalidArgument());
}

TEST(ComplexObjectStoreOpenTest, CustomSchemaWorks) {
  // A non-benchmark schema: a document with sections and references.
  auto section = SchemaBuilder("Section")
                     .AddInt32("Nr")
                     .AddString("Text")
                     .AddLink("SeeAlso")
                     .Build();
  auto doc = SchemaBuilder("Document")
                 .AddInt32("DocId")
                 .AddString("Title")
                 .AddRelation("Sections", section)
                 .Build();
  StoreOptions options;
  options.model = StorageModelKind::kDasdbsNsm;
  auto store = ComplexObjectStore::Open(doc, options);
  ASSERT_TRUE(store.ok());
  Tuple d{{Value::Int32(1), Value::Str("paper"),
           Value::Relation({Tuple{{Value::Int32(0), Value::Str("intro"),
                                   Value::Link(2)}},
                            Tuple{{Value::Int32(1), Value::Str("eval"),
                                   Value::Link(0)}}})}};
  ASSERT_TRUE((*store)->Put(0, d).ok());
  auto got = (*store)->Get(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), d);
  auto children = (*store)->Children(0);
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children.value(), (std::vector<ObjectRef>{2, 0}));
}

}  // namespace
}  // namespace starfish
