// The persistent open/reopen path of ComplexObjectStore over the mmap
// backend, for every storage model: a store written by one instance must be
// fully readable (and writable) by a later instance on the same path.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"
#include "core/complex_object_store.h"

namespace starfish {
namespace {

class PersistentStoreTest : public ::testing::TestWithParam<StorageModelKind> {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_persist_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    for (char& c : dir_) {
      if (c == '/' && &c > dir_.data() + 4) continue;  // keep path separators
    }
    std::filesystem::remove_all(dir_);

    bench::GeneratorConfig config;
    config.n_objects = 25;
    config.seed = 83;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  StoreOptions MmapOptions() {
    StoreOptions options;
    options.model = GetParam();
    options.backend = VolumeKind::kMmap;
    options.path = dir_;
    return options;
  }

  std::unique_ptr<ComplexObjectStore> OpenStore() {
    auto store = ComplexObjectStore::Open(db_->schema(), MmapOptions());
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  }

  void LoadAll(ComplexObjectStore* store) {
    for (const auto& object : db_->objects()) {
      ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
    }
    ASSERT_TRUE(store->Flush().ok());
  }

  bool ByRef() const { return GetParam() != StorageModelKind::kNsm; }

  std::string dir_;
  std::unique_ptr<bench::BenchmarkDatabase> db_;
};

// The mmap backend must pass the same storage-model behaviour the mem
// backend does — fresh store, no reopen involved.
TEST_P(PersistentStoreTest, MmapBackendServesAllQueries) {
  auto store = OpenStore();
  LoadAll(store.get());
  EXPECT_EQ(store->model()->object_count(), db_->objects().size());
  if (ByRef()) {
    auto got = store->Get(7);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), db_->objects()[7].tuple);
  }
  auto by_key = store->GetByKey(db_->objects()[4].key,
                                Projection::All(*db_->schema()));
  ASSERT_TRUE(by_key.ok());
  EXPECT_EQ(by_key.value(), db_->objects()[4].tuple);
  size_t count = 0;
  ASSERT_TRUE(store->Scan(Projection::All(*db_->schema()),
                          [&](int64_t, const Tuple&) {
                            ++count;
                            return Status::OK();
                          })
                  .ok());
  EXPECT_EQ(count, db_->objects().size());
}

TEST_P(PersistentStoreTest, WriteCloseReopenRestoresEveryObject) {
  {
    auto store = OpenStore();
    LoadAll(store.get());
  }  // destructor checkpoints catalog + syncs the volume

  auto store = OpenStore();  // second instance, same path
  EXPECT_EQ(store->model()->object_count(), db_->objects().size());
  for (const auto& object : db_->objects()) {
    auto got = ByRef()
                   ? store->Get(object.ref)
                   : store->GetByKey(object.key, Projection::All(*db_->schema()));
    ASSERT_TRUE(got.ok()) << "ref " << object.ref << ": "
                          << got.status().ToString();
    EXPECT_EQ(got.value(), object.tuple) << "ref " << object.ref;
  }
  // Navigation state survived too.
  if (ByRef()) {
    auto children = store->Children(3);
    ASSERT_TRUE(children.ok());
  }
}

TEST_P(PersistentStoreTest, ReopenedStoreAcceptsNewWrites) {
  {
    auto store = OpenStore();
    LoadAll(store.get());
  }
  {
    auto store = OpenStore();
    // Updating an existing object and inserting a new one must both work.
    auto root = store->RootRecord(ByRef() ? 9 : 9);
    if (ByRef()) {
      ASSERT_TRUE(root.ok());
      Tuple updated = root.value();
      updated.values[1] = Value::Int32(4242);
      ASSERT_TRUE(store->UpdateRootRecord(9, updated).ok());
    }
    ASSERT_TRUE(store->Flush().ok());
  }
  if (ByRef()) {
    auto store = OpenStore();  // third instance sees the second's update
    auto root = store->RootRecord(9);
    ASSERT_TRUE(root.ok());
    EXPECT_EQ(root->values[1].as_int32(), 4242);
  }
}

TEST_P(PersistentStoreTest, ReopenWithWrongModelRejected) {
  {
    auto store = OpenStore();
    LoadAll(store.get());
  }
  StoreOptions wrong = MmapOptions();
  wrong.model = GetParam() == StorageModelKind::kDsm ? StorageModelKind::kNsm
                                                     : StorageModelKind::kDsm;
  auto reopened = ComplexObjectStore::Open(db_->schema(), wrong);
  EXPECT_FALSE(reopened.ok());
}

TEST_P(PersistentStoreTest, ReopenAdoptsRecordedPageSize) {
  {
    StoreOptions options = MmapOptions();
    options.page_size = 1024;
    auto store = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store.ok());
    LoadAll(store->get());
  }
  // Reopen with the default 2048: the recorded 1024 must win.
  auto store = OpenStore();
  EXPECT_EQ(store->engine()->disk()->page_size(), 1024u);
  EXPECT_EQ(store->options().page_size, 1024u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, PersistentStoreTest,
    ::testing::ValuesIn(AllStorageModelKinds()),
    [](const ::testing::TestParamInfo<StorageModelKind>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

// --- non-parameterized store-level backend behaviour ----------------------

TEST(TimedStoreTest, TimedVolumeChargesStoreTraffic) {
  StoreOptions options;
  options.timed_volume = true;
  options.timing = LinearTimingModel{24.0, 1.3};
  auto store = ComplexObjectStore::Open(bench::MakeStationSchema(), options);
  ASSERT_TRUE(store.ok());
  EXPECT_DOUBLE_EQ((*store)->timed_millis(), 0.0);

  bench::GeneratorConfig config;
  config.n_objects = 10;
  config.seed = 7;
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  for (const auto& object : db->objects()) {
    ASSERT_TRUE((*store)->Put(object.ref, object.tuple).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->engine()->DropCache().ok());
  (*store)->ResetStats();
  auto got = (*store)->GetByKey(db->objects()[2].key,
                                Projection::All(*db->schema()));
  ASSERT_TRUE(got.ok());
  // The decorator's accumulated time equals Eq. 1 over the counter delta.
  EXPECT_NEAR((*store)->timed_millis(),
              options.timing.Cost((*store)->stats().io), 1e-9);
  EXPECT_GT((*store)->timed_millis(), 0.0);
}

TEST(TimedStoreTest, UntimedStoreReportsZero) {
  auto store = ComplexObjectStore::Open(bench::MakeStationSchema(), {});
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->timed_millis(), 0.0);
  EXPECT_EQ((*store)->engine()->timed_volume(), nullptr);
}

TEST(PersistentStoreOpenTest, MmapWithoutPathRejected) {
  StoreOptions options;
  options.backend = VolumeKind::kMmap;  // no path
  auto store = ComplexObjectStore::Open(bench::MakeStationSchema(), options);
  EXPECT_FALSE(store.ok());
}

}  // namespace
}  // namespace starfish
