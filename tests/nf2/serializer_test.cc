#include "nf2/serializer.h"

#include <gtest/gtest.h>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"

namespace starfish {
namespace {

Tuple MakeStation(int32_t key, int platforms, int conns_per_platform,
                  int sights) {
  std::vector<Tuple> platform_tuples;
  for (int p = 0; p < platforms; ++p) {
    std::vector<Tuple> conns;
    for (int c = 0; c < conns_per_platform; ++c) {
      conns.push_back(Tuple{{Value::Int32(c), Value::Int32(key + c),
                             Value::Link(static_cast<uint64_t>(c)),
                             Value::Str("times-" + std::to_string(c))}});
    }
    platform_tuples.push_back(Tuple{{Value::Int32(p), Value::Int32(2),
                                     Value::Int32(p * 10),
                                     Value::Str("info"),
                                     Value::Relation(std::move(conns))}});
  }
  std::vector<Tuple> sight_tuples;
  for (int s = 0; s < sights; ++s) {
    sight_tuples.push_back(Tuple{{Value::Int32(s), Value::Str("d"),
                                  Value::Str("l"), Value::Str("h"),
                                  Value::Str("r")}});
  }
  return Tuple{{Value::Int32(key), Value::Int32(platforms),
                Value::Int32(sights), Value::Str("name"),
                Value::Relation(std::move(platform_tuples)),
                Value::Relation(std::move(sight_tuples))}};
}

class SerializerTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Schema> schema_ = bench::MakeStationSchema();
  ObjectSerializer serializer_{schema_};
};

TEST_F(SerializerTest, RegionsInDocumentOrder) {
  const Tuple station = MakeStation(1, 2, 2, 1);
  auto regions = serializer_.ToRegions(station);
  ASSERT_TRUE(regions.ok());
  // station, p0, c, c, p1, c, c, sight = 8 regions.
  ASSERT_EQ(regions->size(), 8u);
  std::vector<PathId> paths;
  for (const auto& region : regions.value()) {
    paths.push_back(ObjectSerializer::TagPath(region.tag));
  }
  EXPECT_EQ(paths, (std::vector<PathId>{0, 1, 2, 2, 1, 2, 2, 3}));
}

TEST_F(SerializerTest, OrdinalsCountPerPath) {
  const Tuple station = MakeStation(1, 2, 1, 2);
  auto regions = serializer_.ToRegions(station);
  ASSERT_TRUE(regions.ok());
  std::vector<uint32_t> connection_ordinals;
  for (const auto& region : regions.value()) {
    if (ObjectSerializer::TagPath(region.tag) == 2) {
      connection_ordinals.push_back(ObjectSerializer::TagOrdinal(region.tag));
    }
  }
  EXPECT_EQ(connection_ordinals, (std::vector<uint32_t>{0, 1}));
}

TEST_F(SerializerTest, FullRoundTrip) {
  const Tuple station = MakeStation(7, 2, 2, 3);
  auto regions = serializer_.ToRegions(station);
  ASSERT_TRUE(regions.ok());
  auto back = serializer_.FromRegionsAll(regions.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), station);
}

TEST_F(SerializerTest, EmptySubrelationsRoundTrip) {
  const Tuple station = MakeStation(7, 0, 0, 0);
  auto regions = serializer_.ToRegions(station);
  ASSERT_TRUE(regions.ok());
  ASSERT_EQ(regions->size(), 1u);
  auto back = serializer_.FromRegionsAll(regions.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), station);
}

TEST_F(SerializerTest, ProjectedRoundTripDropsUnselected) {
  const Tuple station = MakeStation(7, 2, 2, 3);
  auto regions = serializer_.ToRegions(station);
  ASSERT_TRUE(regions.ok());
  auto proj = Projection::OfPaths(*schema_, {0, 1, 2});
  ASSERT_TRUE(proj.ok());
  // Filter regions as a partial read would.
  std::vector<RecordRegion> filtered;
  for (const auto& region : regions.value()) {
    if (proj->Includes(ObjectSerializer::TagPath(region.tag))) {
      filtered.push_back(region);
    }
  }
  auto back = serializer_.FromRegions(filtered, proj.value());
  ASSERT_TRUE(back.ok());
  Tuple expected = station;
  expected.values[bench::StationAttrs::kSightseeings] = Value::Relation({});
  EXPECT_EQ(back.value(), expected);
}

TEST_F(SerializerTest, RootOnlyProjection) {
  const Tuple station = MakeStation(9, 2, 1, 2);
  auto regions = serializer_.ToRegions(station);
  ASSERT_TRUE(regions.ok());
  std::vector<RecordRegion> root_only{regions.value()[0]};
  auto back = serializer_.FromRegions(root_only,
                                      Projection::RootOnly(*schema_));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->values[0], station.values[0]);
  EXPECT_EQ(back->values[3], station.values[3]);
  EXPECT_TRUE(back->values[4].as_relation().empty());
}

TEST_F(SerializerTest, CorruptRegionOrderDetected) {
  const Tuple station = MakeStation(1, 1, 1, 1);
  auto regions = serializer_.ToRegions(station);
  ASSERT_TRUE(regions.ok());
  std::swap(regions.value()[1], regions.value()[2]);  // platform <-> conn
  EXPECT_TRUE(serializer_.FromRegionsAll(regions.value())
                  .status().IsCorruption());
}

TEST_F(SerializerTest, TruncatedRegionsDetected) {
  const Tuple station = MakeStation(1, 1, 2, 0);
  auto regions = serializer_.ToRegions(station);
  ASSERT_TRUE(regions.ok());
  regions->pop_back();  // drop last connection
  EXPECT_TRUE(serializer_.FromRegionsAll(regions.value())
                  .status().IsCorruption());
}

TEST_F(SerializerTest, TrailingRegionsDetected) {
  const Tuple station = MakeStation(1, 0, 0, 0);
  auto regions = serializer_.ToRegions(station);
  ASSERT_TRUE(regions.ok());
  regions->push_back(RecordRegion{ObjectSerializer::MakeTag(3, 0), "junk"});
  EXPECT_TRUE(serializer_.FromRegionsAll(regions.value())
                  .status().IsCorruption());
}

TEST_F(SerializerTest, FlatEncodeDecodeWithCounts) {
  const Tuple station = MakeStation(5, 2, 1, 3);
  const std::string flat = ObjectSerializer::EncodeFlat(*schema_, station);
  std::vector<uint32_t> counts;
  auto back = ObjectSerializer::DecodeFlat(*schema_, flat, &counts);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->values[0], station.values[0]);
  EXPECT_EQ(counts, (std::vector<uint32_t>{2, 3}));  // platforms, sights
  EXPECT_TRUE(back->values[4].as_relation().empty());
}

TEST_F(SerializerTest, EncodeFlatWithCountsOverridesRelationSizes) {
  Tuple root = MakeStation(5, 0, 0, 0);
  const std::string bytes =
      ObjectSerializer::EncodeFlatWithCounts(*schema_, root, {7, 9});
  std::vector<uint32_t> counts;
  auto back = ObjectSerializer::DecodeFlat(*schema_, bytes, &counts);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(counts, (std::vector<uint32_t>{7, 9}));
}

TEST_F(SerializerTest, FlatSizeMatchesEncodedLength) {
  const Tuple station = MakeStation(5, 2, 1, 3);
  EXPECT_EQ(ObjectSerializer::FlatSize(*schema_, station),
            ObjectSerializer::EncodeFlat(*schema_, station).size());
}

TEST_F(SerializerTest, DecodeFlatRejectsTruncation) {
  const Tuple station = MakeStation(5, 0, 0, 0);
  std::string flat = ObjectSerializer::EncodeFlat(*schema_, station);
  flat.resize(flat.size() - 1);
  EXPECT_TRUE(ObjectSerializer::DecodeFlat(*schema_, flat)
                  .status().IsCorruption());
}

TEST_F(SerializerTest, DecodeFlatRejectsTrailingBytes) {
  const Tuple station = MakeStation(5, 0, 0, 0);
  std::string flat = ObjectSerializer::EncodeFlat(*schema_, station);
  flat += "extra";
  EXPECT_TRUE(ObjectSerializer::DecodeFlat(*schema_, flat)
                  .status().IsCorruption());
}

TEST_F(SerializerTest, TagHelpers) {
  const uint32_t tag = ObjectSerializer::MakeTag(3, 17);
  EXPECT_EQ(ObjectSerializer::TagPath(tag), 3u);
  EXPECT_EQ(ObjectSerializer::TagOrdinal(tag), 17u);
}

TEST_F(SerializerTest, RandomizedRoundTripsOverGeneratedObjects) {
  bench::GeneratorConfig config;
  config.n_objects = 40;
  config.seed = 99;
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  ObjectSerializer serializer(db->schema());
  for (const auto& object : db->objects()) {
    auto regions = serializer.ToRegions(object.tuple);
    ASSERT_TRUE(regions.ok());
    auto back = serializer.FromRegionsAll(regions.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), object.tuple);
  }
}

}  // namespace
}  // namespace starfish
