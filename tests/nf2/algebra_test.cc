#include "nf2/algebra.h"

#include <gtest/gtest.h>

#include "benchmark/generator.h"
#include "models/normalization.h"

namespace starfish {
namespace {

Relation MakeFlatRelation() {
  Relation rel;
  rel.schema = SchemaBuilder("R")
                   .AddInt32("a")
                   .AddInt32("b")
                   .AddString("s")
                   .Build();
  auto t = [](int a, int b, const char* s) {
    return Tuple{{Value::Int32(a), Value::Int32(b), Value::Str(s)}};
  };
  rel.tuples = {t(1, 10, "x"), t(1, 20, "y"), t(2, 10, "z"), t(1, 30, "x")};
  return rel;
}

TEST(AlgebraProjectTest, KeepsRequestedAttributes) {
  auto out = Project(MakeFlatRelation(), {2, 0});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->schema->attributes().size(), 2u);
  EXPECT_EQ(out->schema->attributes()[0].name, "s");
  EXPECT_EQ(out->schema->attributes()[1].name, "a");
  ASSERT_EQ(out->tuples.size(), 4u);
  EXPECT_EQ(out->tuples[0].values[0], Value::Str("x"));
  EXPECT_EQ(out->tuples[0].values[1], Value::Int32(1));
}

TEST(AlgebraProjectTest, OutOfRangeRejected) {
  EXPECT_TRUE(Project(MakeFlatRelation(), {5}).status().IsInvalidArgument());
}

TEST(AlgebraSelectTest, FiltersTuples) {
  auto out = Select(MakeFlatRelation(), [](const Tuple& t) {
    return t.values[0].as_int32() == 1;
  });
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->tuples.size(), 3u);
  for (const Tuple& t : out->tuples) {
    EXPECT_EQ(t.values[0].as_int32(), 1);
  }
}

TEST(AlgebraNestTest, GroupsByRemainingAttributes) {
  // Nest (b, s) by a: groups a=1 (3 tuples) and a=2 (1 tuple).
  auto out = Nest(MakeFlatRelation(), {1, 2}, "Group");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->schema->attributes().size(), 2u);
  EXPECT_EQ(out->schema->attributes()[0].name, "a");
  EXPECT_EQ(out->schema->attributes()[1].name, "Group");
  ASSERT_EQ(out->tuples.size(), 2u);
  EXPECT_EQ(out->tuples[0].values[0].as_int32(), 1);  // first appearance
  EXPECT_EQ(out->tuples[0].values[1].as_relation().size(), 3u);
  EXPECT_EQ(out->tuples[1].values[0].as_int32(), 2);
  EXPECT_EQ(out->tuples[1].values[1].as_relation().size(), 1u);
  // Within-group order is input order.
  EXPECT_EQ(out->tuples[0].values[1].as_relation()[1].values[0],
            Value::Int32(20));
}

TEST(AlgebraNestTest, NeedsAtLeastOneNestedAttribute) {
  EXPECT_TRUE(Nest(MakeFlatRelation(), {}, "G").status().IsInvalidArgument());
  EXPECT_TRUE(Nest(MakeFlatRelation(), {9}, "G").status().IsInvalidArgument());
}

TEST(AlgebraUnnestTest, InlinesSubTuples) {
  auto nested = Nest(MakeFlatRelation(), {1, 2}, "Group");
  ASSERT_TRUE(nested.ok());
  auto flat = Unnest(nested.value(), 1);
  ASSERT_TRUE(flat.ok());
  ASSERT_EQ(flat->schema->attributes().size(), 3u);
  EXPECT_EQ(flat->schema->attributes()[0].name, "a");
  EXPECT_EQ(flat->schema->attributes()[1].name, "b");
  EXPECT_EQ(flat->schema->attributes()[2].name, "s");
  // nest ; unnest == identity up to grouping order (all groups non-empty).
  ASSERT_EQ(flat->tuples.size(), 4u);
  EXPECT_EQ(flat->tuples[0].values[1].as_int32(), 10);
  EXPECT_EQ(flat->tuples[2].values[1].as_int32(), 30);  // a=1 group first
  EXPECT_EQ(flat->tuples[3].values[0].as_int32(), 2);
}

TEST(AlgebraUnnestTest, EmptySubRelationsDropTuples) {
  Relation rel;
  auto inner = SchemaBuilder("I").AddInt32("v").Build();
  rel.schema = SchemaBuilder("R").AddInt32("k").AddRelation("r", inner).Build();
  rel.tuples = {Tuple{{Value::Int32(1), Value::Relation({})}},
                Tuple{{Value::Int32(2),
                       Value::Relation({Tuple{{Value::Int32(9)}}})}}};
  auto out = Unnest(rel, 1);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->tuples.size(), 1u);  // the empty group vanished
  EXPECT_EQ(out->tuples[0].values[0].as_int32(), 2);
}

TEST(AlgebraUnnestTest, NonRelationAttributeRejected) {
  EXPECT_TRUE(Unnest(MakeFlatRelation(), 0).status().IsInvalidArgument());
}

TEST(AlgebraJoinTest, HashJoinOnOneAttribute) {
  Relation left = MakeFlatRelation();
  Relation right;
  right.schema = SchemaBuilder("S").AddInt32("a2").AddString("tag").Build();
  right.tuples = {Tuple{{Value::Int32(1), Value::Str("one")}},
                  Tuple{{Value::Int32(3), Value::Str("three")}}};
  auto out = JoinOn(left, 0, right, 0);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->schema->attributes().size(), 5u);
  ASSERT_EQ(out->tuples.size(), 3u);  // the three a=1 tuples match
  for (const Tuple& t : out->tuples) {
    EXPECT_EQ(t.values[4], Value::Str("one"));
  }
}

TEST(AlgebraIntegrationTest, NestReproducesDasdbsNsmGrouping) {
  // §3.4 in algebra: nesting the flat NSM_Connection rows on RootKey
  // produces one tuple per object, exactly like the storage-level Nest.
  bench::GeneratorConfig config;
  config.n_objects = 25;
  config.seed = 77;
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  auto decomp = NsmDecomposition::Derive(db->schema(), 0);
  ASSERT_TRUE(decomp.ok());

  // Build the flat NSM_Connection relation for the whole database.
  Relation conn;
  conn.schema = decomp->relation(2).flat_schema;
  size_t objects_with_connections = 0;
  for (const auto& object : db->objects()) {
    auto parts = decomp->Shred(object.tuple);
    ASSERT_TRUE(parts.ok());
    objects_with_connections += (*parts)[2].empty() ? 0 : 1;
    for (const Tuple& flat : (*parts)[2]) conn.tuples.push_back(flat);
  }

  // Nest everything except RootKey (attribute 0).
  std::vector<size_t> nest_attrs;
  for (size_t i = 1; i < conn.schema->attributes().size(); ++i) {
    nest_attrs.push_back(i);
  }
  auto nested = Nest(conn, nest_attrs, "Connections");
  ASSERT_TRUE(nested.ok());
  // "After this nesting only a single tuple per relation per object is
  // left" — per object that has connections at all.
  EXPECT_EQ(nested->tuples.size(), objects_with_connections);

  // Round-trip back to the flat rows.
  auto flat_again = Unnest(nested.value(), 1);
  ASSERT_TRUE(flat_again.ok());
  EXPECT_EQ(flat_again->tuples.size(), conn.tuples.size());
}

TEST(AlgebraIntegrationTest, JoinReassemblesRootAndChildren) {
  bench::GeneratorConfig config;
  config.n_objects = 10;
  config.seed = 78;
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  auto decomp = NsmDecomposition::Derive(db->schema(), 0);
  ASSERT_TRUE(decomp.ok());

  Relation stations, sights;
  stations.schema = decomp->relation(0).flat_schema;
  sights.schema = decomp->relation(3).flat_schema;
  size_t total_sights = 0;
  for (const auto& object : db->objects()) {
    auto parts = decomp->Shred(object.tuple);
    ASSERT_TRUE(parts.ok());
    stations.tuples.push_back((*parts)[0][0]);
    total_sights += (*parts)[3].size();
    for (const Tuple& flat : (*parts)[3]) sights.tuples.push_back(flat);
  }
  // Station.Key (attr 0) == Sightseeing.RootKey (attr 0).
  auto joined = JoinOn(stations, 0, sights, 0);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->tuples.size(), total_sights);
}

}  // namespace
}  // namespace starfish
