#include "nf2/schema.h"

#include <gtest/gtest.h>

#include "benchmark/station_schema.h"

namespace starfish {
namespace {

TEST(SchemaTest, BuilderCollectsAttributes) {
  auto schema = SchemaBuilder("T")
                    .AddInt32("a")
                    .AddString("b")
                    .AddLink("c")
                    .Build();
  ASSERT_EQ(schema->attributes().size(), 3u);
  EXPECT_EQ(schema->attributes()[0].type, AttrType::kInt32);
  EXPECT_EQ(schema->attributes()[1].type, AttrType::kString);
  EXPECT_EQ(schema->attributes()[2].type, AttrType::kLink);
  EXPECT_EQ(schema->name(), "T");
}

TEST(SchemaTest, IndexOfFindsAttribute) {
  auto schema = SchemaBuilder("T").AddInt32("x").AddString("y").Build();
  EXPECT_EQ(schema->IndexOf("x").value(), 0u);
  EXPECT_EQ(schema->IndexOf("y").value(), 1u);
  EXPECT_TRUE(schema->IndexOf("z").status().IsNotFound());
}

TEST(SchemaTest, FlatSchemaHasSinglePath) {
  auto schema = SchemaBuilder("Flat").AddInt32("x").Build();
  EXPECT_EQ(schema->path_count(), 1u);
  EXPECT_EQ(schema->path(kRootPath).schema, schema.get());
  EXPECT_EQ(schema->path(kRootPath).qualified_name, "Flat");
}

TEST(SchemaTest, StationPathsInDfsPreOrder) {
  auto station = bench::MakeStationSchema();
  ASSERT_EQ(station->path_count(), 4u);
  EXPECT_EQ(station->path(0).qualified_name, "Station");
  EXPECT_EQ(station->path(1).qualified_name, "Station.Platform");
  EXPECT_EQ(station->path(2).qualified_name, "Station.Platform.Connection");
  EXPECT_EQ(station->path(3).qualified_name, "Station.Sightseeing");
  EXPECT_EQ(station->path(1).parent, 0u);
  EXPECT_EQ(station->path(2).parent, 1u);
  EXPECT_EQ(station->path(3).parent, 0u);
}

TEST(SchemaTest, ChildPathResolvesRelationAttrs) {
  auto station = bench::MakeStationSchema();
  EXPECT_EQ(station->ChildPath(0, bench::StationAttrs::kPlatforms).value(), 1);
  EXPECT_EQ(station->ChildPath(0, bench::StationAttrs::kSightseeings).value(), 3);
  EXPECT_EQ(station->ChildPath(1, 4).value(), 2);  // Platform.Connection
  EXPECT_TRUE(station->ChildPath(0, 0).status().IsNotFound());  // Key: atomic
}

TEST(SchemaTest, PathByName) {
  auto station = bench::MakeStationSchema();
  EXPECT_EQ(station->PathByName("Station.Platform.Connection").value(), 2);
  EXPECT_TRUE(station->PathByName("Nope").status().IsNotFound());
}

TEST(SchemaTest, DeeplyNestedSchema) {
  auto d3 = SchemaBuilder("L3").AddInt32("v").Build();
  auto d2 = SchemaBuilder("L2").AddInt32("v").AddRelation("r3", d3).Build();
  auto d1 = SchemaBuilder("L1").AddInt32("v").AddRelation("r2", d2).Build();
  auto root = SchemaBuilder("L0").AddInt32("v").AddRelation("r1", d1).Build();
  ASSERT_EQ(root->path_count(), 4u);
  EXPECT_EQ(root->path(3).qualified_name, "L0.r1.r2.r3");
  EXPECT_EQ(root->path(3).parent, 2u);
}

TEST(SchemaTest, SiblingRelationsOrderedByDeclaration) {
  auto sub = SchemaBuilder("Sub").AddInt32("v").Build();
  auto sub2 = SchemaBuilder("Sub2").AddInt32("v").Build();
  auto sub3 = SchemaBuilder("Sub3").AddInt32("v").Build();
  auto root = SchemaBuilder("R")
                  .AddRelation("a", sub)
                  .AddRelation("b", sub2)
                  .AddRelation("c", sub3)
                  .Build();
  ASSERT_EQ(root->path_count(), 4u);
  EXPECT_EQ(root->path(1).qualified_name, "R.a");
  EXPECT_EQ(root->path(2).qualified_name, "R.b");
  EXPECT_EQ(root->path(3).qualified_name, "R.c");
}

}  // namespace
}  // namespace starfish
