#include "nf2/value.h"

#include <gtest/gtest.h>

#include "benchmark/station_schema.h"

namespace starfish {
namespace {

TEST(ValueTest, TypeTagsAndAccessors) {
  EXPECT_TRUE(Value::Int32(5).is_int32());
  EXPECT_EQ(Value::Int32(5).as_int32(), 5);
  EXPECT_TRUE(Value::Str("x").is_string());
  EXPECT_EQ(Value::Str("x").as_string(), "x");
  EXPECT_TRUE(Value::Link(7).is_link());
  EXPECT_EQ(Value::Link(7).as_link(), 7u);
  EXPECT_TRUE(Value::Relation({}).is_relation());
  EXPECT_TRUE(Value::Relation({}).as_relation().empty());
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int32());
  EXPECT_EQ(v.as_int32(), 0);
}

TEST(ValueTest, EqualityIsDeepAndTypeAware) {
  EXPECT_EQ(Value::Int32(1), Value::Int32(1));
  EXPECT_NE(Value::Int32(1), Value::Int32(2));
  EXPECT_NE(Value::Int32(1), Value::Link(1));  // same bits, other type
  Tuple t1{{Value::Int32(1), Value::Str("a")}};
  Tuple t2{{Value::Int32(1), Value::Str("a")}};
  EXPECT_EQ(Value::Relation({t1}), Value::Relation({t2}));
  t2.values[1] = Value::Str("b");
  EXPECT_NE(Value::Relation({t1}), Value::Relation({t2}));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int32(42).ToString(), "42");
  EXPECT_EQ(Value::Str("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Link(9).ToString(), "->9");
  Tuple t{{Value::Int32(1)}};
  EXPECT_EQ(Value::Relation({t}).ToString(), "{(1)}");
  EXPECT_EQ(TupleToString(t), "(1)");
}

TEST(ValidateTupleTest, AcceptsConformingTuple) {
  auto schema = SchemaBuilder("T").AddInt32("a").AddString("b").Build();
  Tuple ok{{Value::Int32(1), Value::Str("x")}};
  EXPECT_TRUE(ValidateTuple(*schema, ok).ok());
}

TEST(ValidateTupleTest, RejectsArityMismatch) {
  auto schema = SchemaBuilder("T").AddInt32("a").AddString("b").Build();
  Tuple bad{{Value::Int32(1)}};
  EXPECT_TRUE(ValidateTuple(*schema, bad).IsInvalidArgument());
}

TEST(ValidateTupleTest, RejectsTypeMismatch) {
  auto schema = SchemaBuilder("T").AddInt32("a").Build();
  Tuple bad{{Value::Str("not an int")}};
  EXPECT_TRUE(ValidateTuple(*schema, bad).IsInvalidArgument());
}

TEST(ValidateTupleTest, RecursesIntoRelations) {
  auto sub = SchemaBuilder("S").AddInt32("v").Build();
  auto schema = SchemaBuilder("T").AddRelation("subs", sub).Build();
  Tuple good{{Value::Relation({Tuple{{Value::Int32(1)}}})}};
  EXPECT_TRUE(ValidateTuple(*schema, good).ok());
  Tuple bad{{Value::Relation({Tuple{{Value::Str("x")}}})}};
  EXPECT_TRUE(ValidateTuple(*schema, bad).IsInvalidArgument());
}

}  // namespace
}  // namespace starfish
