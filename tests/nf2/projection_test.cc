#include "nf2/projection.h"

#include <gtest/gtest.h>

#include "benchmark/station_schema.h"

namespace starfish {
namespace {

class ProjectionTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Schema> station_ = bench::MakeStationSchema();
};

TEST_F(ProjectionTest, AllIncludesEveryPath) {
  const Projection all = Projection::All(*station_);
  EXPECT_TRUE(all.IsAll());
  for (PathId p = 0; p < station_->path_count(); ++p) {
    EXPECT_TRUE(all.Includes(p));
  }
  EXPECT_EQ(all.count(), 4u);
}

TEST_F(ProjectionTest, RootOnly) {
  const Projection root = Projection::RootOnly(*station_);
  EXPECT_FALSE(root.IsAll());
  EXPECT_TRUE(root.Includes(0));
  EXPECT_FALSE(root.Includes(1));
  EXPECT_FALSE(root.Includes(3));
  EXPECT_EQ(root.count(), 1u);
}

TEST_F(ProjectionTest, OfPathsValid) {
  auto proj = Projection::OfPaths(*station_, {0, 1, 2});
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE(proj->Includes(2));
  EXPECT_FALSE(proj->Includes(3));
  EXPECT_FALSE(proj->IsAll());
  EXPECT_EQ(proj->paths(), (std::vector<PathId>{0, 1, 2}));
}

TEST_F(ProjectionTest, OfPathsAllPathsIsAll) {
  auto proj = Projection::OfPaths(*station_, {0, 1, 2, 3});
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE(proj->IsAll());
}

TEST_F(ProjectionTest, RejectsMissingRoot) {
  EXPECT_TRUE(Projection::OfPaths(*station_, {1}).status().IsInvalidArgument());
}

TEST_F(ProjectionTest, RejectsNonAncestorClosedSet) {
  // Connection (2) without Platform (1).
  EXPECT_TRUE(
      Projection::OfPaths(*station_, {0, 2}).status().IsInvalidArgument());
}

TEST_F(ProjectionTest, RejectsOutOfRangePath) {
  EXPECT_TRUE(
      Projection::OfPaths(*station_, {0, 9}).status().IsInvalidArgument());
}

TEST_F(ProjectionTest, DuplicatesAreHarmless) {
  auto proj = Projection::OfPaths(*station_, {0, 1, 1, 0});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->count(), 2u);
}

TEST_F(ProjectionTest, ToStringListsPaths) {
  auto proj = Projection::OfPaths(*station_, {0, 3});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->ToString(), "{0,3}");
}

TEST_F(ProjectionTest, SingletonSchemaRootOnlyIsAll) {
  auto flat = SchemaBuilder("F").AddInt32("x").Build();
  EXPECT_TRUE(Projection::RootOnly(*flat).IsAll());
}

}  // namespace
}  // namespace starfish
