// Torn-tail WAL replay, store level: a crashed directory whose log tail
// was truncated or bit-flipped at EVERY record boundary and mid-record
// must reopen to the committed checkpoint plus exactly the ops of the
// log's remaining valid prefix — across all five storage models. An
// unusable log (invalid header, missing file) must fall back to the
// paranoid scrub and still reopen to the committed state. The byte-level
// scan contract these tests lean on is proved in wal_format_test.cc; the
// concurrent-writer variant with log-device power loss is
// wal_crash_test.cc.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "benchmark/generator.h"
#include "core/complex_object_store.h"
#include "tools/fsck.h"
#include "util/file_io.h"
#include "wal/wal_format.h"

namespace starfish {
namespace {

constexpr size_t kCommitted = 3;  ///< checkpointed by an explicit Flush
constexpr size_t kTail = 4;       ///< live only in the WAL at the "crash"

void WriteRawFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class WalReplayTest : public ::testing::TestWithParam<StorageModelKind> {
 protected:
  void SetUp() override {
    base_dir_ = (std::filesystem::temp_directory_path() /
                 ("starfish_walreplay_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name())))
                    .string();
    variant_dir_ = base_dir_ + "_variant";
    std::filesystem::remove_all(base_dir_);
    std::filesystem::remove_all(variant_dir_);

    bench::GeneratorConfig config;
    config.n_objects = kCommitted + kTail;
    config.seed = 131;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());

    // Build the crash image once per test: commit a checkpoint, then put a
    // tail of objects whose only durable trace is the log (wal_sync =
    // kAlways fsyncs each one), and snapshot the directory while the store
    // is still open — data pages of the tail never reached the volume,
    // exactly what a crash leaves.
    StoreOptions options;
    options.model = GetParam();
    options.backend = VolumeKind::kMmap;
    options.path = base_dir_;
    options.wal_sync = WalSyncPolicy::kAlways;
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    store_ = std::move(store_or).value();
    for (size_t i = 0; i < kCommitted; ++i) {
      ASSERT_TRUE(
          store_->Put(db_->objects()[i].ref, db_->objects()[i].tuple).ok());
    }
    ASSERT_TRUE(store_->Flush().ok());
    for (size_t i = kCommitted; i < db_->objects().size(); ++i) {
      ASSERT_TRUE(
          store_->Put(db_->objects()[i].ref, db_->objects()[i].tuple).ok());
    }

    // The truncation/flip sweeps need the byte offset of every record
    // boundary; re-framing the scanned records reproduces the file
    // byte-for-byte (the framing is deterministic), which is asserted so
    // the offsets are guaranteed honest.
    auto scan_or = ScanWalFile(WalPath(base_dir_));
    ASSERT_TRUE(scan_or.ok());
    scan_ = scan_or.value();
    ASSERT_TRUE(scan_.header_valid);
    ASSERT_FALSE(scan_.torn_tail);
    ASSERT_EQ(scan_.records.size(), 1 + kTail);  // checkpoint + tail puts
    ASSERT_EQ(scan_.records[0].kind, WalRecordKind::kCheckpoint);
    std::string reframed = EncodeWalHeader(scan_.base_lsn);
    boundaries_.push_back(reframed.size());
    for (const WalRecord& record : scan_.records) {
      AppendWalRecord(&reframed, record.kind, record.flags, record.lsn,
                      record.payload);
      boundaries_.push_back(reframed.size());
    }
    std::string on_disk;
    bool found = false;
    ASSERT_TRUE(ReadFileToString(WalPath(base_dir_), &on_disk, &found).ok());
    ASSERT_TRUE(found);
    ASSERT_EQ(reframed, on_disk);
    log_bytes_ = std::move(on_disk);
  }

  void TearDown() override {
    store_.reset();
    std::error_code ec;
    std::filesystem::remove_all(base_dir_, ec);
    std::filesystem::remove_all(variant_dir_, ec);
  }

  bool ByRef() const { return GetParam() != StorageModelKind::kNsm; }

  /// Clones the crash image with `wal_bytes` as its log (empty string =
  /// delete the log).
  void MakeVariant(std::string_view wal_bytes) {
    std::filesystem::remove_all(variant_dir_);
    std::filesystem::copy(base_dir_, variant_dir_,
                          std::filesystem::copy_options::recursive);
    if (wal_bytes.empty()) {
      std::filesystem::remove(WalPath(variant_dir_));
    } else {
      WriteRawFile(WalPath(variant_dir_), wal_bytes);
    }
  }

  /// Reopens the variant and asserts it holds exactly the first `expected`
  /// objects, each byte-equal; then closes and asserts fsck is spotless.
  void VerifyVariant(size_t expected, size_t expected_replayed,
                     const std::string& label) {
    StoreOptions options;
    options.model = GetParam();
    options.backend = VolumeKind::kMmap;
    options.path = variant_dir_;
    {
      auto store_or = ComplexObjectStore::Open(db_->schema(), options);
      ASSERT_TRUE(store_or.ok())
          << label << ": " << store_or.status().ToString();
      auto store = std::move(store_or).value();
      EXPECT_EQ(store->replayed_wal_records(), expected_replayed) << label;
      EXPECT_EQ(store->model()->object_count(), expected) << label;
      for (size_t i = 0; i < expected; ++i) {
        const auto& object = db_->objects()[i];
        auto got = ByRef() ? store->Get(object.ref)
                           : store->GetByKey(object.key,
                                             Projection::All(*db_->schema()));
        ASSERT_TRUE(got.ok()) << label << " object " << i << ": "
                              << got.status().ToString();
        EXPECT_EQ(got.value(), object.tuple) << label << " object " << i;
      }
      for (size_t i = expected; i < db_->objects().size(); ++i) {
        EXPECT_FALSE(store->GetByKey(db_->objects()[i].key,
                                     Projection::All(*db_->schema()))
                         .ok())
            << label << ": dropped object " << i << " resurfaced";
      }
    }  // close checkpoints the recovered state
    auto report_or = RunFsck(variant_dir_);
    ASSERT_TRUE(report_or.ok()) << label;
    EXPECT_TRUE(report_or.value().clean())
        << label << "\n" << report_or.value().ToString();
    EXPECT_TRUE(report_or.value().warnings.empty())
        << label << "\n" << report_or.value().ToString();
  }

  std::string base_dir_;
  std::string variant_dir_;
  std::unique_ptr<bench::BenchmarkDatabase> db_;
  std::unique_ptr<ComplexObjectStore> store_;  ///< the still-open "victim"
  WalScan scan_;
  std::string log_bytes_;
  /// boundaries_[i] = valid bytes after exactly i records.
  std::vector<size_t> boundaries_;
};

// Chop the log at every record boundary AND mid-record past each boundary:
// replay must deliver the committed checkpoint plus exactly the put
// records that survived whole. (Record 0 is the checkpoint record, so a
// prefix of r records carries r-1 tail puts.)
TEST_P(WalReplayTest, TruncationAtEveryBoundaryReplaysTheValidPrefix) {
  for (size_t r = 0; r < boundaries_.size(); ++r) {
    const size_t puts = r == 0 ? 0 : r - 1;
    {
      MakeVariant(std::string_view(log_bytes_).substr(0, boundaries_[r]));
      VerifyVariant(kCommitted + puts, puts,
                    "boundary " + std::to_string(r));
    }
    if (r + 1 < boundaries_.size()) {
      // Mid-record: half of record r+1's frame survives — a torn append.
      const size_t torn =
          boundaries_[r] + (boundaries_[r + 1] - boundaries_[r]) / 2;
      MakeVariant(std::string_view(log_bytes_).substr(0, torn));
      VerifyVariant(kCommitted + puts, puts,
                    "mid-record after " + std::to_string(r));
    }
  }
}

// Flip one bit inside every record: the damaged record and everything
// after it vanish from replay, everything before it survives.
TEST_P(WalReplayTest, BitFlipInEveryRecordDropsItAndItsTail) {
  for (size_t r = 0; r + 1 < boundaries_.size(); ++r) {
    const size_t flip_at =
        boundaries_[r] + (boundaries_[r + 1] - boundaries_[r]) / 2;
    std::string bad = log_bytes_;
    bad[flip_at] ^= 0x01;
    MakeVariant(bad);
    const size_t puts = r == 0 ? 0 : r - 1;
    VerifyVariant(kCommitted + puts, puts, "flip record " + std::to_string(r));
  }
}

// An unusable log must not take the store down with it: recovery falls
// back to the pre-WAL paranoid scrub and reopens the committed state.
TEST_P(WalReplayTest, InvalidHeaderFallsBackToCommittedState) {
  std::string bad = log_bytes_;
  bad[0] ^= 0xff;  // magic
  MakeVariant(bad);
  VerifyVariant(kCommitted, 0, "invalid header");
}

TEST_P(WalReplayTest, MissingLogFallsBackToCommittedState) {
  MakeVariant(std::string_view());
  VerifyVariant(kCommitted, 0, "missing log");
}

// paranoid_open bypasses replay even with a pristine log: the scrub-based
// open is the WAL's escape hatch and must keep working (it recovers the
// committed state; the log tail is deliberately discarded).
TEST_P(WalReplayTest, ParanoidOpenScrubsInsteadOfReplaying) {
  MakeVariant(log_bytes_);
  StoreOptions options;
  options.model = GetParam();
  options.backend = VolumeKind::kMmap;
  options.path = variant_dir_;
  options.paranoid_open = true;
  {
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    EXPECT_EQ(store->replayed_wal_records(), 0u);
    EXPECT_EQ(store->model()->object_count(), kCommitted);
  }
  auto report_or = RunFsck(variant_dir_);
  ASSERT_TRUE(report_or.ok());
  EXPECT_TRUE(report_or.value().clean()) << report_or.value().ToString();
}

INSTANTIATE_TEST_SUITE_P(AllModels, WalReplayTest,
                         ::testing::ValuesIn(AllStorageModelKinds()),
                         [](const ::testing::TestParamInfo<StorageModelKind>&
                                info) {
                           std::string name = ToString(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace starfish
