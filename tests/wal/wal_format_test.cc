// On-disk WAL format: framing round-trips, payload codecs, and the scan
// contract — the valid prefix ends at the FIRST frame that fails its
// length, CRC or LSN-sequence check, no matter which byte went bad. The
// torn-tail sweep here is exhaustive over byte positions — deterministic by
// construction, no RNG, so the STARFISH_SEED convention does not apply; the
// store-level consequence (replay stops at the last valid record) is
// wal_replay_test.cc.

#include "wal/wal_format.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace starfish {
namespace {

/// A deterministic three-record log (checkpoint + two ops) with the byte
/// offset of every record boundary, for truncation/flip sweeps.
struct SampleLog {
  std::string bytes;
  uint64_t base_lsn = 40;
  /// boundaries[i] = bytes valid after exactly i records (boundaries[0] is
  /// the header end).
  std::vector<size_t> boundaries;
};

SampleLog MakeSampleLog() {
  SampleLog log;
  log.bytes = EncodeWalHeader(log.base_lsn);
  log.boundaries.push_back(log.bytes.size());
  AppendWalRecord(&log.bytes, WalRecordKind::kCheckpoint, 0, log.base_lsn,
                  EncodeWalCheckpointPayload(7));
  log.boundaries.push_back(log.bytes.size());
  WalOpPayload put;
  put.ref = 11;
  put.pages = {3, 4, 5};
  put.preimages.emplace_back(3, std::string("old-page-image"));
  put.body = "serialized-regions";
  AppendWalRecord(&log.bytes, WalRecordKind::kPut, 0, log.base_lsn + 1,
                  EncodeWalOpPayload(put));
  log.boundaries.push_back(log.bytes.size());
  WalOpPayload remove;
  remove.ref = 11;
  AppendWalRecord(&log.bytes, WalRecordKind::kRemove, kWalFlagAborted,
                  log.base_lsn + 2, EncodeWalOpPayload(remove));
  log.boundaries.push_back(log.bytes.size());
  return log;
}

TEST(WalFormatTest, WalPathNamesTheLogInsideTheDir) {
  EXPECT_EQ(WalPath("/some/store"), "/some/store/wal.log");
}

TEST(WalFormatTest, HeaderOnlyLogScansCleanAndEmpty) {
  const std::string bytes = EncodeWalHeader(42);
  ASSERT_EQ(bytes.size(), kWalHeaderSize);
  WalScan scan;
  ScanWalBytes(bytes, &scan);
  EXPECT_TRUE(scan.found);
  EXPECT_TRUE(scan.header_valid);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.base_lsn, 42u);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.next_lsn, 42u);
  EXPECT_EQ(scan.valid_bytes, kWalHeaderSize);
}

TEST(WalFormatTest, EveryHeaderByteIsCovered) {
  // Any single flipped bit in the 20-byte header must invalidate it: the
  // magic, version and base_lsn are all under the header CRC.
  const std::string good = EncodeWalHeader(123456789);
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] ^= 0x20;
    WalScan scan;
    ScanWalBytes(bad, &scan);
    EXPECT_FALSE(scan.header_valid) << "flip at byte " << i;
  }
  // Too short to hold a header at all.
  WalScan scan;
  ScanWalBytes(good.substr(0, kWalHeaderSize - 1), &scan);
  EXPECT_TRUE(scan.found);
  EXPECT_FALSE(scan.header_valid);
  ScanWalBytes(std::string_view(), &scan);
  EXPECT_TRUE(scan.found);
  EXPECT_FALSE(scan.header_valid);
}

TEST(WalFormatTest, RecordStreamRoundTrips) {
  const SampleLog log = MakeSampleLog();
  WalScan scan;
  ScanWalBytes(log.bytes, &scan);
  ASSERT_TRUE(scan.header_valid);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, log.bytes.size());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.next_lsn, log.base_lsn + 3);

  EXPECT_EQ(scan.records[0].kind, WalRecordKind::kCheckpoint);
  EXPECT_EQ(scan.records[0].lsn, log.base_lsn);
  uint64_t generation = 0;
  ASSERT_TRUE(DecodeWalCheckpointPayload(scan.records[0].payload, &generation));
  EXPECT_EQ(generation, 7u);

  EXPECT_EQ(scan.records[1].kind, WalRecordKind::kPut);
  EXPECT_EQ(scan.records[1].flags, 0);
  WalOpPayload put;
  ASSERT_TRUE(DecodeWalOpPayload(scan.records[1].payload, &put));
  EXPECT_EQ(put.ref, 11u);
  EXPECT_EQ(put.pages, (std::vector<PageId>{3, 4, 5}));
  ASSERT_EQ(put.preimages.size(), 1u);
  EXPECT_EQ(put.preimages[0].first, 3u);
  EXPECT_EQ(put.preimages[0].second, "old-page-image");
  EXPECT_EQ(put.body, "serialized-regions");

  EXPECT_EQ(scan.records[2].kind, WalRecordKind::kRemove);
  EXPECT_EQ(scan.records[2].flags, kWalFlagAborted);
  EXPECT_EQ(scan.records[2].lsn, log.base_lsn + 2);
}

TEST(WalFormatTest, TruncationAtEveryByteKeepsExactlyTheWholeRecords) {
  // Chop the sample log at EVERY byte length: the scan must recover
  // exactly the records whose frames fit, and flag a torn tail iff the
  // chop landed mid-record.
  const SampleLog log = MakeSampleLog();
  for (size_t len = kWalHeaderSize; len <= log.bytes.size(); ++len) {
    WalScan scan;
    ScanWalBytes(std::string_view(log.bytes).substr(0, len), &scan);
    ASSERT_TRUE(scan.header_valid) << "len " << len;
    size_t whole = 0;
    while (whole + 1 < log.boundaries.size() &&
           log.boundaries[whole + 1] <= len) {
      ++whole;
    }
    EXPECT_EQ(scan.records.size(), whole) << "len " << len;
    EXPECT_EQ(scan.torn_tail, len != log.boundaries[whole]) << "len " << len;
    EXPECT_EQ(scan.valid_bytes, log.boundaries[whole]) << "len " << len;
    EXPECT_EQ(scan.next_lsn, log.base_lsn + whole) << "len " << len;
  }
}

TEST(WalFormatTest, BitFlipAtEveryByteDropsTheDamagedRecordAndItsTail) {
  // Flip one bit at EVERY byte past the header: the scan must keep
  // exactly the records before the damaged frame (appends are ordered, so
  // nothing after an untrusted frame can be trusted either).
  const SampleLog log = MakeSampleLog();
  for (size_t i = kWalHeaderSize; i < log.bytes.size(); ++i) {
    std::string bad = log.bytes;
    bad[i] ^= 0x01;
    size_t damaged = 0;
    while (damaged + 1 < log.boundaries.size() && log.boundaries[damaged + 1] <= i) {
      ++damaged;
    }
    WalScan scan;
    ScanWalBytes(bad, &scan);
    ASSERT_TRUE(scan.header_valid) << "flip at " << i;
    EXPECT_EQ(scan.records.size(), damaged) << "flip at " << i;
    EXPECT_TRUE(scan.torn_tail) << "flip at " << i;
    EXPECT_EQ(scan.next_lsn, log.base_lsn + damaged) << "flip at " << i;
  }
}

TEST(WalFormatTest, OutOfSequenceLsnEndsTheValidPrefix) {
  // A structurally valid record carrying the wrong LSN is torn tail: the
  // file was not produced by ordered appends to this header.
  std::string bytes = EncodeWalHeader(10);
  AppendWalRecord(&bytes, WalRecordKind::kRemove, 0, 10,
                  EncodeWalOpPayload(WalOpPayload{}));
  AppendWalRecord(&bytes, WalRecordKind::kRemove, 0, 12,  // gap: expected 11
                  EncodeWalOpPayload(WalOpPayload{}));
  WalScan scan;
  ScanWalBytes(bytes, &scan);
  ASSERT_TRUE(scan.header_valid);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.next_lsn, 11u);
}

TEST(WalFormatTest, OpPayloadRoundTripsEmptyAndFull) {
  WalOpPayload empty;
  WalOpPayload decoded;
  ASSERT_TRUE(DecodeWalOpPayload(EncodeWalOpPayload(empty), &decoded));
  EXPECT_EQ(decoded.ref, 0u);
  EXPECT_TRUE(decoded.pages.empty());
  EXPECT_TRUE(decoded.preimages.empty());
  EXPECT_TRUE(decoded.body.empty());

  WalOpPayload full;
  full.ref = ~0ull;
  full.pages = {0, 1, 1u << 20};
  full.preimages.emplace_back(9, std::string(300, '\x7f'));
  full.preimages.emplace_back(2, std::string());  // empty image is legal
  full.body = std::string("\x00\x01\x02", 3);     // binary-safe
  ASSERT_TRUE(DecodeWalOpPayload(EncodeWalOpPayload(full), &decoded));
  EXPECT_EQ(decoded.ref, full.ref);
  EXPECT_EQ(decoded.pages, full.pages);
  EXPECT_EQ(decoded.preimages, full.preimages);
  EXPECT_EQ(decoded.body, full.body);
}

TEST(WalFormatTest, OpPayloadRejectsEveryTruncation) {
  WalOpPayload op;
  op.ref = 7;
  op.pages = {1, 2};
  op.preimages.emplace_back(3, std::string("abc"));
  op.body = "XYZ";
  const std::string good = EncodeWalOpPayload(op);
  WalOpPayload decoded;
  ASSERT_TRUE(DecodeWalOpPayload(good, &decoded));
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(DecodeWalOpPayload(std::string_view(good).substr(0, len),
                                    &decoded))
        << "prefix " << len;
  }
  // Trailing garbage is as invalid as missing bytes.
  EXPECT_FALSE(DecodeWalOpPayload(good + "!", &decoded));
}

TEST(WalFormatTest, CheckpointPayloadIsExactlyOneGeneration) {
  uint64_t generation = 0;
  ASSERT_TRUE(
      DecodeWalCheckpointPayload(EncodeWalCheckpointPayload(99), &generation));
  EXPECT_EQ(generation, 99u);
  EXPECT_FALSE(DecodeWalCheckpointPayload("short", &generation));
  EXPECT_FALSE(DecodeWalCheckpointPayload(
      EncodeWalCheckpointPayload(99) + "x", &generation));
}

TEST(WalFormatTest, ScanWalFileDistinguishesMissingFromDamaged) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "starfish_walfmt_missing.log")
          .string();
  std::filesystem::remove(path);
  auto scan_or = ScanWalFile(path);
  ASSERT_TRUE(scan_or.ok());
  EXPECT_FALSE(scan_or.value().found);
  EXPECT_FALSE(scan_or.value().header_valid);
}

TEST(WalFormatTest, KindPredicatesAndNames) {
  EXPECT_FALSE(IsWalOpKind(WalRecordKind::kCheckpoint));
  EXPECT_TRUE(IsWalOpKind(WalRecordKind::kPut));
  EXPECT_TRUE(IsWalOpKind(WalRecordKind::kUpdateRoot));
  EXPECT_TRUE(IsWalOpKind(WalRecordKind::kReplace));
  EXPECT_TRUE(IsWalOpKind(WalRecordKind::kRemove));
  EXPECT_STREQ(ToString(WalRecordKind::kCheckpoint), "checkpoint");
  EXPECT_STREQ(ToString(WalRecordKind::kPut), "put");
  EXPECT_FALSE(IsWalOpKind(WalRecordKind::kTxnBegin));
  EXPECT_FALSE(IsWalOpKind(WalRecordKind::kTxnCommit));
  EXPECT_FALSE(IsWalOpKind(WalRecordKind::kTxnAbort));
  EXPECT_TRUE(IsWalTxnMarker(WalRecordKind::kTxnBegin));
  EXPECT_TRUE(IsWalTxnMarker(WalRecordKind::kTxnCommit));
  EXPECT_TRUE(IsWalTxnMarker(WalRecordKind::kTxnAbort));
  EXPECT_FALSE(IsWalTxnMarker(WalRecordKind::kPut));
  EXPECT_FALSE(IsWalTxnMarker(WalRecordKind::kCheckpoint));
}

TEST(WalFormatTest, TxnMarkerPayloadRoundTrips) {
  uint64_t txn_id = 0;
  ASSERT_TRUE(DecodeWalTxnPayload(EncodeWalTxnPayload(77), &txn_id));
  EXPECT_EQ(txn_id, 77u);
  EXPECT_FALSE(DecodeWalTxnPayload("short", &txn_id));
  EXPECT_FALSE(DecodeWalTxnPayload(EncodeWalTxnPayload(77) + "x", &txn_id));
}

TEST(WalFormatTest, OpPayloadTxnTrailerRoundTrips) {
  WalOpPayload op;
  op.ref = 21;
  op.pages = {8, 9};
  op.preimages.emplace_back(8, std::string("before"));
  op.body = "regions-v2";
  op.txn_id = 0xDEADBEEFull;
  op.undo_kind = static_cast<uint8_t>(WalRecordKind::kReplace);
  op.undo_body = std::string("regions-v1\x00tail", 15);  // binary-safe
  WalOpPayload decoded;
  ASSERT_TRUE(DecodeWalOpPayload(EncodeWalOpPayload(op), &decoded));
  EXPECT_EQ(decoded.txn_id, op.txn_id);
  EXPECT_EQ(decoded.undo_kind, op.undo_kind);
  EXPECT_EQ(decoded.undo_body, op.undo_body);
  EXPECT_EQ(decoded.ref, op.ref);
  EXPECT_EQ(decoded.pages, op.pages);
  EXPECT_EQ(decoded.preimages, op.preimages);
  EXPECT_EQ(decoded.body, op.body);

  // Truncating anywhere inside the trailer is rejected, not decoded as a
  // trailer-less record: a record either has a whole trailer or none.
  const std::string good = EncodeWalOpPayload(op);
  WalOpPayload plain = op;
  plain.txn_id = 0;
  plain.undo_kind = 0;
  plain.undo_body.clear();
  const size_t body_end = EncodeWalOpPayload(plain).size();
  for (size_t len = body_end + 1; len < good.size(); ++len) {
    EXPECT_FALSE(
        DecodeWalOpPayload(std::string_view(good).substr(0, len), &decoded))
        << "trailer prefix " << len;
  }
}

TEST(WalFormatTest, AutonomousOpsKeepTheLegacyEncoding) {
  // A txn-less op must encode byte-identically to the pre-transaction
  // format (no trailer), and legacy bytes must decode with txn id 0.
  WalOpPayload op;
  op.ref = 11;
  op.pages = {3};
  op.body = "x";
  const std::string encoded = EncodeWalOpPayload(op);
  // Hand-build the legacy layout: ref, pages, preimages, body — nothing
  // after the body bytes.
  std::string legacy;
  legacy.append(std::string(reinterpret_cast<const char*>(&op.ref), 8));
  const uint32_t one = 1, page = 3, none = 0;
  legacy.append(reinterpret_cast<const char*>(&one), 4);
  legacy.append(reinterpret_cast<const char*>(&page), 4);
  legacy.append(reinterpret_cast<const char*>(&none), 4);
  legacy.append(reinterpret_cast<const char*>(&one), 4);
  legacy.push_back('x');
  EXPECT_EQ(encoded, legacy);
  WalOpPayload decoded;
  ASSERT_TRUE(DecodeWalOpPayload(legacy, &decoded));
  EXPECT_EQ(decoded.txn_id, 0u);
  EXPECT_EQ(decoded.undo_kind, 0u);
  EXPECT_TRUE(decoded.undo_body.empty());
}

}  // namespace
}  // namespace starfish
