// The multi-writer WAL crash matrix: N concurrent writers under
// wal_sync = kAlways, power loss at every log-append and log-sync fault
// point — including torn variants where only a prefix of the un-synced
// log stream reaches the medium. Unlike the volume-side matrix
// (tests/integration/crash_matrix_test.cc), here the log shares the dying
// device: FaultVolume::WrapLogFile buffers appended bytes in the same
// volatile cache as un-synced page writes, so a power loss takes the log
// tail down too.
//
// The durability contract under test:
//
//   * every put whose Commit was acknowledged durable is present and
//     byte-equal after recovery — acks survive ANY of these crashes;
//   * a put that FAILED is indeterminate but atomic: fully present and
//     byte-equal, or fully absent. (Indeterminate, not absent: a
//     follower's record can reach the medium in the leader's batch right
//     before the fault poisons the manager, so the writer gets an error
//     for an op that is durable — the classic unknown-outcome commit.)
//   * with one SEQUENTIAL writer the race disappears and the contract
//     sharpens to an exact match: recovered == acked, nothing
//     unacknowledged survives a torn_log_bytes = 0 power loss;
//   * sf_fsck is spotless after recovery.
//
// Group-commit durability (kGroup: one leader fsync carries many writers'
// acks) is proved by the no-fault test, which yanks the power after the
// last ack and expects every object back.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "../support/direct_probe.h"
#include "benchmark/generator.h"
#include "core/complex_object_store.h"
#include "disk/fault_volume.h"
#include "tools/fsck.h"

namespace starfish {
namespace {

constexpr size_t kWriters = 4;
constexpr size_t kPerWriter = 6;

bool DirectSupportedHere() {
  static const bool supported =
      test::DirectIoSupportedHere("walcrash", kDefaultPageSize);
  return supported;
}

struct FaultHandle {
  FaultVolume* volume = nullptr;
};

/// What one faulted multi-writer run observed before the machine died.
struct CrashOutcome {
  std::set<size_t> acked;  ///< object indices whose Put returned OK
  uint64_t log_appends = 0;
  uint64_t log_syncs = 0;
  uint64_t faults_fired = 0;
};

class WalCrashTest
    : public ::testing::TestWithParam<std::tuple<StorageModelKind,
                                                 VolumeKind>> {
 protected:
  StorageModelKind Model() const { return std::get<0>(GetParam()); }
  VolumeKind Backend() const { return std::get<1>(GetParam()); }

  void SetUp() override {
    if (Backend() == VolumeKind::kDirect && !DirectSupportedHere()) {
      GTEST_SKIP() << "filesystem has no O_DIRECT support";
    }
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_walcrash_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    crash_dir_ = dir_ + "_crashed";
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(crash_dir_);
    bench::GeneratorConfig config;
    config.n_objects = kWriters * kPerWriter;
    config.seed = 211;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::remove_all(crash_dir_, ec);
  }

  bool ByRef() const { return Model() != StorageModelKind::kNsm; }

  StoreOptions CrashOptions(FaultHandle* handle, WalSyncPolicy sync) {
    StoreOptions options;
    options.model = Model();
    options.backend = Backend();
    options.path = dir_;
    options.wal_sync = sync;
    options.volume_decorator =
        [handle](std::unique_ptr<Volume> inner) -> std::unique_ptr<Volume> {
      FaultVolumeOptions fault_options;
      fault_options.buffer_unsynced_writes = true;
      auto fault =
          std::make_unique<FaultVolume>(std::move(inner), fault_options);
      handle->volume = fault.get();
      return fault;
    };
    options.wal_log_decorator =
        [handle](std::unique_ptr<LogFile> inner) -> std::unique_ptr<LogFile> {
      return handle->volume->WrapLogFile(std::move(inner));
    };
    return options;
  }

  /// N writers race their slices of the database into a store whose log
  /// lives on the faulted device; the armed fault kills the machine
  /// mid-stream. Returns what was acknowledged before death; the disk
  /// image as the dead machine left it is in crash_dir_.
  CrashOutcome RunCrashed(const FaultPlan& plan, WalSyncPolicy sync) {
    CrashOutcome outcome;
    FaultHandle handle;
    auto store_or =
        ComplexObjectStore::Open(db_->schema(), CrashOptions(&handle, sync));
    EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
    if (!store_or.ok()) return outcome;
    {
      auto store = std::move(store_or).value();
      FaultPlan armed = plan;
      armed.power_loss_on_fault = true;
      handle.volume->SetPlan(armed);

      std::mutex ack_mu;
      std::vector<std::thread> writers;
      writers.reserve(kWriters);
      for (size_t w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
          for (size_t i = 0; i < kPerWriter; ++i) {
            const size_t index = w * kPerWriter + i;
            const auto& object = db_->objects()[index];
            if (!store->Put(object.ref, object.tuple).ok()) {
              return;  // poisoned log or dead volume: this writer is done
            }
            std::lock_guard<std::mutex> lock(ack_mu);
            outcome.acked.insert(index);
          }
        });
      }
      for (std::thread& t : writers) t.join();

      outcome.log_appends = handle.volume->log_append_calls_seen();
      outcome.log_syncs = handle.volume->log_sync_calls_seen();
      outcome.faults_fired = handle.volume->faults_fired();
      // Snapshot the dead disk before any destructor runs (a real power
      // loss executes no shutdown code).
      std::filesystem::copy(dir_, crash_dir_,
                            std::filesystem::copy_options::recursive);
    }
    return outcome;
  }

  /// Reopens the crash image and asserts the durability contract. With
  /// `exact` (sound only for sequential writers / all-acked runs) the
  /// recovered set must BE the acked set; otherwise failed puts are
  /// indeterminate-but-atomic.
  void VerifyRecovered(const CrashOutcome& outcome, bool exact,
                       const std::string& label) {
    StoreOptions options;
    options.model = Model();
    options.backend = Backend();
    options.path = crash_dir_;
    {
      auto store_or = ComplexObjectStore::Open(db_->schema(), options);
      ASSERT_TRUE(store_or.ok())
          << label << ": " << store_or.status().ToString();
      auto store = std::move(store_or).value();
      for (size_t i = 0; i < db_->objects().size(); ++i) {
        const auto& object = db_->objects()[i];
        auto got = ByRef() ? store->Get(object.ref)
                           : store->GetByKey(object.key,
                                             Projection::All(*db_->schema()));
        if (outcome.acked.count(i) > 0) {
          ASSERT_TRUE(got.ok()) << label << ": acked object " << i
                                << " lost: " << got.status().ToString();
          EXPECT_EQ(got.value(), object.tuple)
              << label << ": acked object " << i << " corrupted";
        } else if (exact) {
          EXPECT_FALSE(got.ok())
              << label << ": unacked object " << i << " resurfaced";
        } else if (got.ok()) {
          // Unknown-outcome op that turned out durable: it must still be
          // exactly the bytes the writer put — atomicity with no torn or
          // half-replayed state.
          EXPECT_EQ(got.value(), object.tuple) << label << " object " << i;
        }
      }
    }  // close checkpoints the recovered state
    auto report_or = RunFsck(crash_dir_);
    ASSERT_TRUE(report_or.ok()) << label;
    EXPECT_TRUE(report_or.value().clean())
        << label << "\n" << report_or.value().ToString();
    EXPECT_TRUE(report_or.value().warnings.empty())
        << label << "\n" << report_or.value().ToString();
  }

  void ResetDirs() {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(crash_dir_);
  }

  std::string dir_;
  std::string crash_dir_;
  std::unique_ptr<bench::BenchmarkDatabase> db_;
};

// Power loss at every log-append and log-sync call the workload issues
// (capped: the writer race reaches steady state within the first dozen
// epochs, later fault points repeat the same shape), lost and torn.
TEST_P(WalCrashTest, EveryLogFaultPointKeepsAckedPutsAndOnlyThose) {
  // Dry run to size the matrix.
  FaultPlan never;
  never.fail_log_append = 1u << 30;
  const CrashOutcome dry = RunCrashed(never, WalSyncPolicy::kAlways);
  ASSERT_EQ(dry.faults_fired, 0u);
  ASSERT_EQ(dry.acked.size(), db_->objects().size());
  ASSERT_GT(dry.log_appends, 0u);
  ASSERT_GT(dry.log_syncs, 0u);

  constexpr uint64_t kCap = 12;
  size_t cells = 0;
  for (uint64_t k = 1; k <= std::min(dry.log_appends + 2, kCap); ++k) {
    for (uint64_t torn_bytes : {uint64_t{0}, uint64_t{64}}) {
      FaultPlan plan;
      plan.fail_log_append = k;
      plan.torn_log_bytes = torn_bytes;
      const std::string label =
          "log_append=" + std::to_string(k) +
          (torn_bytes ? " torn" : " lost");
      SCOPED_TRACE(label);
      ResetDirs();
      const CrashOutcome outcome = RunCrashed(plan, WalSyncPolicy::kAlways);
      if (outcome.faults_fired == 0) continue;
      VerifyRecovered(outcome, /*exact=*/false, label);
      ++cells;
    }
  }
  for (uint64_t k = 1; k <= std::min(dry.log_syncs + 2, kCap); ++k) {
    for (uint64_t torn_bytes : {uint64_t{0}, uint64_t{64}}) {
      FaultPlan plan;
      plan.fail_log_sync = k;
      plan.torn_log_bytes = torn_bytes;
      const std::string label =
          "log_sync=" + std::to_string(k) + (torn_bytes ? " torn" : " lost");
      SCOPED_TRACE(label);
      ResetDirs();
      const CrashOutcome outcome = RunCrashed(plan, WalSyncPolicy::kAlways);
      if (outcome.faults_fired == 0) continue;
      VerifyRecovered(outcome, /*exact=*/false, label);
      ++cells;
    }
  }
  EXPECT_GE(cells, 8u) << "matrix collapsed";
}

// One sequential writer: each put is fully durable and acknowledged
// before the next is issued, so the indeterminacy window closes and a
// torn_log_bytes = 0 power loss must recover EXACTLY the acked prefix.
TEST_P(WalCrashTest, SingleWriterRecoversExactlyTheAckedPuts) {
  for (uint64_t k : {uint64_t{1}, uint64_t{3}, uint64_t{8}}) {
    for (bool sync_fault : {false, true}) {
      FaultPlan plan;
      if (sync_fault) {
        plan.fail_log_sync = k;
      } else {
        plan.fail_log_append = k;
      }
      const std::string label = std::string(sync_fault ? "sync" : "append") +
                                "=" + std::to_string(k);
      SCOPED_TRACE(label);
      ResetDirs();
      CrashOutcome outcome;
      FaultHandle handle;
      auto store_or = ComplexObjectStore::Open(
          db_->schema(), CrashOptions(&handle, WalSyncPolicy::kAlways));
      ASSERT_TRUE(store_or.ok());
      {
        auto store = std::move(store_or).value();
        FaultPlan armed = plan;
        armed.power_loss_on_fault = true;
        handle.volume->SetPlan(armed);
        for (size_t i = 0; i < db_->objects().size(); ++i) {
          if (!store->Put(db_->objects()[i].ref, db_->objects()[i].tuple)
                   .ok()) {
            break;
          }
          outcome.acked.insert(i);
        }
        outcome.faults_fired = handle.volume->faults_fired();
        std::filesystem::copy(dir_, crash_dir_,
                              std::filesystem::copy_options::recursive);
      }
      if (outcome.faults_fired == 0) continue;
      EXPECT_LT(outcome.acked.size(), db_->objects().size()) << label;
      VerifyRecovered(outcome, /*exact=*/true, label);
    }
  }
}

// Checkpoint fault point: power loss inside an explicit Flush — on the
// volume sync that precedes the catalog commit — after every writer was
// acked. Every acked put must survive even though the checkpoint it was
// riding on died with the machine. (Under kAlways the checkpoint itself
// issues no log I/O: every record is already durable, so the log-side
// fault points of the checkpoint are its volume writes and sync.)
TEST_P(WalCrashTest, PowerLossInsideTheCheckpointKeepsEveryAckedPut) {
  FaultHandle handle;
  auto store_or = ComplexObjectStore::Open(
      db_->schema(), CrashOptions(&handle, WalSyncPolicy::kAlways));
  ASSERT_TRUE(store_or.ok());
  CrashOutcome outcome;
  {
    auto store = std::move(store_or).value();
    for (size_t i = 0; i < db_->objects().size(); ++i) {
      ASSERT_TRUE(
          store->Put(db_->objects()[i].ref, db_->objects()[i].tuple).ok());
      outcome.acked.insert(i);
    }
    FaultPlan plan;
    plan.fail_sync_call = handle.volume->sync_calls_seen() + 1;
    plan.power_loss_on_fault = true;
    handle.volume->SetPlan(plan);
    EXPECT_FALSE(store->Flush().ok());
    EXPECT_GT(handle.volume->faults_fired(), 0u);
    std::filesystem::copy(dir_, crash_dir_,
                          std::filesystem::copy_options::recursive);
  }
  VerifyRecovered(outcome, /*exact=*/true, "checkpoint sync fault");
}

// The group-commit durability proof: concurrent writers under kGroup, one
// leader fsync acknowledging whole epochs; power yanked right after the
// last ack. Every acked put must be in the recovered store.
TEST_P(WalCrashTest, GroupCommitAcksSurvivePowerLoss) {
  FaultHandle handle;
  auto store_or = ComplexObjectStore::Open(
      db_->schema(), CrashOptions(&handle, WalSyncPolicy::kGroup));
  ASSERT_TRUE(store_or.ok());
  CrashOutcome outcome;
  {
    auto store = std::move(store_or).value();
    std::mutex ack_mu;
    std::vector<std::thread> writers;
    for (size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (size_t i = 0; i < kPerWriter; ++i) {
          const size_t index = w * kPerWriter + i;
          const auto& object = db_->objects()[index];
          ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
          std::lock_guard<std::mutex> lock(ack_mu);
          outcome.acked.insert(index);
        }
      });
    }
    for (std::thread& t : writers) t.join();
    // Acks delivered; the machine dies before any checkpoint.
    handle.volume->SimulatePowerLoss();
    std::filesystem::copy(dir_, crash_dir_,
                          std::filesystem::copy_options::recursive);
  }
  ASSERT_EQ(outcome.acked.size(), db_->objects().size());
  VerifyRecovered(outcome, /*exact=*/true, "group commit");
}

// The transaction rows of the crash matrix. One run stages all four txn
// outcomes, then the power fails with one transaction still open — the
// "crash between kTxnBegin and kTxnCommit" cell:
//
//   * a COMMITTED transaction survives byte-for-byte (its commit marker
//     made the whole unit durable);
//   * a ROLLED-BACK transaction never resurfaces (compensations + abort
//     marker share its id, replay skips them all);
//   * an OPEN transaction's ops are durable in the log but carry no
//     commit marker — recovery rolls them back wholesale;
//   * the autonomous put riding alongside replays normally.
//
// sf_fsck on the raw crash image reports the dangling kTxnBegin as a
// warning (a crash artifact), never an error; after recovery it is clean.
TEST_P(WalCrashTest, TxnCrashBetweenBeginAndCommitRollsBackOnlyThatTxn) {
  constexpr size_t kTxnSize = 6;
  const size_t committed_lo = 0;               // txn 1: commits
  const size_t rolled_lo = kTxnSize;           // txn 2: rolls back
  const size_t autonomous = 2 * kTxnSize;      // plain put
  const size_t open_lo = 2 * kTxnSize + 1;     // txn 3: still open at crash
  ASSERT_GE(db_->objects().size(), open_lo + kTxnSize);

  FaultHandle handle;
  auto store_or = ComplexObjectStore::Open(
      db_->schema(), CrashOptions(&handle, WalSyncPolicy::kAlways));
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  {
    auto store = std::move(store_or).value();
    {
      auto txn_or = store->Begin();
      ASSERT_TRUE(txn_or.ok());
      auto txn = std::move(txn_or).value();
      for (size_t i = committed_lo; i < committed_lo + kTxnSize; ++i) {
        const auto& object = db_->objects()[i];
        ASSERT_TRUE(txn.Put(object.ref, object.tuple).ok());
      }
      ASSERT_TRUE(txn.Commit().ok());
    }
    {
      auto txn_or = store->Begin();
      ASSERT_TRUE(txn_or.ok());
      auto txn = std::move(txn_or).value();
      for (size_t i = rolled_lo; i < rolled_lo + kTxnSize; ++i) {
        const auto& object = db_->objects()[i];
        ASSERT_TRUE(txn.Put(object.ref, object.tuple).ok());
      }
      ASSERT_TRUE(txn.Rollback().ok());
    }
    auto open_txn_or = store->Begin();
    ASSERT_TRUE(open_txn_or.ok());
    auto open_txn = std::move(open_txn_or).value();
    for (size_t i = open_lo; i < open_lo + kTxnSize; ++i) {
      const auto& object = db_->objects()[i];
      ASSERT_TRUE(open_txn.Put(object.ref, object.tuple).ok());
    }
    // The autonomous put's kAlways wait drags every earlier record —
    // including the open txn's ops — onto the medium. The open txn is now
    // fully durable EXCEPT for its commit marker: the hard case.
    ASSERT_TRUE(store->Put(db_->objects()[autonomous].ref,
                           db_->objects()[autonomous].tuple).ok());
    handle.volume->SimulatePowerLoss();
    std::filesystem::copy(dir_, crash_dir_,
                          std::filesystem::copy_options::recursive);
    // Dropping the open handle auto-rollbacks against a dead volume: it
    // must fail quietly, not hang — and the crash image is already taken.
  }

  {
    auto report_or = RunFsck(crash_dir_);
    ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
    EXPECT_TRUE(report_or.value().clean())
        << "dangling begin reported as an error\n"
        << report_or.value().ToString();
    bool warned = false;
    for (const std::string& w : report_or.value().warnings) {
      if (w.find("no commit or abort") != std::string::npos) warned = true;
    }
    EXPECT_TRUE(warned) << "no dangling-begin warning\n"
                        << report_or.value().ToString();
  }

  StoreOptions options;
  options.model = Model();
  options.backend = Backend();
  options.path = crash_dir_;
  {
    auto reopened_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
    auto reopened = std::move(reopened_or).value();
    auto read = [&](size_t i) {
      const auto& object = db_->objects()[i];
      return ByRef() ? reopened->Get(object.ref)
                     : reopened->GetByKey(object.key,
                                          Projection::All(*db_->schema()));
    };
    for (size_t i = committed_lo; i < committed_lo + kTxnSize; ++i) {
      auto got = read(i);
      ASSERT_TRUE(got.ok()) << "committed-txn object " << i
                            << " lost: " << got.status().ToString();
      EXPECT_EQ(got.value(), db_->objects()[i].tuple)
          << "committed-txn object " << i << " corrupted";
    }
    for (size_t i = rolled_lo; i < rolled_lo + kTxnSize; ++i) {
      EXPECT_FALSE(read(i).ok())
          << "rolled-back object " << i << " resurfaced";
    }
    {
      auto got = read(autonomous);
      ASSERT_TRUE(got.ok()) << "autonomous put lost";
      EXPECT_EQ(got.value(), db_->objects()[autonomous].tuple);
    }
    for (size_t i = open_lo; i < open_lo + kTxnSize; ++i) {
      EXPECT_FALSE(read(i).ok())
          << "uncommitted object " << i << " surfaced after the crash";
    }
  }  // close checkpoints the recovered state
  auto report_or = RunFsck(crash_dir_);
  ASSERT_TRUE(report_or.ok());
  EXPECT_TRUE(report_or.value().clean()) << report_or.value().ToString();
  EXPECT_TRUE(report_or.value().warnings.empty())
      << report_or.value().ToString();
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<StorageModelKind, VolumeKind>>&
        info) {
  std::string name = ToString(std::get<0>(info.param)) + "_" +
                     ToString(std::get<1>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, WalCrashTest,
    ::testing::Combine(::testing::ValuesIn(AllStorageModelKinds()),
                       ::testing::Values(VolumeKind::kMmap)),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    DirectBackend, WalCrashTest,
    ::testing::Combine(::testing::Values(StorageModelKind::kDasdbsNsm,
                                         StorageModelKind::kDsm),
                       ::testing::Values(VolumeKind::kDirect)),
    ParamName);

}  // namespace
}  // namespace starfish
