// Transaction semantics over the live store: Commit makes a multi-op
// unit durable as one, Rollback restores the prior state byte-for-byte
// through logical compensations, a dropped handle rolls back on its own,
// and Flush refuses to seal uncommitted work into a checkpoint. Crash
// atomicity (the log-side half of the contract) lives in
// tests/wal/wal_crash_test.cc; this file exercises the in-process half.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/generator.h"
#include "core/complex_object_store.h"
#include "objcache/object_cache.h"
#include "tools/fsck.h"

namespace starfish {
namespace {

constexpr size_t kBaseline = 8;  // objects committed before each test's txn
constexpr size_t kObjects = 12;  // the rest are txn fodder

class WalTxnTest : public ::testing::TestWithParam<StorageModelKind> {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_waltxn_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    bench::GeneratorConfig config;
    config.n_objects = kObjects;
    config.seed = 89;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  bool ByRef() const { return GetParam() != StorageModelKind::kNsm; }

  StoreOptions Options(VolumeKind backend = VolumeKind::kMmap) {
    StoreOptions options;
    options.model = GetParam();
    options.backend = backend;
    if (backend != VolumeKind::kMem) {
      options.path = dir_;
      options.wal_sync = WalSyncPolicy::kAlways;
    }
    return options;
  }

  std::unique_ptr<ComplexObjectStore> OpenStore(StoreOptions options) {
    auto store = ComplexObjectStore::Open(db_->schema(), options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return store.ok() ? std::move(store).value() : nullptr;
  }

  void PutBaseline(ComplexObjectStore* store) {
    for (size_t i = 0; i < kBaseline; ++i) {
      const auto& object = db_->objects()[i];
      ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
    }
    ASSERT_TRUE(store->Flush().ok());
  }

  Result<Tuple> Read(ComplexObjectStore* store, size_t index) {
    const auto& object = db_->objects()[index];
    return ByRef() ? store->Get(object.ref)
                   : store->GetByKey(object.key,
                                     Projection::All(*db_->schema()));
  }

  std::string dir_;
  std::unique_ptr<bench::BenchmarkDatabase> db_;
};

TEST_P(WalTxnTest, CommitMakesEveryOpDurableAsOneUnit) {
  {
    auto store = OpenStore(Options());
    ASSERT_NE(store, nullptr);
    PutBaseline(store.get());
    auto txn_or = store->Begin();
    ASSERT_TRUE(txn_or.ok()) << txn_or.status().ToString();
    auto txn = std::move(txn_or).value();
    EXPECT_GT(txn.id(), 0u);
    for (size_t i = kBaseline; i < kObjects; ++i) {
      const auto& object = db_->objects()[i];
      ASSERT_TRUE(txn.Put(object.ref, object.tuple).ok());
    }
    // A transaction reads its own writes before commit.
    auto own = Read(store.get(), kBaseline);
    ASSERT_TRUE(own.ok());
    EXPECT_EQ(own.value(), db_->objects()[kBaseline].tuple);
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_FALSE(txn.open());
    ASSERT_TRUE(store->Close().ok());
  }
  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  for (size_t i = 0; i < kObjects; ++i) {
    auto got = Read(store.get(), i);
    ASSERT_TRUE(got.ok()) << "object " << i << ": "
                          << got.status().ToString();
    EXPECT_EQ(got.value(), db_->objects()[i].tuple) << "object " << i;
  }
}

TEST_P(WalTxnTest, RollbackRestoresPriorStateByteForByte) {
  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  PutBaseline(store.get());

  const auto& replace_target = db_->objects()[2];
  const auto& remove_target = db_->objects()[4];
  const auto& fresh = db_->objects()[kBaseline];
  Tuple replacement = replace_target.tuple;
  replacement.values[1] = Value::Int32(-777);

  auto txn_or = store->Begin();
  ASSERT_TRUE(txn_or.ok());
  {
    auto txn = std::move(txn_or).value();
    ASSERT_TRUE(txn.Put(fresh.ref, fresh.tuple).ok());
    if (ByRef()) {
      ASSERT_TRUE(txn.Replace(replace_target.ref, replacement).ok());
      auto root = store->RootRecord(db_->objects()[3].ref);
      ASSERT_TRUE(root.ok());
      Tuple new_root = root.value();
      new_root.values[1] = Value::Int32(31337);
      ASSERT_TRUE(
          txn.UpdateRootRecord(db_->objects()[3].ref, new_root).ok());
      ASSERT_TRUE(txn.Remove(remove_target.ref).ok());
      // Mid-txn the new state is live...
      auto mid = store->Get(replace_target.ref);
      ASSERT_TRUE(mid.ok());
      EXPECT_EQ(mid.value(), replacement);
      EXPECT_TRUE(store->Get(remove_target.ref).status().IsNotFound());
    }
    ASSERT_TRUE(txn.Rollback().ok());
  }
  // ...and after rollback every baseline object is back, byte-for-byte,
  // while the txn's insert never happened.
  for (size_t i = 0; i < kBaseline; ++i) {
    auto got = Read(store.get(), i);
    ASSERT_TRUE(got.ok()) << "object " << i << ": "
                          << got.status().ToString();
    EXPECT_EQ(got.value(), db_->objects()[i].tuple) << "object " << i;
  }
  EXPECT_FALSE(Read(store.get(), kBaseline).ok());

  // The rolled-back state is what a reopen recovers, too.
  ASSERT_TRUE(store->Close().ok());
  store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  for (size_t i = 0; i < kBaseline; ++i) {
    auto got = Read(store.get(), i);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), db_->objects()[i].tuple) << "object " << i;
  }
  EXPECT_FALSE(Read(store.get(), kBaseline).ok());
}

TEST_P(WalTxnTest, DroppedHandleRollsBackAutomatically) {
  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  PutBaseline(store.get());
  {
    auto txn_or = store->Begin();
    ASSERT_TRUE(txn_or.ok());
    auto txn = std::move(txn_or).value();
    ASSERT_TRUE(txn.Put(db_->objects()[kBaseline].ref,
                        db_->objects()[kBaseline].tuple).ok());
  }  // no Commit: the destructor must undo the put
  EXPECT_FALSE(Read(store.get(), kBaseline).ok());
  EXPECT_TRUE(store->Flush().ok()) << "auto-rollback left the txn open";
}

TEST_P(WalTxnTest, OpsOnAClosedHandleFailFast) {
  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  PutBaseline(store.get());
  auto txn_or = store->Begin();
  ASSERT_TRUE(txn_or.ok());
  auto txn = std::move(txn_or).value();
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.open());
  const auto& object = db_->objects()[kBaseline];
  EXPECT_TRUE(txn.Put(object.ref, object.tuple).IsFailedPrecondition());
  EXPECT_TRUE(txn.Remove(object.ref).IsFailedPrecondition());
  EXPECT_TRUE(txn.Commit().IsFailedPrecondition());
  EXPECT_TRUE(txn.Rollback().IsFailedPrecondition());
}

TEST_P(WalTxnTest, FlushRefusesWhileATransactionIsOpen) {
  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  PutBaseline(store.get());
  auto txn_or = store->Begin();
  ASSERT_TRUE(txn_or.ok());
  auto txn = std::move(txn_or).value();
  ASSERT_TRUE(txn.Put(db_->objects()[kBaseline].ref,
                      db_->objects()[kBaseline].tuple).ok());
  Status flush = store->Flush();
  EXPECT_TRUE(flush.IsFailedPrecondition()) << flush.ToString();
  Status close = store->Close();
  EXPECT_TRUE(close.IsFailedPrecondition()) << close.ToString();
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(store->Flush().ok());
}

TEST_P(WalTxnTest, MemBackendTransactionsShareTheSameSemantics) {
  auto store = OpenStore(Options(VolumeKind::kMem));
  ASSERT_NE(store, nullptr);
  for (size_t i = 0; i < kBaseline; ++i) {
    const auto& object = db_->objects()[i];
    ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
  }
  {
    auto txn_or = store->Begin();
    ASSERT_TRUE(txn_or.ok());
    auto txn = std::move(txn_or).value();
    ASSERT_TRUE(txn.Put(db_->objects()[kBaseline].ref,
                        db_->objects()[kBaseline].tuple).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    auto got = Read(store.get(), kBaseline);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), db_->objects()[kBaseline].tuple);
  }
  {
    auto txn_or = store->Begin();
    ASSERT_TRUE(txn_or.ok());
    auto txn = std::move(txn_or).value();
    if (ByRef()) {
      Tuple replacement = db_->objects()[0].tuple;
      replacement.values[1] = Value::Int32(-42);
      ASSERT_TRUE(txn.Replace(db_->objects()[0].ref, replacement).ok());
    }
    ASSERT_TRUE(txn.Put(db_->objects()[kBaseline + 1].ref,
                        db_->objects()[kBaseline + 1].tuple).ok());
    ASSERT_TRUE(txn.Rollback().ok());
  }
  auto got = Read(store.get(), 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), db_->objects()[0].tuple);
  EXPECT_FALSE(Read(store.get(), kBaseline + 1).ok());
}

// A reader holding an objcache entry while a rollback races by must only
// ever see states that actually existed: the pre-txn tuple or the txn's
// replacement — never torn bytes, and never a post-rollback resurrection
// of the replacement inside a pinned pre-rollback entry's place.
TEST_P(WalTxnTest, RollbackRacesAReaderHoldingAnObjcacheEntry) {
  if (!ByRef()) GTEST_SKIP() << "plain NSM has no by-ref cache";
  StoreOptions options = Options();
  options.buffer_shards = 4;
  options.objcache.enabled = true;
  auto store = OpenStore(options);
  ASSERT_NE(store, nullptr);
  PutBaseline(store.get());
  const auto& target = db_->objects()[1];
  Tuple replacement = target.tuple;
  replacement.values[1] = Value::Int32(-123456);
  ASSERT_TRUE(store->Get(target.ref).ok());  // cache <- v1
  ASSERT_NE(store->object_cache(), nullptr);
  ASSERT_NE(store->object_cache()->Lookup(target.ref), nullptr)
      << "warm Get did not populate the cache";

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hits{0};
  std::thread reader([&] {
    ObjectCache* cache = store->object_cache();
    while (!stop.load(std::memory_order_relaxed)) {
      ObjCacheEntryRef entry = cache->Lookup(target.ref);
      if (entry == nullptr) continue;
      const bool is_v1 = entry->object == target.tuple;
      const bool is_v2 = entry->object == replacement;
      ASSERT_TRUE(is_v1 || is_v2) << "cache served a torn tuple";
      hits.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Keep the rollback churn going until the reader has demonstrably held
  // entries across it. After each repopulating Get, give the reader a
  // bounded window to observe the fresh entry before the next write
  // invalidates it — for the multi-relation models assembly dominates the
  // round, so an unpaced loop leaves only sliver-sized alive windows.
  const auto await_reader = [&hits](uint64_t before) {
    for (int spin = 0; spin < 1000 && hits.load() == before; ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(10));
    }
  };
  for (int round = 0; round < 50 && hits.load() < 20; ++round) {
    auto txn_or = store->Begin();
    ASSERT_TRUE(txn_or.ok());
    auto txn = std::move(txn_or).value();
    ASSERT_TRUE(txn.Replace(target.ref, replacement).ok());
    uint64_t before = hits.load();
    ASSERT_TRUE(store->Get(target.ref).ok());  // cache <- v2
    await_reader(before);
    ASSERT_TRUE(txn.Rollback().ok());
    before = hits.load();
    ASSERT_TRUE(store->Get(target.ref).ok());  // cache <- v1 again
    await_reader(before);
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const auto stats = store->objcache_stats();
  EXPECT_GT(hits.load(), 0u)
      << "reader never saw a cached entry (entries " << stats.entries
      << " hits " << stats.hits << " misses " << stats.misses
      << " inserts " << stats.inserts << " stale_drops " << stats.stale_drops
      << " invalidations " << stats.invalidations << ")";

  auto final_read = store->Get(target.ref);
  ASSERT_TRUE(final_read.ok());
  EXPECT_EQ(final_read.value(), target.tuple);
}

std::string ParamName(
    const ::testing::TestParamInfo<StorageModelKind>& info) {
  std::string name = ToString(info.param);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllModels, WalTxnTest,
                         ::testing::ValuesIn(AllStorageModelKinds()),
                         ParamName);

}  // namespace
}  // namespace starfish
