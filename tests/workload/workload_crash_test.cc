// Crash-fuzz over generated workloads (satellite of the workload harness):
// a generated trace replays through FaultVolume with a randomly chosen
// fault point and power loss, the disk image is snapshotted as the dead
// machine left it, recovery reopens it, and the differential oracle —
// whose shadow was stopped at exactly the acked prefix — verifies that
// precisely that state survived. Under wal_sync=kAlways every op the
// replay saw acknowledged had its WAL record fsync'd, and an op that
// failed mid-apply never became durable (its record either never made the
// log or was torn and dropped by recovery's CRC scan), so "exactly the
// acked prefix, minus any unterminated transaction" is the contract — not
// a bound.
//
// Reproduce any failure with STARFISH_SEED=<printed seed>.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "../support/env_seed.h"
#include "../support/param_name.h"
#include "core/complex_object_store.h"
#include "disk/fault_volume.h"
#include "tools/fsck.h"
#include "util/random.h"
#include "workload/replayer.h"
#include "workload/scenario.h"

namespace starfish::workload {
namespace {

struct FaultHandle {
  FaultVolume* volume = nullptr;
};

class WorkloadCrashTest
    : public ::testing::TestWithParam<StorageModelKind> {
 protected:
  void SetUp() override {
    schema_ = MakeWorkloadSchema();
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_workload_crash_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    crash_dir_ = dir_ + "_crashed";
    RemoveDirs();
  }

  void TearDown() override { RemoveDirs(); }

  void RemoveDirs() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::remove_all(crash_dir_, ec);
  }

  StoreOptions FaultedOptions(FaultHandle* handle) {
    StoreOptions options;
    options.model = GetParam();
    options.backend = VolumeKind::kMmap;
    options.path = dir_;
    // Every acked op is durable — that is what makes "exactly the acked
    // prefix" checkable instead of a committed/issued sandwich.
    options.wal_sync = WalSyncPolicy::kAlways;
    // Tiny pool: evictions write pages mid-replay, so page-write faults
    // can fire inside ops, not only at checkpoints.
    options.buffer_frames = 24;
    options.volume_decorator =
        [handle](std::unique_ptr<Volume> inner) -> std::unique_ptr<Volume> {
      FaultVolumeOptions fault_options;
      fault_options.buffer_unsynced_writes = true;
      auto fault =
          std::make_unique<FaultVolume>(std::move(inner), fault_options);
      handle->volume = fault.get();
      return fault;
    };
    options.wal_log_decorator =
        [handle](std::unique_ptr<LogFile> inner) -> std::unique_ptr<LogFile> {
      return handle->volume->WrapLogFile(std::move(inner));
    };
    return options;
  }

  ScenarioParams CrashParams(uint64_t seed) const {
    ScenarioParams params;
    params.seed = seed;
    params.n_objects = 32;
    params.n_ops = 140;
    params.max_growth = 16;
    params.write_fraction = params.write_fraction_end = 0.55;
    params.txn_fraction = 0.3;
    return params;
  }

  std::shared_ptr<const Schema> schema_;
  std::string dir_;
  std::string crash_dir_;
};

TEST_P(WorkloadCrashTest, AckedPrefixSurvivesRandomFaultPoint) {
  const uint64_t seed = test::TestSeed(20260809);
  const ScenarioParams params = CrashParams(seed);
  SCOPED_TRACE("STARFISH_SEED=" + std::to_string(seed));
  auto trace_or = GenerateTrace(params);
  ASSERT_TRUE(trace_or.ok()) << trace_or.status().ToString();
  const Trace& trace = trace_or.value();

  // Dry run: no fault fires; counts the volume and log calls the replay
  // issues so the fuzz below aims inside the replay, and proves the trace
  // replays cleanly through the fault decorators.
  uint64_t dry_writes = 0, dry_appends = 0, dry_log_syncs = 0;
  {
    FaultHandle handle;
    auto store_or = ComplexObjectStore::Open(schema_, FaultedOptions(&handle));
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    TraceReplayer replayer(trace, schema_);
    auto stats_or = replayer.Replay(store.get(), ReplayOptions{});
    ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
    ASSERT_TRUE(replayer.VerifyFinalState(store.get()).ok());
    dry_writes = handle.volume->write_calls_seen();
    dry_appends = handle.volume->log_append_calls_seen();
    dry_log_syncs = handle.volume->log_sync_calls_seen();
  }
  RemoveDirs();
  ASSERT_GT(dry_appends, 0u);  // kAlways must have logged every write op

  // The fuzz: random fault points across all three fault classes. Each
  // iteration runs on a fresh directory; the fault fires with power loss,
  // the replay halts at the failing op, and the image is snapshotted
  // BEFORE any destructor runs — a dead machine executes no shutdown code.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  const int iterations = test::SeedPinned() ? 4 : 8;
  for (int iteration = 0; iteration < iterations; ++iteration) {
    RemoveDirs();  // every iteration starts from an empty universe
    FaultPlan plan;
    plan.power_loss_on_fault = true;
    std::string label = "iter " + std::to_string(iteration) + ": ";
    switch (rng.Uniform(4)) {
      case 0:
        plan.fail_write_call = 1 + rng.Uniform(dry_writes);
        label += "write_call=" + std::to_string(plan.fail_write_call);
        break;
      case 1:
        plan.fail_write_call = 1 + rng.Uniform(dry_writes);
        plan.torn_pages = 1;
        label += "torn_write_call=" + std::to_string(plan.fail_write_call);
        break;
      case 2:
        plan.fail_log_append = 1 + rng.Uniform(std::max<uint64_t>(dry_appends, 1));
        plan.torn_log_bytes = rng.Uniform(64);
        label += "log_append=" + std::to_string(plan.fail_log_append);
        break;
      default:
        plan.fail_log_sync =
            1 + rng.Uniform(std::max<uint64_t>(dry_log_syncs, 1));
        label += "log_sync=" + std::to_string(plan.fail_log_sync);
        break;
    }
    SCOPED_TRACE(label);

    FaultHandle handle;
    auto store_or = ComplexObjectStore::Open(schema_, FaultedOptions(&handle));
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    TraceReplayer replayer(trace, schema_);
    {
      auto store = std::move(store_or).value();
      handle.volume->SetPlan(plan);
      ReplayOptions options;
      options.halt_on_store_error = true;
      auto stats_or = replayer.Replay(store.get(), options);
      ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
      if (!stats_or->halted) {
        // The armed call index lies beyond what the replay itself issues
        // (it would have fired during close). Nothing to crash-test here.
        continue;
      }
      // Snapshot the dead machine's disk while the store object is still
      // alive: un-synced pages and log bytes live in the fault overlay,
      // so the directory holds exactly the durable state.
      std::filesystem::copy(dir_, crash_dir_,
                            std::filesystem::copy_options::recursive);
    }  // destructors run against the dead volume; the snapshot is immune

    // Recovery on the snapshot must yield exactly the oracle's acked
    // prefix (the halting op was never acknowledged; an open transaction
    // was aborted by the halt).
    StoreOptions reopen;
    reopen.model = GetParam();
    reopen.backend = VolumeKind::kMmap;
    reopen.path = crash_dir_;
    auto recovered_or = ComplexObjectStore::Open(schema_, reopen);
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
    auto recovered = std::move(recovered_or).value();
    const Status verdict = replayer.VerifyFinalState(recovered.get());
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    ASSERT_TRUE(recovered->Close().ok());

    auto report_or = RunFsck(crash_dir_);
    ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
    EXPECT_TRUE(report_or.value().clean()) << report_or.value().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Models, WorkloadCrashTest,
                         ::testing::Values(StorageModelKind::kDsm,
                                           StorageModelKind::kDasdbsNsm),
                         [](const auto& info) {
                           return test::ParamName(ToString(info.param));
                         });

}  // namespace
}  // namespace starfish::workload
