// The differential workload harness: generated traces replayed against
// every store configuration, every result checked against the in-memory
// oracle, every final state byte-compared — the acceptance matrix of the
// workload subsystem (>= 20 seeds across all five models x mem/mmap x
// objcache on/off), plus the determinism lock (same seed + config =>
// identical replay result) and the long soak behind STARFISH_WORKLOAD_SOAK.
//
// Reproduce any failure with STARFISH_SEED=<printed seed>.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "../support/env_seed.h"
#include "../support/param_name.h"
#include "core/complex_object_store.h"
#include "models/model_factory.h"
#include "workload/replayer.h"
#include "workload/scenario.h"

namespace starfish::workload {
namespace {

using ConfigParam = std::tuple<StorageModelKind, VolumeKind, bool>;

std::string ConfigName(const ::testing::TestParamInfo<ConfigParam>& info) {
  std::string name = ToString(std::get<0>(info.param));
  name += std::get<1>(info.param) == VolumeKind::kMem ? "_mem" : "_mmap";
  name += std::get<2>(info.param) ? "_objcache" : "_plain";
  return test::ParamName(std::move(name));
}

class WorkloadDifferentialTest : public ::testing::TestWithParam<ConfigParam> {
 protected:
  void SetUp() override {
    schema_ = MakeWorkloadSchema();
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_workload_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  StoreOptions Options(const std::string& subdir) {
    StoreOptions options;
    options.model = std::get<0>(GetParam());
    options.backend = std::get<1>(GetParam());
    if (options.backend != VolumeKind::kMem) {
      options.path = dir_ + "/" + subdir;
    }
    // Small pool so replays actually churn pages instead of running fully
    // cached.
    options.buffer_frames = 96;
    options.objcache.enabled = std::get<2>(GetParam());
    return options;
  }

  /// Generates params' trace, replays it single-threaded against a fresh
  /// store of this config, verifies every read and the final state, and
  /// returns the store's state digest.
  uint32_t ReplayAndVerify(const ScenarioParams& params,
                           const std::string& subdir) {
    auto trace_or = GenerateTrace(params);
    EXPECT_TRUE(trace_or.ok()) << trace_or.status().ToString();
    if (!trace_or.ok()) return 0;
    const Trace& trace = trace_or.value();

    auto store_or = ComplexObjectStore::Open(schema_, Options(subdir));
    EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
    if (!store_or.ok()) return 0;
    auto store = std::move(store_or).value();

    TraceReplayer replayer(trace, schema_);
    auto stats_or = replayer.Replay(store.get(), ReplayOptions{});
    EXPECT_TRUE(stats_or.ok()) << stats_or.status().ToString();
    if (!stats_or.ok()) return 0;
    EXPECT_EQ(stats_or->ops, trace.ops.size());
    EXPECT_FALSE(stats_or->halted);

    const Status final_state = replayer.VerifyFinalState(store.get());
    EXPECT_TRUE(final_state.ok()) << final_state.ToString();
    auto digest_or = TraceReplayer::StoreStateDigest(store.get());
    EXPECT_TRUE(digest_or.ok()) << digest_or.status().ToString();
    if (!digest_or.ok()) return 0;
    // The store's canonical state digest must equal the oracle's — the
    // config-independent anchor that makes digests comparable across every
    // cell of the matrix.
    EXPECT_EQ(digest_or.value(), replayer.shadow().Digest());
    return digest_or.value();
  }

  std::shared_ptr<const Schema> schema_;
  std::string dir_;
};

// The acceptance matrix cell: 20 seeds through this configuration (or just
// the pinned one under STARFISH_SEED), scenario families round-robin so
// the parameter-space corners all see every config.
TEST_P(WorkloadDifferentialTest, SeedMatrix) {
  const uint64_t base = test::TestSeed(20260809);
  const int seeds = test::SeedPinned() ? 1 : 20;
  const auto families = ScenarioFamilies(base);
  for (int i = 0; i < seeds; ++i) {
    ScenarioParams params = families[i % families.size()].params;
    params.seed = base + i;
    // Keep the ctest matrix quick; the soak below runs the full size.
    params.n_ops = 220;
    SCOPED_TRACE(families[i % families.size()].name +
                 " STARFISH_SEED=" + std::to_string(params.seed));
    ReplayAndVerify(params, "seed" + std::to_string(i));
    if (::testing::Test::HasFailure()) return;  // first divergence is enough
  }
}

// Determinism lock: same seed + same config twice => byte-identical trace
// (locked in scenario_trace_test) and identical replay end state.
TEST_P(WorkloadDifferentialTest, ReplayIsDeterministic) {
  ScenarioParams params;
  params.seed = test::TestSeed(777);
  SCOPED_TRACE("STARFISH_SEED=" + std::to_string(params.seed));
  const uint32_t first = ReplayAndVerify(params, "det_a");
  const uint32_t second = ReplayAndVerify(params, "det_b");
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 0u);  // a replay that produced nothing would hide bugs
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, WorkloadDifferentialTest,
    ::testing::Combine(::testing::ValuesIn(AllStorageModelKinds()),
                       ::testing::Values(VolumeKind::kMem, VolumeKind::kMmap),
                       ::testing::Bool()),
    ConfigName);

// The long soak: every family x every config x many seeds, full-size
// traces. Hours of coverage, so it only runs when explicitly requested:
//
//   STARFISH_WORKLOAD_SOAK=1 ./starfish_tests --gtest_filter='*WorkloadSoak*'
TEST(WorkloadSoak, AllFamiliesAllConfigs) {
  if (std::getenv("STARFISH_WORKLOAD_SOAK") == nullptr) {
    GTEST_SKIP() << "set STARFISH_WORKLOAD_SOAK=1 to run the soak";
  }
  const uint64_t base = test::TestSeed(1);
  const int rounds = test::SeedPinned() ? 1 : 8;
  const auto schema = MakeWorkloadSchema();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "starfish_workload_soak")
          .string();
  for (int round = 0; round < rounds; ++round) {
    for (const auto& family : ScenarioFamilies(base + round * 7919)) {
      ScenarioParams params = family.params;
      params.n_ops = 1200;
      params.max_growth = 2 * params.max_growth;
      auto trace_or = GenerateTrace(params);
      ASSERT_TRUE(trace_or.ok());
      for (StorageModelKind model : AllStorageModelKinds()) {
        for (VolumeKind backend : {VolumeKind::kMem, VolumeKind::kMmap}) {
          for (bool objcache : {false, true}) {
            SCOPED_TRACE(family.name + " model=" + ToString(model) +
                         " backend=" +
                         (backend == VolumeKind::kMem ? "mem" : "mmap") +
                         " objcache=" + (objcache ? "on" : "off") +
                         " STARFISH_SEED=" + std::to_string(params.seed));
            std::filesystem::remove_all(dir);
            StoreOptions options;
            options.model = model;
            options.backend = backend;
            if (backend != VolumeKind::kMem) options.path = dir;
            options.buffer_frames = 96;
            options.objcache.enabled = objcache;
            auto store_or = ComplexObjectStore::Open(schema, options);
            ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
            auto store = std::move(store_or).value();
            TraceReplayer replayer(trace_or.value(), schema);
            auto stats_or = replayer.Replay(store.get(), ReplayOptions{});
            ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
            const Status final_state = replayer.VerifyFinalState(store.get());
            ASSERT_TRUE(final_state.ok()) << final_state.ToString();
          }
        }
      }
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace starfish::workload
