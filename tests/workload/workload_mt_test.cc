// Concurrent replay under the store's threading contract (TSan suite —
// the CI TSan stage runs every *WorkloadMt* test): the multi-threaded
// replayer cuts generated traces into read-only / write-class batches,
// runs each batch on N workers with the deterministic stream partition,
// and must land on byte-the-same final state as a single-threaded replay
// of the identical trace.
//
// Reproduce any failure with STARFISH_SEED=<printed seed>.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <tuple>

#include "../support/env_seed.h"
#include "../support/param_name.h"
#include "core/complex_object_store.h"
#include "workload/replayer.h"
#include "workload/scenario.h"

namespace starfish::workload {
namespace {

// (model, threads): one striped direct model — concurrent writers on
// disjoint stripes truly overlap — and the paper's recommended NSM
// variant, whose writes serialize on the global latch set but whose reads
// fan out. Both run with 2 and 4 workers.
using MtParam = std::tuple<StorageModelKind, uint32_t>;

class WorkloadMtTest : public ::testing::TestWithParam<MtParam> {
 protected:
  void SetUp() override {
    schema_ = MakeWorkloadSchema();
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_workload_mt_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  StoreOptions Options(const std::string& subdir) {
    StoreOptions options;
    options.model = std::get<0>(GetParam());
    options.backend = VolumeKind::kMmap;
    options.path = dir_ + "/" + subdir;
    options.buffer_frames = 96;
    options.buffer_shards = 4;   // thread-safe pool for concurrent readers
    options.write_stripes = 4;   // parallel applies on the direct models
    return options;
  }

  std::shared_ptr<const Schema> schema_;
  std::string dir_;
};

TEST_P(WorkloadMtTest, ConcurrentReplayMatchesSequential) {
  const uint32_t threads = std::get<1>(GetParam());
  // Bursty scenario: alternating read-only / write-only phases give the
  // batched replayer real parallel sections of both kinds.
  ScenarioParams params;
  params.seed = test::TestSeed(4242);
  params.burst_len = 32;
  params.write_fraction = params.write_fraction_end = 0.5;
  params.n_ops = 260;
  SCOPED_TRACE("STARFISH_SEED=" + std::to_string(params.seed));

  auto trace_or = GenerateTrace(params);
  ASSERT_TRUE(trace_or.ok()) << trace_or.status().ToString();
  const Trace& trace = trace_or.value();

  // Sequential reference replay.
  uint32_t sequential_digest = 0;
  {
    auto store_or = ComplexObjectStore::Open(schema_, Options("seq"));
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    TraceReplayer replayer(trace, schema_);
    auto stats_or = replayer.Replay(store.get(), ReplayOptions{});
    ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
    ASSERT_TRUE(replayer.VerifyFinalState(store.get()).ok());
    auto digest_or = TraceReplayer::StoreStateDigest(store.get());
    ASSERT_TRUE(digest_or.ok());
    sequential_digest = digest_or.value();
  }

  // Concurrent replay of the identical trace: every read verified from
  // concurrent sessions, then the end state byte-compared.
  auto store_or = ComplexObjectStore::Open(schema_, Options("mt"));
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();
  TraceReplayer replayer(trace, schema_);
  ReplayOptions options;
  options.threads = threads;
  auto stats_or = replayer.Replay(store.get(), options);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  EXPECT_EQ(stats_or->ops, trace.ops.size());
  const Status final_state = replayer.VerifyFinalState(store.get());
  EXPECT_TRUE(final_state.ok()) << final_state.ToString();
  auto digest_or = TraceReplayer::StoreStateDigest(store.get());
  ASSERT_TRUE(digest_or.ok());
  EXPECT_EQ(digest_or.value(), sequential_digest)
      << "concurrent replay diverged from sequential replay";
  EXPECT_EQ(digest_or.value(), replayer.shadow().Digest());
}

TEST_P(WorkloadMtTest, InterleavedMixAlsoConverges) {
  const uint32_t threads = std::get<1>(GetParam());
  // No burst phases: batches come from natural IsWriteClass transitions,
  // so this exercises many small parallel sections and txn groups.
  ScenarioParams params;
  params.seed = test::TestSeed(9001);
  params.txn_fraction = 0.4;
  params.n_ops = 200;
  SCOPED_TRACE("STARFISH_SEED=" + std::to_string(params.seed));

  auto trace_or = GenerateTrace(params);
  ASSERT_TRUE(trace_or.ok());
  auto store_or = ComplexObjectStore::Open(schema_, Options("mix"));
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto store = std::move(store_or).value();
  TraceReplayer replayer(trace_or.value(), schema_);
  ReplayOptions options;
  options.threads = threads;
  auto stats_or = replayer.Replay(store.get(), options);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  const Status final_state = replayer.VerifyFinalState(store.get());
  EXPECT_TRUE(final_state.ok()) << final_state.ToString();
  auto digest_or = TraceReplayer::StoreStateDigest(store.get());
  ASSERT_TRUE(digest_or.ok());
  EXPECT_EQ(digest_or.value(), replayer.shadow().Digest());
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndThreads, WorkloadMtTest,
    ::testing::Combine(::testing::Values(StorageModelKind::kDsm,
                                         StorageModelKind::kDasdbsNsm),
                       ::testing::Values(2u, 4u)),
    [](const ::testing::TestParamInfo<MtParam>& info) {
      return test::ParamName(ToString(std::get<0>(info.param)) + "_t" +
                             std::to_string(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace starfish::workload
