// Objcache behavior under generated mixed read/write traces (satellite of
// the workload harness): negative caching and epoch invalidation were only
// covered by hand-written sequences before — here a generated trace with a
// heavy guaranteed-miss probe mix drives them, the differential oracle
// checks every result, and the cache counters prove the machinery actually
// engaged (a workload that never hit the negative path would vacuously
// pass the byte checks).
//
// Reproduce any failure with STARFISH_SEED=<printed seed>.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "../support/env_seed.h"
#include "../support/param_name.h"
#include "core/complex_object_store.h"
#include "workload/replayer.h"
#include "workload/scenario.h"

namespace starfish::workload {
namespace {

class WorkloadObjCacheTest
    : public ::testing::TestWithParam<StorageModelKind> {
 protected:
  void SetUp() override {
    schema_ = MakeWorkloadSchema();
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_workload_objcache_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// A mix engineered for the negative path: lots of repeated miss probes
  /// (half of them aimed at the NEXT growth ref, so a later Put must
  /// invalidate the cached NotFound verdict), with enough writes that
  /// epoch invalidation fires continuously.
  ScenarioParams NegativeHeavyParams(uint64_t seed) const {
    ScenarioParams params;
    params.seed = seed;
    params.n_objects = 32;
    params.n_ops = 400;
    params.max_growth = 24;
    params.miss_fraction = 0.35;
    params.write_fraction = params.write_fraction_end = 0.3;
    params.zipf_theta = 1.0;
    return params;
  }

  std::shared_ptr<const Schema> schema_;
  std::string dir_;
};

TEST_P(WorkloadObjCacheTest, NegativeCachingAndEpochsUnderGeneratedTraffic) {
  const uint64_t base = test::TestSeed(31337);
  const int seeds = test::SeedPinned() ? 1 : 4;
  ObjCacheStats total;
  uint64_t total_expected_misses = 0;
  for (int i = 0; i < seeds; ++i) {
    const ScenarioParams params = NegativeHeavyParams(base + i);
    SCOPED_TRACE("STARFISH_SEED=" + std::to_string(params.seed));
    auto trace_or = GenerateTrace(params);
    ASSERT_TRUE(trace_or.ok()) << trace_or.status().ToString();

    StoreOptions options;
    options.model = GetParam();
    options.backend = VolumeKind::kMem;
    options.objcache.enabled = true;
    auto store_or = ComplexObjectStore::Open(schema_, options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();

    TraceReplayer replayer(trace_or.value(), schema_);
    auto stats_or = replayer.Replay(store.get(), ReplayOptions{});
    ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
    const Status final_state = replayer.VerifyFinalState(store.get());
    ASSERT_TRUE(final_state.ok()) << final_state.ToString();

    const ObjCacheStats cache = store->objcache_stats();
    total.hits += cache.hits;
    total.negative_inserts += cache.negative_inserts;
    total.negative_hits += cache.negative_hits;
    total.invalidations += cache.invalidations;
    total_expected_misses += stats_or->expected_misses;
  }
  // The byte checks above are only meaningful if the machinery engaged:
  // across the seeds, the mix must have produced cache traffic on every
  // path under test (summed so one quiet seed cannot flake the run).
  EXPECT_GT(total_expected_misses, 0u)
      << "generator produced no miss probes — parameter drift?";
  EXPECT_GT(total.hits, 0u) << "no positive cache hits";
  EXPECT_GT(total.negative_inserts, 0u) << "no NotFound verdicts recorded";
  EXPECT_GT(total.negative_hits, 0u)
      << "repeated miss probes never hit the negative side table";
  EXPECT_GT(total.invalidations, 0u)
      << "writes never invalidated cached state";
}

// Cache-on and cache-off replays of one trace must land on identical
// bytes — the cache is an accelerator, never a semantic layer. (The full
// matrix covers this across configs; this case pins it as the objcache
// satellite's own determinism check, on the negative-heavy mix.)
TEST_P(WorkloadObjCacheTest, CacheOnOffStatesAreByteIdentical) {
  const uint64_t seed = test::TestSeed(60221023);
  const ScenarioParams params = NegativeHeavyParams(seed);
  SCOPED_TRACE("STARFISH_SEED=" + std::to_string(seed));
  auto trace_or = GenerateTrace(params);
  ASSERT_TRUE(trace_or.ok());

  uint32_t digests[2] = {0, 0};
  for (const bool objcache : {false, true}) {
    StoreOptions options;
    options.model = GetParam();
    options.backend = VolumeKind::kMem;
    options.objcache.enabled = objcache;
    auto store_or = ComplexObjectStore::Open(schema_, options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    TraceReplayer replayer(trace_or.value(), schema_);
    auto stats_or = replayer.Replay(store.get(), ReplayOptions{});
    ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
    auto digest_or = TraceReplayer::StoreStateDigest(store.get());
    ASSERT_TRUE(digest_or.ok());
    digests[objcache ? 1 : 0] = digest_or.value();
    EXPECT_EQ(digest_or.value(), replayer.shadow().Digest());
  }
  EXPECT_EQ(digests[0], digests[1]);
}

// Plain NSM has no by-ref access, so the cache is documented as ignored —
// the kNsm instantiation is excluded; every cache-capable model runs.
INSTANTIATE_TEST_SUITE_P(Models, WorkloadObjCacheTest,
                         ::testing::Values(StorageModelKind::kDsm,
                                           StorageModelKind::kDasdbsDsm,
                                           StorageModelKind::kNsmIndexed,
                                           StorageModelKind::kDasdbsNsm),
                         [](const auto& info) {
                           return test::ParamName(ToString(info.param));
                         });

}  // namespace
}  // namespace starfish::workload
