// The scenario generator and trace format by themselves (no store):
// determinism, wire-format round-trip and rejection, and the structural
// invariants the replayer's multi-threaded partition relies on.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "../support/env_seed.h"
#include "nf2/value.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace starfish::workload {
namespace {

TEST(ScenarioTraceTest, SameSeedIsByteIdentical) {
  ScenarioParams params;
  params.seed = test::TestSeed(42);
  SCOPED_TRACE("STARFISH_SEED=" + std::to_string(params.seed));
  auto a = GenerateTrace(params);
  auto b = GenerateTrace(params);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(a.value() == b.value());
  EXPECT_EQ(EncodeTrace(a.value()), EncodeTrace(b.value()));
}

TEST(ScenarioTraceTest, DifferentSeedsDiffer) {
  ScenarioParams params;
  params.seed = 1;
  auto a = GenerateTrace(params);
  params.seed = 2;
  auto b = GenerateTrace(params);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(a.value() == b.value());
}

TEST(ScenarioTraceTest, RoundTripThroughWireFormat) {
  ScenarioParams params;
  params.seed = test::TestSeed(7);
  SCOPED_TRACE("STARFISH_SEED=" + std::to_string(params.seed));
  auto trace = GenerateTrace(params);
  ASSERT_TRUE(trace.ok());
  const std::string bytes = EncodeTrace(trace.value());
  auto back = DecodeTrace(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == trace.value());
}

TEST(ScenarioTraceTest, DecodeRejectsCorruption) {
  ScenarioParams params;
  params.n_ops = 50;
  auto trace = GenerateTrace(params);
  ASSERT_TRUE(trace.ok());
  const std::string bytes = EncodeTrace(trace.value());

  // Truncation.
  EXPECT_TRUE(DecodeTrace(std::string_view(bytes.data(), 10))
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(DecodeTrace(std::string_view(bytes.data(), bytes.size() - 1))
                  .status()
                  .IsCorruption());
  // Bad magic.
  std::string magic = bytes;
  magic[0] ^= 0xFF;
  EXPECT_TRUE(DecodeTrace(magic).status().IsCorruption());
  // A flipped byte in the middle trips the CRC.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x01;
  EXPECT_TRUE(DecodeTrace(flipped).status().IsCorruption());
}

TEST(ScenarioTraceTest, DecodeRejectsFutureVersion) {
  ScenarioParams params;
  params.n_ops = 20;
  auto trace = GenerateTrace(params);
  ASSERT_TRUE(trace.ok());
  // Decode validates the version before the checksum, so a future-version
  // file is NotSupported (not Corruption) even though the CRC no longer
  // matches this build's expectation of the bytes.
  std::string bytes = EncodeTrace(trace.value());
  bytes[8] = static_cast<char>(kTraceVersion + 1);
  EXPECT_TRUE(DecodeTrace(bytes).status().IsNotSupported());
}

TEST(ScenarioTraceTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "starfish_trace_rt.sftrace")
          .string();
  std::filesystem::remove(path);
  ScenarioParams params;
  params.seed = 11;
  auto trace = GenerateTrace(params);
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(WriteTraceFile(trace.value(), path).ok());
  auto back = ReadTraceFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == trace.value());
  std::filesystem::remove(path);
  EXPECT_TRUE(ReadTraceFile(path).status().IsNotFound());
}

TEST(ScenarioTraceTest, FamiliesAreDeterministicAndDistinct) {
  const uint64_t seed = test::TestSeed(20260809);
  SCOPED_TRACE("STARFISH_SEED=" + std::to_string(seed));
  const auto families = ScenarioFamilies(seed);
  ASSERT_GE(families.size(), 7u);
  std::set<std::string> names;
  std::set<std::string> encodings;
  for (const auto& scenario : families) {
    EXPECT_TRUE(names.insert(scenario.name).second)
        << "duplicate family " << scenario.name;
    auto once = GenerateTrace(scenario.params);
    auto twice = GenerateTrace(scenario.params);
    ASSERT_TRUE(once.ok()) << scenario.name;
    ASSERT_TRUE(twice.ok()) << scenario.name;
    EXPECT_EQ(EncodeTrace(once.value()), EncodeTrace(twice.value()))
        << scenario.name;
    EXPECT_TRUE(encodings.insert(EncodeTrace(once.value())).second)
        << "family " << scenario.name << " generated an identical trace";
  }
}

// The structural invariants the multi-threaded replayer's partition rests
// on: stream = ref % kTraceStreams for every ref-targeted op, transaction
// groups contiguous and single-stream, writes valid by construction, and
// guaranteed-miss probes really never written.
TEST(ScenarioTraceTest, GeneratedTracesUpholdPartitionInvariants) {
  const uint64_t base = test::TestSeed(500);
  const int seeds = test::SeedPinned() ? 1 : 10;
  for (int s = 0; s < seeds; ++s) {
    for (const auto& scenario : ScenarioFamilies(base + s)) {
      SCOPED_TRACE(scenario.name + " STARFISH_SEED=" +
                   std::to_string(scenario.params.seed));
      auto trace_or = GenerateTrace(scenario.params);
      ASSERT_TRUE(trace_or.ok());
      const Trace& trace = trace_or.value();
      ASSERT_GT(trace.ops.size(), 0u);

      std::set<ObjectRef> live;
      std::set<ObjectRef> live_snapshot;
      std::set<ObjectRef> ever_put;
      bool in_txn = false;
      bool txn_rolls_back = false;
      uint8_t txn_stream = 0;
      for (size_t i = 0; i < trace.ops.size(); ++i) {
        const TraceOp& op = trace.ops[i];
        switch (op.kind) {
          case TraceOpKind::kBegin:
            ASSERT_FALSE(in_txn) << "nested Begin at op " << i;
            in_txn = true;
            txn_stream = op.stream;
            live_snapshot = live;
            break;
          case TraceOpKind::kCommit:
          case TraceOpKind::kRollback:
            ASSERT_TRUE(in_txn) << "unmatched txn close at op " << i;
            ASSERT_EQ(op.stream, txn_stream);
            if (op.kind == TraceOpKind::kRollback) {
              live = live_snapshot;
              txn_rolls_back = true;
            }
            in_txn = false;
            break;
          case TraceOpKind::kPut:
            ASSERT_EQ(op.stream, op.ref % kTraceStreams);
            ASSERT_FALSE(in_txn) << "Put inside a txn at op " << i;
            ASSERT_EQ(live.count(op.ref), 0u)
                << "Put on live ref " << op.ref << " at op " << i;
            ASSERT_EQ(ever_put.count(op.ref), 0u)
                << "ref " << op.ref << " reused at op " << i;
            live.insert(op.ref);
            ever_put.insert(op.ref);
            break;
          case TraceOpKind::kReplace:
          case TraceOpKind::kUpdateRoot:
          case TraceOpKind::kRemove:
            ASSERT_EQ(op.stream, op.ref % kTraceStreams);
            if (in_txn) ASSERT_EQ(op.stream, txn_stream);
            ASSERT_EQ(live.count(op.ref), 1u)
                << ToString(op.kind) << " on dead ref " << op.ref << " at op "
                << i;
            if (op.kind == TraceOpKind::kRemove) live.erase(op.ref);
            break;
          case TraceOpKind::kScan:
            break;
          default:  // reads
            ASSERT_EQ(op.stream, op.ref % kTraceStreams);
            ASSERT_LT(op.ref, trace.header.ref_universe);
            break;
        }
        // Every write op carries a materializable recipe.
        if (op.kind == TraceOpKind::kPut ||
            op.kind == TraceOpKind::kReplace) {
          ASSERT_GE(op.fanout, 1u);
          ASSERT_LE(op.fanout, scenario.params.fanout_max);
        }
      }
      ASSERT_FALSE(in_txn) << "trace ends inside a transaction";
      // Guaranteed-miss range stayed untouched.
      for (ObjectRef ref : ever_put) {
        ASSERT_LT(ref, static_cast<ObjectRef>(scenario.params.n_objects) +
                           scenario.params.max_growth);
      }
      if (scenario.name == "txn_mix") {
        EXPECT_TRUE(txn_rolls_back)
            << "txn_mix generated no rollback — parameter drift?";
      }
    }
  }
}

TEST(ScenarioTraceTest, GeneratorRejectsDegenerateParams) {
  ScenarioParams params;
  params.n_objects = 2;  // < kTraceStreams
  EXPECT_TRUE(GenerateTrace(params).status().IsInvalidArgument());
  params = ScenarioParams{};
  params.txn_ops_max = 0;
  EXPECT_TRUE(GenerateTrace(params).status().IsInvalidArgument());
  params = ScenarioParams{};
  params.fanout_max = 0;
  EXPECT_TRUE(GenerateTrace(params).status().IsInvalidArgument());
}

TEST(ScenarioTraceTest, WorkloadObjectsAreSchemaValidAndKeyed) {
  const auto schema = MakeWorkloadSchema();
  for (ObjectRef ref : {ObjectRef{0}, ObjectRef{7}, ObjectRef{100}}) {
    const Tuple object = MakeWorkloadObject(*schema, ref, 99, 4, 128, 24);
    EXPECT_TRUE(ValidateTuple(*schema, object).ok());
    EXPECT_EQ(object.values[0].as_int32(),
              static_cast<int32_t>(WorkloadKeyOf(ref)));
    const Tuple root = MakeWorkloadRootRecord(*schema, ref, 99, 24);
    EXPECT_TRUE(ValidateTuple(*schema, root).ok());
    EXPECT_EQ(root.values[0].as_int32(),
              static_cast<int32_t>(WorkloadKeyOf(ref)));
  }
  // The recipe is the identity: same seed, same bytes.
  EXPECT_EQ(MakeWorkloadObject(*schema, 3, 1234, 5, 64, 16),
            MakeWorkloadObject(*schema, 3, 1234, 5, 64, 16));
  EXPECT_NE(MakeWorkloadObject(*schema, 3, 1234, 5, 64, 16),
            MakeWorkloadObject(*schema, 3, 1235, 5, 64, 16));
}

}  // namespace
}  // namespace starfish::workload
