// End-to-end checks: analytic estimates vs simulator measurements must agree
// where the paper's assumptions hold (no cache overflow), and the paper's
// headline findings must reproduce on a mid-sized database.

#include <gtest/gtest.h>

#include "benchmark/calibration.h"
#include "benchmark/runner.h"
#include "models/dasdbs_nsm_model.h"
#include "models/direct_model.h"
#include "models/nsm_model.h"

namespace starfish {
namespace {

using namespace starfish::bench;  // NOLINT

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config;
    config.n_objects = 400;
    config.seed = 71;
    auto db = BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = new BenchmarkDatabase(std::move(db).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static QuerySuiteResults Run(StorageModelKind kind, uint32_t frames) {
    BufferOptions buffer;
    buffer.frame_count = frames;
    QueryConfig query;
    query.loops = 80;  // n/5, like Fig. 6
    query.q1a_samples = 15;
    query.q2a_samples = 8;
    auto result = BenchmarkRunner::RunOne(kind, *db_, buffer, query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result->queries;
  }

  static BenchmarkDatabase* db_;
};

BenchmarkDatabase* IntegrationTest::db_ = nullptr;

TEST_F(IntegrationTest, AnalyticMatchesMeasuredForDirectModelNoOverflow) {
  // Big buffer: the analytical best case should be close to the measured
  // values (this is the paper's own validation method).
  StorageEngineOptions eo;
  eo.buffer.frame_count = 4000;
  StorageEngine engine(eo);
  ModelConfig mc;
  mc.schema = db_->schema();
  auto model = DirectModel::Create(&engine, mc, DirectModelOptions{});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(db_->LoadInto(model->get(), &engine).ok());

  auto rel = CalibrateDirect(model->get(), *db_);
  ASSERT_TRUE(rel.ok());
  auto workload = DeriveWorkloadParams(*db_, /*loops=*/80, 2012);
  ASSERT_TRUE(workload.ok());
  const cost::QueryEstimates est = cost::EstimateDsm(rel.value(), *workload);

  QueryConfig qc;
  qc.loops = 80;
  qc.q1a_samples = 15;
  qc.q2a_samples = 8;
  QueryRunner runner(model->get(), &engine, db_, qc);
  auto q1c = runner.Query1c();
  ASSERT_TRUE(q1c.ok());
  EXPECT_NEAR(q1c->Pages(), est.q1c, est.q1c * 0.25);
  auto q2b = runner.Query2b();
  ASSERT_TRUE(q2b.ok());
  EXPECT_NEAR(q2b->Pages(), est.q2b, est.q2b * 0.35);
}

TEST_F(IntegrationTest, AnalyticMatchesMeasuredForDasdbsNsm) {
  StorageEngineOptions eo;
  eo.buffer.frame_count = 4000;
  StorageEngine engine(eo);
  ModelConfig mc;
  mc.schema = db_->schema();
  auto model = DasdbsNsmModel::Create(&engine, mc);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(db_->LoadInto(model->get(), &engine).ok());

  auto rels = CalibrateDasdbsNsm(model->get(), *db_);
  ASSERT_TRUE(rels.ok());
  auto workload = DeriveWorkloadParams(*db_, 80, 2012);
  ASSERT_TRUE(workload.ok());
  const auto layout = DeriveNormalizedLayout(model->get()->decomposition());
  const cost::QueryEstimates est =
      cost::EstimateDasdbsNsm(rels.value(), layout, *workload);

  QueryConfig qc;
  qc.loops = 80;
  QueryRunner runner(model->get(), &engine, db_, qc);
  auto q2b = runner.Query2b();
  ASSERT_TRUE(q2b.ok());
  EXPECT_NEAR(q2b->Pages(), est.q2b, std::max(0.8, est.q2b * 0.4));
  auto q3b = runner.Query3b();
  ASSERT_TRUE(q3b.ok());
  EXPECT_NEAR(q3b->Pages(), est.q3b, std::max(1.0, est.q3b * 0.4));
}

TEST_F(IntegrationTest, PaperHeadlineOrderingHolds) {
  const auto dsm = Run(StorageModelKind::kDsm, 320);
  const auto ddsm = Run(StorageModelKind::kDasdbsDsm, 320);
  const auto nsm = Run(StorageModelKind::kNsm, 320);
  const auto nsmx = Run(StorageModelKind::kNsmIndexed, 320);
  const auto dnsm = Run(StorageModelKind::kDasdbsNsm, 320);

  // Query 1 by key: NSM catastrophic, normalized+addressed models cheap.
  EXPECT_GT(nsm.q1b.Pages(), dnsm.q1b.Pages() * 5);
  EXPECT_GT(dsm.q1b.Pages(), dnsm.q1b.Pages() * 3);
  EXPECT_LT(nsmx.q1b.Pages(), nsm.q1b.Pages());

  // Query 2 loops: DASDBS-NSM <= DASDBS-DSM <= DSM (the paper's Fig. 6).
  EXPECT_LE(dnsm.q2b.Pages(), ddsm.q2b.Pages() * 1.1);
  EXPECT_LT(ddsm.q2b.Pages(), dsm.q2b.Pages());

  // Query 3 loops: DASDBS-DSM pays the page pool; DASDBS-NSM stays cheap.
  EXPECT_GT(ddsm.q3b.Pages(), dnsm.q3b.Pages() * 2);
  EXPECT_LT(dnsm.q3b.Pages(), dsm.q3b.Pages());

  // CPU proxy: NSM burns the most buffer fixes (paper §5.2).
  EXPECT_GT(nsm.q2b.Fixes(), dnsm.q2b.Fixes() * 5);
}

TEST_F(IntegrationTest, ObjectSizeSweepShape) {
  // Fig. 5's mechanism: growing unused Sightseeing data hurts DSM's
  // navigation but leaves DASDBS-NSM's untouched.
  auto run_with_sights = [](uint32_t max_sights, StorageModelKind kind) {
    GeneratorConfig config;
    config.n_objects = 250;
    config.seed = 73;
    config.max_sightseeings = max_sights;
    auto db = BenchmarkDatabase::Generate(config);
    EXPECT_TRUE(db.ok());
    BufferOptions buffer;
    buffer.frame_count = 1200;
    QueryConfig query;
    query.loops = 50;
    auto result = BenchmarkRunner::RunOne(kind, *db, buffer, query);
    EXPECT_TRUE(result.ok());
    return result->queries.q2b.Pages();
  };
  const double dsm_0 = run_with_sights(0, StorageModelKind::kDsm);
  const double dsm_30 = run_with_sights(30, StorageModelKind::kDsm);
  EXPECT_GT(dsm_30, dsm_0 * 1.5);

  const double dnsm_0 = run_with_sights(0, StorageModelKind::kDasdbsNsm);
  const double dnsm_30 = run_with_sights(30, StorageModelKind::kDasdbsNsm);
  // DASDBS-NSM's query 2b never touches the Sightseeing relation.
  EXPECT_NEAR(dnsm_30, dnsm_0, std::max(0.8, dnsm_0 * 0.35));
}

TEST_F(IntegrationTest, CalibrationMatchesPaperShapes) {
  StorageEngine engine;
  ModelConfig mc;
  mc.schema = db_->schema();
  auto nsm = NsmModel::Create(&engine, mc, NsmModelOptions{});
  ASSERT_TRUE(nsm.ok());
  ASSERT_TRUE(db_->LoadInto(nsm->get(), &engine).ok());
  auto rels = CalibrateNsm(nsm->get(), *db_);
  ASSERT_TRUE(rels.ok());
  ASSERT_EQ(rels->size(), 4u);
  // Sightseeing is the bulk of the data (paper: m = 2813 of ~3700 pages).
  EXPECT_GT((*rels)[3].m, (*rels)[0].m);
  EXPECT_GT((*rels)[3].m, (*rels)[2].m);
  // k values near the paper's (13 / 11 / 4 for station/connection/sights).
  EXPECT_NEAR((*rels)[0].k, 13, 4);
  EXPECT_NEAR((*rels)[2].k, 11, 4);
  EXPECT_NEAR((*rels)[3].k, 4, 1.5);
}

}  // namespace
}  // namespace starfish
