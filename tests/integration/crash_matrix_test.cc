// The crash matrix: every fault point FaultVolume can hit during
// Put/Flush/close, simulated power loss, reopen, recovery.
//
// Protocol under test (core/generations.h + wal/wal_manager.h): WAL append
// -> volume sync -> new catalog generation file -> atomic CURRENT repoint
// -> log truncation. The invariant the matrix asserts for EVERY fault
// point:
//
//   after power loss at that point, reopening the directory yields some
//   subset S of the issued put sequence with committed <= |S| <= issued —
//   the committed checkpoint state plus whatever tail of operations the
//   write-ahead log durably captured as applied. Every committed object is
//   in S, every object in S is byte-equal to what was put, scans agree
//   with the object count, and sf_fsck reports zero inconsistencies.
//
// (Before the WAL, recovery could only roll back to the committed
// checkpoint, so the matrix asserted S == committed exactly. The log —
// which lives on the filesystem, outside the faulted volume, like a log on
// its own device — legitimately carries recovery PAST the checkpoint; the
// lower bound is what crash consistency promises, the byte-equality is
// what redo must not invent. S is usually a prefix but need not be: a put
// that failed mid-apply on the dying machine logs as aborted and is
// skipped by redo, while a later put that ran entirely in cache logged as
// applied — a legitimate hole. Shared-device power loss, where the log
// tail dies with the volume, is covered by the multi-writer WAL matrix in
// tests/wal/wal_crash_test.cc.)
//
// The harness runs the workload over FaultVolume{backend} with write
// buffering on, so un-synced page writes really vanish at power loss; the
// directory is then copied aside (the "disk as the dead machine left it")
// and recovery runs on the copy. The matrix is parameterized over the
// persistent backend as well as the storage model: the full model sweep
// runs over mmap, and a second instantiation proves the identical
// protocol guarantees over DirectVolume (skipped where the filesystem has
// no O_DIRECT) — FaultVolume's overlay flush goes through the backend-
// neutral WritePageUnmetered seam, so the same fault points apply.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "../support/direct_probe.h"
#include "benchmark/generator.h"
#include "core/complex_object_store.h"
#include "core/generations.h"
#include "disk/direct_volume.h"
#include "disk/fault_volume.h"
#include "tools/fsck.h"

namespace starfish {
namespace {

constexpr size_t kBatchSize = 4;
constexpr size_t kBatches = 3;

bool DirectSupportedHere() {
  // kDefaultPageSize: the matrix opens real stores at the default geometry.
  static const bool supported =
      test::DirectIoSupportedHere("crash", kDefaultPageSize);
  return supported;
}

/// Receives the FaultVolume pointer out of the store's decorator seam.
struct FaultHandle {
  FaultVolume* volume = nullptr;
};

/// What one faulted run of the workload observed.
struct RunOutcome {
  size_t committed_batches = 0;  ///< explicit flushes that returned OK
  uint64_t write_calls = 0;      ///< volume write calls the run issued
  uint64_t sync_calls = 0;
  uint64_t faults_fired = 0;
};

class CrashMatrixTest
    : public ::testing::TestWithParam<std::tuple<StorageModelKind,
                                                 VolumeKind>> {
 protected:
  StorageModelKind Model() const { return std::get<0>(GetParam()); }
  VolumeKind Backend() const { return std::get<1>(GetParam()); }

  void SetUp() override {
    if (Backend() == VolumeKind::kDirect && !DirectSupportedHere()) {
      GTEST_SKIP() << "filesystem has no O_DIRECT support";
    }
    dir_ = (std::filesystem::temp_directory_path() /
            ("starfish_crash_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    crash_dir_ = dir_ + "_crashed";
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(crash_dir_);

    bench::GeneratorConfig config;
    config.n_objects = kBatchSize * kBatches;
    config.seed = 97;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::remove_all(crash_dir_, ec);
  }

  StoreOptions FaultedOptions(FaultHandle* handle) {
    StoreOptions options;
    options.model = Model();
    options.backend = Backend();
    options.path = dir_;
    options.volume_decorator =
        [handle](std::unique_ptr<Volume> inner) -> std::unique_ptr<Volume> {
      FaultVolumeOptions fault_options;
      fault_options.buffer_unsynced_writes = true;
      auto fault =
          std::make_unique<FaultVolume>(std::move(inner), fault_options);
      handle->volume = fault.get();
      return fault;
    };
    return options;
  }

  bool ByRef() const { return Model() != StorageModelKind::kNsm; }

  /// The workload: three Put batches; batches 1 and 2 committed by explicit
  /// Flush, batch 3 by the close-time checkpoint. `plan` arms the fault
  /// (power loss the moment it fires). Because generation numbers advance
  /// by exactly one per checkpoint in a fresh directory, the committed
  /// batch count afterwards IS the CURRENT generation — including faults
  /// that fired inside the close, where no in-process observer survives.
  RunOutcome RunWorkload(const FaultPlan& plan) {
    RunOutcome outcome;
    FaultHandle handle;
    auto store_or =
        ComplexObjectStore::Open(db_->schema(), FaultedOptions(&handle));
    EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
    size_t explicit_commits = 0;
    {
      auto store = std::move(store_or).value();
      FaultPlan armed = plan;
      armed.power_loss_on_fault = true;
      handle.volume->SetPlan(armed);
      for (size_t batch = 0; batch < kBatches; ++batch) {
        for (size_t i = 0; i < kBatchSize; ++i) {
          const auto& object = db_->objects()[batch * kBatchSize + i];
          (void)store->Put(object.ref, object.tuple);
        }
        if (batch + 1 < kBatches && store->Flush().ok()) {
          explicit_commits = batch + 1;
        }
      }
      // Pre-close counters: the dry run sizes the matrix from these (plus
      // headroom for the close, whose counters die with the store).
      outcome.write_calls = handle.volume->write_calls_seen();
      outcome.sync_calls = handle.volume->sync_calls_seen();
      outcome.faults_fired = handle.volume->faults_fired();
      if (outcome.faults_fired > 0) {
        // The machine is dead: snapshot the disk NOW, before any
        // destructor runs — a real power loss executes no shutdown code,
        // so not even the inner volume's close-time journal append may
        // reach the image recovery runs on.
        std::filesystem::copy(dir_, crash_dir_,
                              std::filesystem::copy_options::recursive);
      }
    }  // close: the destructor checkpoint commits batch 3 — unless the
       // armed fault killed the machine first (close-phase faults are
       // snapshotted after destruction below; by then the volume was down,
       // so the destructors changed nothing the protocol relies on)

    bool found = false;
    auto current = ReadCurrentGeneration(dir_, &found);
    EXPECT_TRUE(current.ok()) << current.status().ToString();
    outcome.committed_batches =
        found ? static_cast<size_t>(current.value()) : 0;
    EXPECT_GE(outcome.committed_batches, explicit_commits);
    EXPECT_LE(outcome.committed_batches, kBatches);
    if (outcome.committed_batches < kBatches) {
      // The close did not commit, so the fault must have fired somewhere.
      outcome.faults_fired = std::max<uint64_t>(outcome.faults_fired, 1);
    }
    return outcome;
  }

  /// Reopens the post-crash copy and asserts the recovery contract: the
  /// recovered set contains every committed-checkpoint object, nothing the
  /// workload never issued, every recovered object byte-equal, and scans
  /// agreeing with the object count. The set is usually a prefix of the
  /// put sequence but may carry holes (aborted mid-apply ops are skipped
  /// by redo while later in-cache puts replayed), so each issued object is
  /// classified individually instead of assuming prefix shape.
  void VerifyRecovered(size_t committed_batches, const std::string& label) {
    StoreOptions options;
    options.model = Model();
    options.backend = Backend();
    options.path = crash_dir_;
    // The verification pass runs with the object cache ON: recovery must
    // hand the cache tier a store whose every assembly reflects recovered
    // state (the cache is created empty after replay/scrub, so these
    // byte-equality checks double as the no-pre-crash-assembly contract).
    options.objcache.enabled = true;
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok()) << label << ": " << store_or.status().ToString();
    auto store = std::move(store_or).value();
    if (ByRef()) {
      ASSERT_NE(store->object_cache(), nullptr) << label;
      EXPECT_EQ(store->objcache_stats().entries, 0u)
          << label << ": reopened store did not start cache-cold";
    }

    const size_t committed = committed_batches * kBatchSize;
    const size_t issued = db_->objects().size();
    const size_t recovered = store->model()->object_count();
    EXPECT_GE(recovered, committed) << label << ": committed objects lost";
    EXPECT_LE(recovered, issued) << label << ": recovery invented objects";
    size_t present = 0;
    for (size_t i = 0; i < issued; ++i) {
      const auto& object = db_->objects()[i];
      auto got = ByRef() ? store->Get(object.ref)
                         : store->GetByKey(object.key,
                                           Projection::All(*db_->schema()));
      if (got.ok()) {
        ++present;
        EXPECT_EQ(got.value(), object.tuple) << label << " object " << i;
        if (ByRef()) {
          // The first Get populated the cache; the hit must serve the
          // identical recovered bytes.
          auto again = store->Get(object.ref);
          ASSERT_TRUE(again.ok()) << label << " object " << i;
          EXPECT_EQ(again.value(), object.tuple)
              << label << " object " << i << ": cache hit diverged";
        }
      } else {
        // Absent is only legal past the committed checkpoint, and must be
        // clean absence — any other status is recovery damage.
        EXPECT_TRUE(got.status().IsNotFound())
            << label << " object " << i << ": " << got.status().ToString();
        EXPECT_GE(i, committed)
            << label << ": committed object " << i << " lost: "
            << got.status().ToString();
      }
    }
    EXPECT_EQ(present, recovered)
        << label << ": object count disagrees with point lookups";
    if (ByRef() && present > 0) {
      EXPECT_EQ(store->objcache_stats().hits, present)
          << label << ": second Gets were not cache hits";
    }
    // Scans must agree with the object count — phantoms from torn slotted
    // pages would surface here.
    size_t scanned = 0;
    EXPECT_TRUE(store->Scan(Projection::All(*db_->schema()),
                            [&](int64_t, const Tuple&) {
                              ++scanned;
                              return Status::OK();
                            })
                    .ok())
        << label;
    EXPECT_EQ(scanned, recovered) << label;
  }

  std::string dir_;
  std::string crash_dir_;
  std::unique_ptr<bench::BenchmarkDatabase> db_;
};

// The full matrix: power loss at EVERY write call and EVERY sync call the
// workload issues, plus a torn variant of every write.
TEST_P(CrashMatrixTest, EveryFaultPointRecoversToCommittedGeneration) {
  // Dry run (fault index far beyond the workload) to size the matrix. The
  // close-time checkpoint's calls are part of the run, so probe the
  // directory afterwards for the real totals.
  FaultPlan never;
  never.fail_write_call = 1u << 30;
  const RunOutcome dry = RunWorkload(never);
  ASSERT_EQ(dry.faults_fired, 0u);
  ASSERT_EQ(dry.committed_batches, kBatches);  // close committed batch 3
  // dry.write_calls/sync_calls were sampled before the close; the close
  // adds one more flush (writes + 1 sync). Size the matrix generously and
  // skip cells whose fault never fires.
  const uint64_t max_writes = dry.write_calls + dry.write_calls / 2 + 8;
  const uint64_t max_syncs = dry.sync_calls + 2;

  size_t cells = 0, skipped = 0;
  for (uint64_t k = 1; k <= max_writes; ++k) {
    for (uint32_t torn : {0u, 1u}) {
      FaultPlan plan;
      plan.fail_write_call = k;
      plan.torn_pages = torn;
      const std::string label = "write_call=" + std::to_string(k) +
                                (torn ? " torn" : " lost");
      std::filesystem::remove_all(dir_);
      std::filesystem::remove_all(crash_dir_);
      const RunOutcome outcome = RunWorkload(plan);
      if (outcome.faults_fired == 0) {
        ++skipped;  // k beyond what the workload issues (incl. close)
        continue;
      }
      SCOPED_TRACE(label);
      if (!std::filesystem::exists(crash_dir_)) {
        // Close-phase fault: the pre-destruction snapshot didn't happen.
        std::filesystem::copy(dir_, crash_dir_,
                              std::filesystem::copy_options::recursive);
      }
      VerifyRecovered(outcome.committed_batches, label);
      auto report_or = RunFsck(crash_dir_);
      ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
      EXPECT_TRUE(report_or.value().clean())
          << label << "\n" << report_or.value().ToString();
      EXPECT_TRUE(report_or.value().warnings.empty())
          << label << "\n" << report_or.value().ToString();
      ++cells;
    }
  }
  for (uint64_t k = 1; k <= max_syncs; ++k) {
    FaultPlan plan;
    plan.fail_sync_call = k;
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(crash_dir_);
    const RunOutcome outcome = RunWorkload(plan);
    if (outcome.faults_fired == 0) {
      ++skipped;
      continue;
    }
    const std::string label = "sync_call=" + std::to_string(k);
    SCOPED_TRACE(label);
    if (!std::filesystem::exists(crash_dir_)) {
      std::filesystem::copy(dir_, crash_dir_,
                            std::filesystem::copy_options::recursive);
    }
    VerifyRecovered(outcome.committed_batches, label);
    auto report_or = RunFsck(crash_dir_);
    ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
    EXPECT_TRUE(report_or.value().clean())
        << label << "\n" << report_or.value().ToString();
    ++cells;
  }
  // The matrix must actually have covered fault points in all three phases
  // (first flush, second flush, close).
  EXPECT_GE(cells, 6u) << "matrix collapsed: " << cells << " cells, "
                       << skipped << " skipped";
}

// Satellite regression: the commit point is ordered AFTER Volume::Sync. A
// checkpoint whose sync fails must leave no commit — no CURRENT, no
// generation file — because the catalog may never reference bytes the
// volume does not durably have.
TEST_P(CrashMatrixTest, CommitPointIsOrderedAfterSync) {
  FaultHandle handle;
  auto store_or =
      ComplexObjectStore::Open(db_->schema(), FaultedOptions(&handle));
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(store_or).value();
  for (size_t i = 0; i < kBatchSize; ++i) {
    ASSERT_TRUE(store->Put(db_->objects()[i].ref, db_->objects()[i].tuple).ok());
  }
  FaultPlan plan;
  plan.fail_sync_call = 1;  // fail the checkpoint's sync, nothing else
  handle.volume->SetPlan(plan);
  EXPECT_FALSE(store->Flush().ok());
  // The failed checkpoint committed nothing: the commit pointer does not
  // exist and no generation file was written (the catalog write is ordered
  // after the sync, the CURRENT repoint after the catalog write).
  EXPECT_FALSE(std::filesystem::exists(CurrentPath(dir_)));
  EXPECT_TRUE(ListCatalogGenerations(dir_).empty());
  EXPECT_EQ(store->catalog_generation(), 0u);
  // The fault was one-shot; the retried checkpoint commits generation 1.
  handle.volume->ClearPlan();
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_TRUE(std::filesystem::exists(CurrentPath(dir_)));
  EXPECT_EQ(store->catalog_generation(), 1u);
  bool found = false;
  auto current = ReadCurrentGeneration(dir_, &found);
  ASSERT_TRUE(current.ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(current.value(), 1u);
}

// Objcache satellite: a reopened store must NEVER serve an assembly cached
// before the crash — on either recovery path. The run populates the cache,
// then plants two distinct hazards before taking the power-loss image:
//
//   * subset X is Replaced to v2 and never re-read: its pre-crash cache
//     entries (dropped by invalidation) held v1 — if any leaked across the
//     reopen, the WAL-replay store (recovered state v2) would serve v1;
//   * subset Y is Replaced to v2 and re-read: its pre-crash entries held
//     v2 — if any leaked, the paranoid scrub store (log discarded,
//     recovered state v1) would serve v2.
//
// Page writes are buffered by FaultVolume (they vanish at the snapshot,
// like a real power loss), while wal_sync=kAlways makes every Replace's
// record durable — so the image holds v1 pages plus a replayable v2 log
// tail, and the two reopen modes legitimately disagree about every
// replaced object. The cache may agree with neither store's pre-crash
// view; it must agree with each store's own recovery.
TEST_P(CrashMatrixTest, ObjCacheNeverServesPreCrashAssembly) {
  if (!ByRef()) {
    GTEST_SKIP() << "plain NSM has no by-ref reads, so no object cache";
  }
  const size_t issued = db_->objects().size();
  ASSERT_GE(issued, 2 * kBatchSize);
  std::vector<Tuple> v2;
  for (const auto& object : db_->objects()) {
    Tuple alt = object.tuple;
    alt.values[1] = Value::Int32(-424242);
    v2.push_back(alt);
  }
  const auto in_x = [&](size_t i) { return i < kBatchSize; };
  const auto in_y = [&](size_t i) {
    return i >= kBatchSize && i < 2 * kBatchSize;
  };

  const std::string replay_dir = dir_ + "_replay";
  const std::string scrub_dir = dir_ + "_scrub";
  std::filesystem::remove_all(replay_dir);
  std::filesystem::remove_all(scrub_dir);
  {
    FaultHandle handle;
    StoreOptions options = FaultedOptions(&handle);
    options.objcache.enabled = true;
    options.wal_sync = WalSyncPolicy::kAlways;
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    for (const auto& object : db_->objects()) {
      ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
    }
    ASSERT_TRUE(store->Flush().ok());  // v1 checkpoint: committed state
    for (const auto& object : db_->objects()) {
      ASSERT_TRUE(store->Get(object.ref).ok());  // cache <- v1 assemblies
    }
    for (size_t i = 0; i < issued; ++i) {
      if (!in_x(i) && !in_y(i)) continue;
      ASSERT_TRUE(store->Replace(db_->objects()[i].ref, v2[i]).ok());
      if (in_y(i)) {
        auto got = store->Get(db_->objects()[i].ref);  // cache <- v2
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got.value(), v2[i]);
      }
    }
    // Power-loss images, taken while the machine still "runs": the
    // buffered (un-synced) page writes are absent, the fsync'd log tail is
    // present. One copy per recovery path.
    std::filesystem::copy(dir_, replay_dir,
                          std::filesystem::copy_options::recursive);
    std::filesystem::copy(dir_, scrub_dir,
                          std::filesystem::copy_options::recursive);
    // The store object is still alive holding cached assemblies — exactly
    // the state a pre-crash process died in. Nothing it does from here on
    // may affect the copies.
  }

  // Path 1 — WAL replay: recovered state has every replaced object at v2.
  {
    StoreOptions options;
    options.model = Model();
    options.backend = Backend();
    options.path = replay_dir;
    options.objcache.enabled = true;
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    EXPECT_EQ(store->objcache_stats().entries, 0u)
        << "replay reopen inherited cache entries";
    for (size_t i = 0; i < issued; ++i) {
      const Tuple& expect =
          (in_x(i) || in_y(i)) ? v2[i] : db_->objects()[i].tuple;
      for (int pass = 0; pass < 2; ++pass) {  // miss, then hit
        auto got = store->Get(db_->objects()[i].ref);
        ASSERT_TRUE(got.ok()) << "object " << i << " pass " << pass;
        EXPECT_EQ(got.value(), expect)
            << "replay store served a pre-crash assembly (object " << i
            << ", pass " << pass << ")";
      }
    }
  }

  // Path 2 — paranoid scrub: the log is discarded, recovered state is the
  // v1 checkpoint for EVERY object (subset Y's pre-crash v2 entries are
  // the hazard here).
  {
    StoreOptions options;
    options.model = Model();
    options.backend = Backend();
    options.path = scrub_dir;
    options.objcache.enabled = true;
    options.paranoid_open = true;
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    EXPECT_EQ(store->objcache_stats().entries, 0u)
        << "scrub reopen inherited cache entries";
    for (size_t i = 0; i < issued; ++i) {
      for (int pass = 0; pass < 2; ++pass) {
        auto got = store->Get(db_->objects()[i].ref);
        ASSERT_TRUE(got.ok()) << "object " << i << " pass " << pass;
        EXPECT_EQ(got.value(), db_->objects()[i].tuple)
            << "scrub store served a pre-crash assembly (object " << i
            << ", pass " << pass << ")";
      }
    }
  }
  std::filesystem::remove_all(replay_dir);
  std::filesystem::remove_all(scrub_dir);
}

// Negative-cache satellite: a NotFound verdict cached before the crash
// must never suppress an object that recovery produces. The run probes a
// missing ref until the negative table answers, then Puts that very ref —
// the page writes are buffered (they vanish at power loss) while the WAL
// record is durable, so the reopened store materializes the object by
// replay. If any negative state leaked across the reopen, the replayed
// object would read as NotFound.
TEST_P(CrashMatrixTest, NegativeVerdictNeverSurvivesRecovery) {
  if (!ByRef()) {
    GTEST_SKIP() << "plain NSM has no by-ref reads, so no object cache";
  }
  const ObjectRef fresh = 9000;
  const ObjectRef never = 9001;
  Tuple tuple = db_->objects()[0].tuple;
  tuple.values[0] = Value::Int32(9000 + 1);  // fresh unique key
  const std::string image_dir = dir_ + "_negimage";
  std::filesystem::remove_all(image_dir);
  {
    FaultHandle handle;
    StoreOptions options = FaultedOptions(&handle);
    options.objcache.enabled = true;
    options.wal_sync = WalSyncPolicy::kAlways;
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    for (const auto& object : db_->objects()) {
      ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
    }
    ASSERT_TRUE(store->Flush().ok());
    // Probe twice: the second answer provably comes from the side table.
    ASSERT_TRUE(store->Get(fresh).status().IsNotFound());
    ASSERT_TRUE(store->Get(fresh).status().IsNotFound());
    ASSERT_GE(store->objcache_stats().negative_hits, 1u);
    // Create the very object the table calls absent. Its pages are
    // volatile (FaultVolume buffers them), its log record is durable.
    ASSERT_TRUE(store->Put(fresh, tuple).ok());
    auto live = store->Get(fresh);
    ASSERT_TRUE(live.ok()) << "negative verdict outlived the Put pre-crash";
    ASSERT_EQ(live.value(), tuple);
    // Power-loss image while the process (and its cache) still lives.
    std::filesystem::copy(dir_, image_dir,
                          std::filesystem::copy_options::recursive);
  }
  {
    StoreOptions options;
    options.model = Model();
    options.backend = Backend();
    options.path = image_dir;
    options.objcache.enabled = true;
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    EXPECT_EQ(store->objcache_stats().entries, 0u);
    EXPECT_EQ(store->objcache_stats().negative_hits, 0u);
    for (int pass = 0; pass < 2; ++pass) {
      auto got = store->Get(fresh);
      ASSERT_TRUE(got.ok())
          << "recovered object suppressed on pass " << pass;
      EXPECT_EQ(got.value(), tuple);
    }
    // A genuinely missing ref still answers NotFound on both the model
    // probe and the negatively-cached repeat.
    EXPECT_TRUE(store->Get(never).status().IsNotFound());
    EXPECT_TRUE(store->Get(never).status().IsNotFound());
  }
  std::filesystem::remove_all(image_dir);
}

std::string MatrixParamName(
    const ::testing::TestParamInfo<std::tuple<StorageModelKind, VolumeKind>>&
        info) {
  std::string name = ToString(std::get<0>(info.param)) + "_" +
                     ToString(std::get<1>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, CrashMatrixTest,
    ::testing::Combine(::testing::ValuesIn(AllStorageModelKinds()),
                       ::testing::Values(VolumeKind::kMmap)),
    MatrixParamName);

// The direct backend runs the identical matrix for two representative
// models (the paper's recommended DASDBS-NSM plus the call-heavy DSM):
// the commit protocol is model-agnostic, so two models over O_DIRECT plus
// five over mmap cover the cross product without doubling the suite's
// device traffic.
INSTANTIATE_TEST_SUITE_P(
    DirectBackend, CrashMatrixTest,
    ::testing::Combine(::testing::Values(StorageModelKind::kDasdbsNsm,
                                         StorageModelKind::kDsm),
                       ::testing::Values(VolumeKind::kDirect)),
    MatrixParamName);

}  // namespace
}  // namespace starfish
