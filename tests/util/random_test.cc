#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace starfish {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(99);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(99);
  EXPECT_EQ(rng.Next(), first);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIsRoughlyUnbiased) {
  Rng rng(17);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.8) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.8, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, RandomStringHasExactLengthAndPrintableBytes) {
  Rng rng(31);
  const std::string s = rng.RandomString(100);
  EXPECT_EQ(s.size(), 100u);
  for (char c : s) {
    EXPECT_TRUE(std::isprint(static_cast<unsigned char>(c))) << int(c);
  }
  EXPECT_TRUE(rng.RandomString(0).empty());
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<uint64_t> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

}  // namespace
}  // namespace starfish
