#include "util/status.h"

#include <gtest/gtest.h>

namespace starfish {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::IOError("disk gone").ToString(), "IOError: disk gone");
  EXPECT_EQ(Status::NotFound("").ToString(), "NotFound");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r(std::string("hi"));
  EXPECT_EQ(r.value_or("fallback"), "hi");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Outer(int x) {
  STARFISH_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

Result<int> Double(int x) {
  if (x > 100) return Status::OutOfRange("too big");
  return 2 * x;
}

Result<int> Chain(int x) {
  STARFISH_ASSIGN_OR_RETURN(int doubled, Double(x));
  STARFISH_ASSIGN_OR_RETURN(int quadrupled, Double(doubled));
  return quadrupled;
}

}  // namespace helpers

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(helpers::Outer(1).ok());
  EXPECT_TRUE(helpers::Outer(-1).IsInvalidArgument());
}

TEST(StatusMacroTest, AssignOrReturnChains) {
  auto ok = helpers::Chain(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 40);
  // Second Double fails (20 * 2 = 40... 60 > 100 fails on second call).
  auto fail = helpers::Chain(60);
  EXPECT_TRUE(fail.status().IsOutOfRange());
}

}  // namespace
}  // namespace starfish
