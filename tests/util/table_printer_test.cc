#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace starfish {
namespace {

TEST(TablePrinterTest, RendersHeadersAndRows) {
  TablePrinter t({"MODEL", "Q1"});
  t.AddRow({"DSM", "4.00"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("MODEL"), std::string::npos);
  EXPECT_NE(out.find("DSM"), std::string::npos);
  EXPECT_NE(out.find("4.00"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter t({"A", "B"});
  t.AddRow({"short", "x"});
  t.AddRow({"a-much-longer-cell", "y"});
  const std::string out = t.ToString();
  // All lines have equal length.
  size_t line_len = std::string::npos;
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t nl = out.find('\n', pos);
    const size_t len = nl - pos;
    if (line_len == std::string::npos) line_len = len;
    EXPECT_EQ(len, line_len);
    pos = nl + 1;
  }
}

TEST(TablePrinterTest, MissingTrailingCellsRenderEmpty) {
  TablePrinter t({"A", "B", "C"});
  t.AddRow({"only-one"});
  EXPECT_NE(t.ToString().find("only-one"), std::string::npos);
}

TEST(TablePrinterTest, ExtraCellsWidenTable) {
  TablePrinter t({"A"});
  t.AddRow({"x", "extra"});
  EXPECT_NE(t.ToString().find("extra"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorProducesRule) {
  TablePrinter t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string out = t.ToString();
  // header rule + top + bottom + the explicit one = 4 dashes lines.
  size_t rules = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos = out.find('\n', pos);
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TablePrinterTest, FormatValuePaperStyle) {
  EXPECT_EQ(TablePrinter::FormatValue(4.0), "4.00");
  EXPECT_EQ(TablePrinter::FormatValue(86.94), "86.9");
  EXPECT_EQ(TablePrinter::FormatValue(19.7), "19.7");
  EXPECT_EQ(TablePrinter::FormatValue(6000.0), "6000");
  EXPECT_EQ(TablePrinter::FormatValue(153.7), "154");
  EXPECT_EQ(TablePrinter::FormatValue(2.254), "2.25");
}

TEST(TablePrinterTest, FormatValueNonFinite) {
  EXPECT_EQ(TablePrinter::FormatValue(std::nan("")), "-");
}

}  // namespace
}  // namespace starfish
