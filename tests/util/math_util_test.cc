#include "util/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace starfish {
namespace {

TEST(MathUtilTest, LogFactorialSmallValues) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(MathUtilTest, LogBinomialMatchesDirectComputation) {
  EXPECT_NEAR(std::exp(LogBinomial(10, 3)), 120.0, 1e-6);
  EXPECT_NEAR(std::exp(LogBinomial(52, 5)), 2598960.0, 1e-3);
  EXPECT_DOUBLE_EQ(LogBinomial(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(7, 7), 0.0);
}

TEST(MathUtilTest, LogBinomialOutOfRangeIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(LogBinomial(5, 6)));
  EXPECT_TRUE(std::isinf(LogBinomial(5, -1)));
}

TEST(MathUtilTest, LargeArgumentsDoNotOverflow) {
  // C(22500, 100) overflows doubles directly; log space must stay finite.
  const double lb = LogBinomial(22500, 100);
  EXPECT_TRUE(std::isfinite(lb));
  EXPECT_GT(lb, 0.0);
}

TEST(MathUtilTest, BinomialRatioBasics) {
  // C(4,2)/C(6,2) = 6/15.
  EXPECT_NEAR(BinomialRatio(4, 6, 2), 6.0 / 15.0, 1e-12);
  // Drawing more than `a` items: ratio is zero.
  EXPECT_DOUBLE_EQ(BinomialRatio(3, 10, 5), 0.0);
  // t = 0 draws: probability 1.
  EXPECT_DOUBLE_EQ(BinomialRatio(5, 9, 0), 1.0);
}

TEST(MathUtilTest, BinomialRatioIsAProbability) {
  for (int64_t t = 0; t <= 50; t += 5) {
    const double r = BinomialRatio(1000, 1100, t);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(MathUtilTest, BinomialRatioMonotonicInT) {
  double prev = 1.0;
  for (int64_t t = 1; t < 40; ++t) {
    const double r = BinomialRatio(500, 550, t);
    EXPECT_LE(r, prev + 1e-12);
    prev = r;
  }
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(CeilDiv(4, 4), 1);
  EXPECT_EQ(CeilDiv(5, 4), 2);
  EXPECT_EQ(CeilDiv(6078, 2012), 4);  // the paper's DSM Station example
}

}  // namespace
}  // namespace starfish
