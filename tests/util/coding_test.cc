#include "util/coding.h"

#include <gtest/gtest.h>

namespace starfish {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  char buf[2];
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xFFFFu}) {
    EncodeFixed16(buf, static_cast<uint16_t>(v));
    EXPECT_EQ(DecodeFixed16(buf), v);
  }
}

TEST(CodingTest, Fixed32RoundTrip) {
  char buf[4];
  for (uint32_t v : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EncodeFixed32(buf, v);
    EXPECT_EQ(DecodeFixed32(buf), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  char buf[8];
  for (uint64_t v : {0ull, 1ull, 0xDEADBEEFCAFEBABEull, ~0ull}) {
    EncodeFixed64(buf, v);
    EXPECT_EQ(DecodeFixed64(buf), v);
  }
}

TEST(CodingTest, EncodingIsLittleEndian) {
  char buf[4];
  EncodeFixed32(buf, 0x01020304u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(CodingTest, PutAppendsToString) {
  std::string s = "prefix";
  PutFixed16(&s, 0xABCD);
  PutFixed32(&s, 0x12345678u);
  PutFixed64(&s, 42);
  EXPECT_EQ(s.size(), 6u + 2 + 4 + 8);
  EXPECT_EQ(DecodeFixed16(s.data() + 6), 0xABCD);
  EXPECT_EQ(DecodeFixed32(s.data() + 8), 0x12345678u);
  EXPECT_EQ(DecodeFixed64(s.data() + 12), 42u);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  PutLengthPrefixed(&s, "");
  ASSERT_EQ(s.size(), 2u + 5 + 2);
  EXPECT_EQ(DecodeFixed16(s.data()), 5u);
  EXPECT_EQ(s.substr(2, 5), "hello");
  EXPECT_EQ(DecodeFixed16(s.data() + 7), 0u);
}

TEST(CodingTest, NegativeIntsSurviveViaTwosComplement) {
  char buf[4];
  EncodeFixed32(buf, static_cast<uint32_t>(-12345));
  EXPECT_EQ(static_cast<int32_t>(DecodeFixed32(buf)), -12345);
}

TEST(CodingTest, GetConsumesFromFront) {
  std::string s;
  PutFixed16(&s, 7);
  PutFixed32(&s, 1000);
  PutFixed64(&s, 1ull << 40);
  PutLengthPrefixed(&s, "tail");
  std::string_view in(s);
  uint16_t v16 = 0;
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  std::string_view str;
  ASSERT_TRUE(GetFixed16(&in, &v16));
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  ASSERT_TRUE(GetLengthPrefixed(&in, &str));
  EXPECT_EQ(v16, 7u);
  EXPECT_EQ(v32, 1000u);
  EXPECT_EQ(v64, 1ull << 40);
  EXPECT_EQ(str, "tail");
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, GetRejectsShortInput) {
  std::string s;
  PutFixed32(&s, 1);
  std::string_view in(s.data(), 3);  // one byte short
  uint32_t v32 = 0;
  EXPECT_FALSE(GetFixed32(&in, &v32));
  // Length prefix claiming more bytes than available.
  std::string lp;
  PutFixed16(&lp, 10);
  lp += "abc";
  std::string_view lpin(lp);
  std::string_view out;
  EXPECT_FALSE(GetLengthPrefixed(&lpin, &out));
  // Empty input.
  std::string_view empty;
  uint16_t v16 = 0;
  EXPECT_FALSE(GetFixed16(&empty, &v16));
}

}  // namespace
}  // namespace starfish
