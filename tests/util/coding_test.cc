#include "util/coding.h"

#include <gtest/gtest.h>

namespace starfish {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  char buf[2];
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xFFFFu}) {
    EncodeFixed16(buf, static_cast<uint16_t>(v));
    EXPECT_EQ(DecodeFixed16(buf), v);
  }
}

TEST(CodingTest, Fixed32RoundTrip) {
  char buf[4];
  for (uint32_t v : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EncodeFixed32(buf, v);
    EXPECT_EQ(DecodeFixed32(buf), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  char buf[8];
  for (uint64_t v : {0ull, 1ull, 0xDEADBEEFCAFEBABEull, ~0ull}) {
    EncodeFixed64(buf, v);
    EXPECT_EQ(DecodeFixed64(buf), v);
  }
}

TEST(CodingTest, EncodingIsLittleEndian) {
  char buf[4];
  EncodeFixed32(buf, 0x01020304u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(CodingTest, PutAppendsToString) {
  std::string s = "prefix";
  PutFixed16(&s, 0xABCD);
  PutFixed32(&s, 0x12345678u);
  PutFixed64(&s, 42);
  EXPECT_EQ(s.size(), 6u + 2 + 4 + 8);
  EXPECT_EQ(DecodeFixed16(s.data() + 6), 0xABCD);
  EXPECT_EQ(DecodeFixed32(s.data() + 8), 0x12345678u);
  EXPECT_EQ(DecodeFixed64(s.data() + 12), 42u);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  PutLengthPrefixed(&s, "");
  ASSERT_EQ(s.size(), 2u + 5 + 2);
  EXPECT_EQ(DecodeFixed16(s.data()), 5u);
  EXPECT_EQ(s.substr(2, 5), "hello");
  EXPECT_EQ(DecodeFixed16(s.data() + 7), 0u);
}

TEST(CodingTest, NegativeIntsSurviveViaTwosComplement) {
  char buf[4];
  EncodeFixed32(buf, static_cast<uint32_t>(-12345));
  EXPECT_EQ(static_cast<int32_t>(DecodeFixed32(buf)), -12345);
}

}  // namespace
}  // namespace starfish
