// The Table-3 estimators: sanity of every query estimate, the paper's
// qualitative ordering, and agreement with the paper's legible anchors.

#include "cost/analytical_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cost/formulas.h"

namespace starfish::cost {
namespace {

/// The paper's Table 2 parameters (as far as legible), for anchor checks.
RelationParams PaperDsmStation() {
  RelationParams rel;
  rel.name = "DSM_Station";
  rel.tuples_per_object = 1;
  rel.total_tuples = 1500;
  rel.payload_bytes = 4064;  // "a header page and 2.02 data pages"
  rel.tuple_bytes = 6078;
  rel.is_large = true;
  rel.p = 4;  // Eq. 2 with ceiling — the paper's analytic value
  rel.header_pages = 1;
  rel.data_pages = 3;  // ceil-based, consistent with p = 4
  rel.m = 6000;
  return rel;
}

WorkloadParams PaperWorkload() {
  WorkloadParams w;
  w.n_objects = 1500;
  w.loops = 300;
  w.avg_children = 4.10;
  w.avg_grandchildren = 16.81;
  w.nav_bytes = 800;
  w.root_bytes = 120;
  w.page_bytes = 2012;
  return w;
}

/// Table 2 rows for the normalized models (paper values where legible).
std::vector<RelationParams> PaperNsmRelations() {
  auto mk = [](const char* name, double tpo, double total, double bytes,
               double k, double m) {
    RelationParams rel;
    rel.name = name;
    rel.tuples_per_object = tpo;
    rel.total_tuples = total;
    rel.payload_bytes = bytes;
    rel.tuple_bytes = bytes;
    rel.is_large = false;
    rel.k = k;
    rel.m = m;
    return rel;
  };
  return {mk("NSM_Station", 1.0, 1500, 148, 13, 116),
          mk("NSM_Platform", 1.6, 2400, 160, 12, 200),
          mk("NSM_Connection", 4.1, 6150, 170, 11, 559),
          mk("NSM_Sightseeing", 7.5, 11250, 456, 4, 2813)};
}

NormalizedLayout StationLayout() {
  NormalizedLayout layout;
  layout.root_index = 0;
  layout.link_indexes = {2};
  return layout;
}

TEST(DsmEstimateTest, MatchesPaperTable3Row) {
  const QueryEstimates e = EstimateDsm(PaperDsmStation(), PaperWorkload());
  EXPECT_DOUBLE_EQ(e.q1a, 4.00);
  EXPECT_DOUBLE_EQ(e.q1b, 6000.0);
  EXPECT_DOUBLE_EQ(e.q1c, 4.00);
  EXPECT_NEAR(e.q2a, 86.9, 1.0);   // paper: 86.9
  EXPECT_NEAR(e.q2b, 19.7, 0.5);   // paper: 19.7
  EXPECT_NEAR(e.q3a, 154.0, 2.0);  // paper: 154
  EXPECT_NEAR(e.q3b, 39.1, 1.0);   // paper: 39.1
}

TEST(DasdbsDsmEstimateTest, PartialReadsBeatDsmOnNavigation) {
  const RelationParams rel = PaperDsmStation();
  const WorkloadParams w = PaperWorkload();
  const QueryEstimates dsm = EstimateDsm(rel, w);
  const QueryEstimates ddsm = EstimateDasdbsDsm(rel, w);
  EXPECT_LT(ddsm.q2a, dsm.q2a);
  EXPECT_LT(ddsm.q2b, dsm.q2b);
  // Full-object queries cost the same relation scan.
  EXPECT_DOUBLE_EQ(ddsm.q1b, dsm.q1b);
}

TEST(DasdbsDsmEstimateTest, NavigationIsHeaderPlusOneDataPage) {
  const QueryEstimates e = EstimateDasdbsDsm(PaperDsmStation(), PaperWorkload());
  // 21.9 visited objects x ~2.1-2.4 pages each (headers + the one data
  // page the projection needs, Eq. 5 with fractional data pages).
  EXPECT_NEAR(e.q2a, 21.9 * 2.2, 4.0);
}

TEST(DasdbsDsmEstimateTest, UpdatesPayThePagePool) {
  const WorkloadParams w = PaperWorkload();
  const QueryEstimates with_pool =
      EstimateDasdbsDsm(PaperDsmStation(), w, /*pool_pages=*/1.0);
  const QueryEstimates no_pool =
      EstimateDasdbsDsm(PaperDsmStation(), w, /*pool_pages=*/0.0);
  EXPECT_NEAR(with_pool.q3b - no_pool.q3b, w.avg_grandchildren, 1e-9);
}

TEST(NsmEstimateTest, PlainHasNoQuery1a) {
  const QueryEstimates e =
      EstimateNsm(PaperNsmRelations(), StationLayout(), PaperWorkload(),
                  /*with_index=*/false);
  EXPECT_LT(e.q1a, 0);  // not applicable
  // Scan of all four relations: ~3,688 pages (paper: 3,820 measured).
  EXPECT_NEAR(e.q1b, 116 + 200 + 559 + 2813, 1.0);
}

TEST(NsmEstimateTest, IndexMatchesPaperAnchors) {
  const QueryEstimates e =
      EstimateNsm(PaperNsmRelations(), StationLayout(), PaperWorkload(),
                  /*with_index=*/true);
  EXPECT_NEAR(e.q1a, 5.96, 0.7);   // paper: 5.96
  EXPECT_NEAR(e.q1b, 121.0, 2.0);  // paper: 121
  EXPECT_NEAR(e.q2a, 23.2, 2.0);   // paper: 23.2
  EXPECT_NEAR(e.q2b, 2.25, 0.2);   // paper fragment: 2.25
}

TEST(NsmEstimateTest, Query3AddsRootWriteBack) {
  const QueryEstimates e =
      EstimateNsm(PaperNsmRelations(), StationLayout(), PaperWorkload(),
                  /*with_index=*/false);
  // Per loop: ~m_root/loops = 116/300 = 0.387 extra page writes — the
  // paper quotes exactly this value in §5.1.
  EXPECT_NEAR(e.q3b - e.q2b, 116.0 / 300.0, 1e-9);
}

TEST(DasdbsNsmEstimateTest, MatchesPaperAnchors) {
  // Table 2 fragment: DASDBS-NSM_Connection has m = 500; Station as NSM.
  auto rels = PaperNsmRelations();
  rels[1].tuples_per_object = 1.0;
  rels[1].k = 7;
  rels[1].m = 214;
  rels[2].tuples_per_object = 1.0;
  rels[2].k = 3;
  rels[2].m = 500;
  rels[3].tuples_per_object = 1.0;
  rels[3].is_large = true;
  rels[3].header_pages = 1;
  rels[3].data_pages = 2;
  rels[3].m = 4500;
  const QueryEstimates e =
      EstimateDasdbsNsm(rels, StationLayout(), PaperWorkload());
  EXPECT_NEAR(e.q1a, 6.0, 1.0);      // paper analytic: 5-6
  EXPECT_NEAR(e.q1b, 121.0, 2.0);    // paper: 120
  EXPECT_NEAR(e.q2a, 20.6, 2.0);     // paper: ~20.6
  EXPECT_NEAR(e.q2b, (500.0 + 116.0) / 300.0, 0.01);  // paper: 2.05
  EXPECT_NEAR(e.q3b, e.q2b + 116.0 / 300.0, 1e-9);    // paper: 2.39-2.64
}

TEST(OverallOrderingTest, PaperTable8Shape) {
  // DASDBS-NSM best on navigation and updates; NSM worst overall; DASDBS-DSM
  // better than DSM on reads.
  const WorkloadParams w = PaperWorkload();
  const QueryEstimates dsm = EstimateDsm(PaperDsmStation(), w);
  const QueryEstimates ddsm = EstimateDasdbsDsm(PaperDsmStation(), w);
  const QueryEstimates nsm =
      EstimateNsm(PaperNsmRelations(), StationLayout(), w, false);

  auto rels = PaperNsmRelations();
  rels[2].tuples_per_object = 1.0;
  rels[2].k = 3;
  rels[2].m = 500;
  const QueryEstimates dnsm = EstimateDasdbsNsm(rels, StationLayout(), w);

  // Navigation: DASDBS-NSM < DASDBS-DSM < DSM << NSM(1-shot).
  EXPECT_LT(dnsm.q2a, ddsm.q2a);
  EXPECT_LT(ddsm.q2a, dsm.q2a);
  EXPECT_LT(dsm.q2a, nsm.q2a);
  // Loop-amortized: normalized models win big.
  EXPECT_LT(dnsm.q2b, ddsm.q2b);
  EXPECT_LT(ddsm.q2b, dsm.q2b);
  // Updates: DASDBS-NSM beats both direct models.
  EXPECT_LT(dnsm.q3b, ddsm.q3b);
  EXPECT_LT(dnsm.q3b, dsm.q3b);
  // Value selection: anything with addresses beats plain NSM.
  EXPECT_LT(dnsm.q1b, nsm.q1b);
}

TEST(StripWasteTest, PrimedVariantsRemoveHeaderSplit) {
  const RelationParams rel = PaperDsmStation();
  const RelationParams primed = StripWaste(rel, 2012);
  EXPECT_DOUBLE_EQ(primed.header_pages, 0.0);
  EXPECT_NEAR(primed.p, 4064.0 / 2012.0, 1e-9);  // fractional span
  EXPECT_LT(primed.m, rel.m);
  // Primed estimates dominate (are never worse than) the unprimed ones.
  const WorkloadParams w = PaperWorkload();
  const QueryEstimates raw = EstimateDsm(rel, w);
  const QueryEstimates stripped = EstimateDsm(primed, w);
  EXPECT_LE(stripped.q1a, raw.q1a);
  EXPECT_LE(stripped.q2a, raw.q2a);
  EXPECT_LE(stripped.q3b, raw.q3b);
}

TEST(StripWasteTest, SmallRelationRecomputesK) {
  RelationParams rel;
  rel.total_tuples = 1500;
  rel.payload_bytes = 120;
  rel.tuple_bytes = 150;
  rel.is_large = false;
  rel.k = 13;
  rel.m = 116;
  const RelationParams primed = StripWaste(rel, 2012);
  EXPECT_NEAR(primed.k, std::floor(2012.0 / 120.0), 1e-9);
  EXPECT_LT(primed.m, rel.m);
}

TEST(WorkloadParamsTest, VisitsPerLoop) {
  WorkloadParams w;
  w.avg_children = 4.1;
  w.avg_grandchildren = 16.81;
  EXPECT_NEAR(w.VisitsPerLoop(), 21.91, 1e-9);
}

}  // namespace
}  // namespace starfish::cost
