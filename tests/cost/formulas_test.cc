// Property tests of the analytical formulas (Equations 2-8), including the
// Monte-Carlo cross-checks of the reconstructed Equations 6/7.

#include "cost/formulas.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cost/monte_carlo.h"

namespace starfish::cost {
namespace {

TEST(Eq2Test, PagesPerLargeTuple) {
  EXPECT_EQ(PagesPerLargeTuple(6078, 2012), 4);  // the paper's DSM Station
  EXPECT_EQ(PagesPerLargeTuple(2012, 2012), 1);
  EXPECT_EQ(PagesPerLargeTuple(2013, 2012), 2);
  EXPECT_EQ(PagesPerLargeTuple(0, 2012), 0);
}

TEST(Eq3Test, LargeTuplePages) {
  EXPECT_DOUBLE_EQ(LargeTuplePages(1500, 4), 6000.0);  // Table 3: DSM q1b
  EXPECT_DOUBLE_EQ(LargeTuplePages(21.8, 4), 87.2);    // ~ DSM q2a estimate
}

TEST(Eq4Test, YaoBoundaryCases) {
  EXPECT_DOUBLE_EQ(YaoPages(0, 10, 5), 0.0);
  EXPECT_NEAR(YaoPages(1, 10, 5), 1.0, 1e-9);    // one tuple: one page
  EXPECT_DOUBLE_EQ(YaoPages(50, 10, 5), 10.0);   // all tuples: all pages
  EXPECT_DOUBLE_EQ(YaoPages(60, 10, 5), 10.0);   // saturation
}

TEST(Eq4Test, YaoIsMonotonicInT) {
  double prev = 0.0;
  for (int64_t t = 0; t <= 200; t += 5) {
    const double pages = YaoPages(t, 116, 13);
    EXPECT_GE(pages, prev - 1e-9);
    EXPECT_LE(pages, 116.0);
    prev = pages;
  }
}

TEST(Eq4Test, YaoUpperBoundedByT) {
  for (int64_t t = 1; t <= 50; t += 7) {
    EXPECT_LE(YaoPages(t, 1000, 4), static_cast<double>(t));
  }
}

TEST(Eq4Test, PaperScaleValue) {
  // 16.7 grand-children root records over the Station relation
  // (m = 116 pages, k = 13): about 15.5 pages (the q2a estimates).
  const double pages = YaoPagesFrac(16.7, 116, 13);
  EXPECT_NEAR(pages, 15.5, 0.5);
}

TEST(Eq4Test, FractionalInterpolation) {
  const double lo = YaoPages(4, 100, 10);
  const double hi = YaoPages(5, 100, 10);
  const double mid = YaoPagesFrac(4.5, 100, 10);
  EXPECT_NEAR(mid, (lo + hi) / 2, 1e-12);
  EXPECT_DOUBLE_EQ(YaoPagesFrac(4.0, 100, 10), lo);
}

TEST(Eq4Test, MatchesMonteCarlo) {
  for (int64_t t : {2, 8, 25, 60}) {
    const double analytic = YaoPages(t, 50, 7);
    const double simulated = McYaoPages(t, 50, 7, 4000, /*seed=*/9);
    EXPECT_NEAR(analytic, simulated, 0.35) << "t = " << t;
  }
}

TEST(Eq6Test, ClusterPagesBasics) {
  EXPECT_DOUBLE_EQ(ClusterPages(0, 10, 5), 0.0);
  EXPECT_DOUBLE_EQ(ClusterPages(1, 10, 5), 1.0);
  // t consecutive tuples: 1 + (t-1)/k expected pages.
  EXPECT_DOUBLE_EQ(ClusterPages(6, 10, 5), 2.0);
  EXPECT_DOUBLE_EQ(ClusterPages(11, 10, 5), 3.0);
  // Covering run: all pages.
  EXPECT_DOUBLE_EQ(ClusterPages(46, 10, 5), 10.0);
}

TEST(Eq6Test, ClusterNeverExceedsYaoEquivalentSpread) {
  // A clustered run touches at most as many pages as the same number of
  // randomly placed tuples (expected values).
  for (int64_t t : {3, 10, 30}) {
    EXPECT_LE(ClusterPages(t, 100, 5), YaoPages(t, 100, 5) + 1e-9);
  }
}

TEST(Eq6Test, MatchesMonteCarloSingleCluster) {
  for (int64_t g : {2, 5, 12, 40}) {
    const double analytic = ClusterPages(g, 80, 6);
    const double simulated = McClusterGroupPages(1, g, 80, 6, 4000, 11);
    EXPECT_NEAR(analytic, simulated, 0.25) << "g = " << g;
  }
}

TEST(Eq7Test, ReducesToEq6ForOneCluster) {
  for (int64_t g : {1, 4, 9}) {
    // With many pages, collision probability ~0: Eq.7(1 cluster) == Eq.6.
    EXPECT_NEAR(ClusterGroupPages(1, g, 5000, 5), ClusterPages(g, 5000, 5),
                0.05);
  }
}

TEST(Eq7Test, SaturatesAtM) {
  EXPECT_NEAR(ClusterGroupPages(1e9, 3, 40, 5), 40.0, 1e-6);
  EXPECT_LE(ClusterGroupPages(17, 10, 25, 4), 25.0);
}

TEST(Eq7Test, MonotonicInClusterCount) {
  double prev = 0;
  for (int i = 1; i < 40; ++i) {
    const double pages = ClusterGroupPages(i, 4, 60, 8);
    EXPECT_GE(pages, prev - 1e-9);
    prev = pages;
  }
}

TEST(Eq7Test, MatchesMonteCarloWithinTolerance) {
  // The reconstruction is an independence approximation; agreement within a
  // few percent of m validates it for cost-model purposes.
  struct Case { int64_t clusters, g, m, k; };
  for (const Case& c : {Case{4, 3, 60, 8}, Case{10, 6, 100, 5},
                        Case{25, 2, 40, 10}, Case{8, 15, 120, 7}}) {
    const double analytic = ClusterGroupPages(c.clusters, c.g, c.m, c.k);
    const double simulated =
        McClusterGroupPages(c.clusters, c.g, c.m, c.k, 4000, 13);
    EXPECT_NEAR(analytic, simulated, 0.05 * c.m)
        << c.clusters << " clusters of " << c.g << " over " << c.m << "x"
        << c.k;
  }
}

TEST(Eq5Test, PartialLargePages) {
  // Navigation projection of the benchmark: ~800 bytes used out of a
  // header + 2.02-data-page object -> header + ~1.4 data pages expected.
  EXPECT_NEAR(PartialLargePages(800, 1, 2.02, 2012),
              1.0 + 1.0 + (800.0 - 1.0) / 2012.0, 1e-9);
}

TEST(Eq5Test, PartialLargePagesProperties) {
  const double nav = PartialLargePages(800, 1, 2.02, 2012);
  EXPECT_GE(nav, 1.0);            // headers always read
  EXPECT_LE(nav, 1.0 + 2.02);     // at most the full object
  // Zero used bytes: just the headers.
  EXPECT_DOUBLE_EQ(PartialLargePages(0, 1.5, 3, 2012), 1.5);
  // Using everything: the whole object.
  EXPECT_DOUBLE_EQ(PartialLargePages(1e9, 1, 2.5, 2012), 3.5);
  // Monotonic in used bytes.
  double prev = 0;
  for (double used = 0; used < 9000; used += 500) {
    const double pages = PartialLargePages(used, 1, 4, 2012);
    EXPECT_GE(pages, prev - 1e-9);
    prev = pages;
  }
}

TEST(Eq8Test, ExpectedDistinctBasics) {
  EXPECT_DOUBLE_EQ(ExpectedDistinct(100, 0), 0.0);
  EXPECT_NEAR(ExpectedDistinct(100, 1), 1.0, 1e-9);
  // Many draws: approaches the population.
  EXPECT_NEAR(ExpectedDistinct(100, 100000), 100.0, 1e-6);
}

TEST(Eq8Test, PaperScaleValue) {
  // 300 loops x 21.8 objects from 1500: ~1480 distinct (drives the DSM
  // q2b estimate of 19.7 pages/loop).
  const double distinct = ExpectedDistinct(1500, 300 * 21.8);
  EXPECT_NEAR(distinct, 1481, 5);
  EXPECT_NEAR(distinct * 4 / 300, 19.7, 0.3);
}

TEST(Eq8Test, MatchesMonteCarlo) {
  for (int64_t draws : {10, 100, 1000}) {
    const double analytic = ExpectedDistinct(200, draws);
    const double simulated = McExpectedDistinct(200, draws, 2000, 17);
    EXPECT_NEAR(analytic, simulated, 1.5) << "draws = " << draws;
  }
}

}  // namespace
}  // namespace starfish::cost
