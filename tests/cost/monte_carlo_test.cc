#include "cost/monte_carlo.h"

#include <gtest/gtest.h>

namespace starfish::cost {
namespace {

TEST(McYaoTest, DeterministicForSeed) {
  EXPECT_DOUBLE_EQ(McYaoPages(10, 20, 5, 500, 1),
                   McYaoPages(10, 20, 5, 500, 1));
  EXPECT_NE(McYaoPages(10, 20, 5, 500, 1), McYaoPages(10, 20, 5, 500, 2));
}

TEST(McYaoTest, Bounds) {
  const double pages = McYaoPages(13, 30, 4, 800, 3);
  EXPECT_GE(pages, 1.0);
  EXPECT_LE(pages, 13.0);  // at most one page per tuple
  EXPECT_LE(pages, 30.0);  // at most the relation
}

TEST(McYaoTest, AllTuplesTouchEverything) {
  EXPECT_DOUBLE_EQ(McYaoPages(100, 10, 10, 50, 5), 10.0);
  EXPECT_DOUBLE_EQ(McYaoPages(150, 10, 10, 50, 5), 10.0);  // t > total
}

TEST(McClusterTest, SingleTupleTouchesOnePage) {
  EXPECT_DOUBLE_EQ(McClusterGroupPages(1, 1, 50, 8, 300, 7), 1.0);
}

TEST(McClusterTest, CoveringRunTouchesEverything) {
  EXPECT_DOUBLE_EQ(McClusterGroupPages(1, 400, 50, 8, 100, 7), 50.0);
}

TEST(McClusterTest, MoreClustersTouchMorePages) {
  const double few = McClusterGroupPages(2, 4, 60, 6, 1000, 9);
  const double many = McClusterGroupPages(20, 4, 60, 6, 1000, 9);
  EXPECT_LT(few, many);
}

TEST(McDistinctTest, BoundsAndSaturation) {
  const double d = McExpectedDistinct(50, 30, 500, 11);
  EXPECT_GT(d, 1.0);
  EXPECT_LE(d, 30.0);
  EXPECT_NEAR(McExpectedDistinct(20, 5000, 200, 11), 20.0, 0.05);
}

}  // namespace
}  // namespace starfish::cost
