#pragma once

#include <string>

/// \file param_name.h
/// gtest parameterized-test name sanitizer: model names like "NSM+index"
/// are not valid gtest identifiers, so every character outside [A-Za-z0-9_]
/// becomes '_'.

namespace starfish::test {

inline std::string ParamName(std::string name) {
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return name;
}

}  // namespace starfish::test
