#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

/// \file env_seed.h
/// The randomized-test seed convention: every fuzz/soak test derives its
/// seed through TestSeed(), so
///
///   STARFISH_SEED=12345 ./starfish_tests --gtest_filter=...
///
/// reproduces a failing run exactly. Tests print the effective seed in
/// their failure output (SCOPED_TRACE or the divergence message itself).

namespace starfish::test {

/// The test's base seed: STARFISH_SEED if set (decimal), else `fallback`.
inline uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("STARFISH_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

/// True when STARFISH_SEED pins the seed — matrix tests then run ONLY the
/// pinned seed instead of the whole sweep.
inline bool SeedPinned() {
  const char* env = std::getenv("STARFISH_SEED");
  return env != nullptr && *env != '\0';
}

}  // namespace starfish::test
