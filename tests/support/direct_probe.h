#pragma once

#include <unistd.h>

#include <filesystem>
#include <string>
#include <system_error>

#include "disk/direct_volume.h"

/// \file direct_probe.h
/// The one shared "can this machine do O_DIRECT?" probe for the test
/// suites. Each suite skips (GTEST_SKIP) its direct-backend coverage when
/// this returns false — tmpfs and overlayfs, common in containers, reject
/// O_DIRECT at open(2). The probe directory carries `tag` and the pid:
/// ctest runs many test processes in parallel, and a shared name would let
/// one process remove the directory under another's probe.

namespace starfish::test {

inline bool DirectIoSupportedHere(const std::string& tag,
                                  uint32_t page_size = 512) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("starfish_dio_probe_" + tag + "_" + std::to_string(::getpid())))
          .string();
  const bool ok = DirectVolume::SupportedAt(dir, page_size);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return ok;
}

}  // namespace starfish::test
