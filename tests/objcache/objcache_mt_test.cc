// Concurrency-contract stress tests for the assembled-object cache.
//
// These run under the CI ThreadSanitizer job (ci/check.sh builds with
// -DSTARFISH_TSAN=ON and includes the ObjCacheMt* suites). Two layers:
//
//   * Raw cache — every public ObjectCache method hammered from many
//     threads at once, with a capacity small enough to keep the LRU
//     eviction path hot. Nothing here touches pages, so any interleaving
//     is legal.
//   * Store level — reader threads on ReadSessions race the cache's
//     invalidation machinery. Within the store's single-writer /
//     multi-reader contract, readers may never observe a torn or stale
//     assembly: every tuple that comes back must be byte-equal to a value
//     the object legitimately held.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/generator.h"
#include "core/complex_object_store.h"
#include "objcache/object_cache.h"
#include "util/random.h"

namespace starfish {
namespace {

constexpr uint32_t kReaderThreads = 4;

Tuple ValueTuple(int32_t v) {
  return Tuple({Value::Int32(v), Value::Str("v-" + std::to_string(v))});
}

// Raw cache: lookups, epoch-guarded inserts, both invalidation flavors and
// Clear, all concurrent, small capacity so eviction races everything else.
TEST(ObjCacheMtTest, RawCacheSurvivesFullApiHammering) {
  ObjCacheOptions options;
  options.enabled = true;
  options.capacity_bytes = 32 << 10;  // keep the eviction loop busy
  options.shard_count = 4;
  ObjectCache cache(options);

  constexpr uint32_t kRefs = 64;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> pool;
  for (uint32_t t = 0; t < kReaderThreads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(0xCACE + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const ObjectRef ref = rng.Uniform(kRefs);
        switch (rng.Uniform(8)) {
          case 0:
            cache.InvalidateRef(ref);
            break;
          case 1:
            cache.InvalidatePages({static_cast<PageId>(ref), 7});
            break;
          case 2:
            if (i % 64 == 0) cache.Clear();
            break;
          default: {
            uint64_t epoch = 0;
            if (ObjCacheEntryRef entry = cache.Lookup(ref, &epoch)) {
              // Entries are immutable: the payload always matches the key.
              ASSERT_EQ(entry->object.values[0].as_int32(),
                        static_cast<int32_t>(ref));
            } else {
              cache.Insert(ref, ValueTuple(static_cast<int32_t>(ref)),
                           {static_cast<PageId>(ref)}, epoch);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  // Conservation: gauges consistent with each other and with a full drain.
  const ObjCacheStats end = cache.stats();
  EXPECT_EQ(end.bytes, cache.TotalBytes());
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

class ObjCacheMtStoreTest : public ::testing::TestWithParam<VolumeKind> {
 protected:
  void SetUp() override {
    if (GetParam() == VolumeKind::kMmap) {
      dir_ = (std::filesystem::temp_directory_path() /
              ("starfish_objcache_mt_" +
               std::string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name())))
                 .string();
      for (char& c : dir_) {
        if (c == '/') c = '_';
      }
      std::filesystem::remove_all(dir_);
    }

    bench::GeneratorConfig config;
    config.n_objects = 32;
    config.seed = 11;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());

    StoreOptions options;
    options.model = StorageModelKind::kDasdbsNsm;
    options.backend = GetParam();
    options.path = dir_;
    options.buffer_shards = 8;
    options.objcache.enabled = true;
    options.objcache.capacity_bytes = 4 << 20;
    options.objcache.shard_count = 4;
    auto store_or = ComplexObjectStore::Open(db_->schema(), options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    store_ = std::move(store_or).value();
    for (const auto& object : db_->objects()) {
      ASSERT_TRUE(store_->Put(object.ref, object.tuple).ok());
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  std::string dir_;
  std::unique_ptr<bench::BenchmarkDatabase> db_;
  std::unique_ptr<ComplexObjectStore> store_;
};

// Phase 1: readers run full Gets (hits and re-assembly misses) while an
// invalidator thread yanks entries out from under them through every
// invalidation entry point. No page is mutated, so this stays inside the
// multi-reader contract — the cache machinery is the only thing racing.
// Every Get must still return exactly the stored object.
TEST_P(ObjCacheMtStoreTest, ReadersRaceInvalidation) {
  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    ObjectCache* cache = store_->object_cache();
    ASSERT_NE(cache, nullptr);
    Rng rng(0xDEAD);
    while (!stop.load(std::memory_order_relaxed)) {
      const ObjectRef ref = rng.Uniform(db_->objects().size());
      switch (rng.Uniform(4)) {
        case 0:
          cache->InvalidateRef(ref);
          break;
        case 1:
          cache->InvalidatePages({static_cast<PageId>(rng.Uniform(64))});
          break;
        case 2:
          cache->Clear();
          break;
        default:
          store_->InvalidateObjectCache();
          break;
      }
    }
  });

  std::vector<std::thread> pool;
  for (uint32_t t = 0; t < kReaderThreads; ++t) {
    pool.emplace_back([&, t] {
      ReadSession session = store_->OpenReadSession();
      Rng rng(0xFEED + t);
      for (int i = 0; i < 1500; ++i) {
        const size_t n = rng.Uniform(db_->objects().size());
        const auto& expect = db_->objects()[n];
        auto got = session.Get(expect.ref);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ASSERT_EQ(got.value(), expect.tuple) << "torn or stale assembly";
      }
    });
  }
  for (auto& th : pool) th.join();
  stop.store(true, std::memory_order_relaxed);
  invalidator.join();
}

// Phase 2: a real writer flips objects between two versions through the
// full write path (apply + WAL capture + invalidate-before-ack) while
// readers probe the cache directly — Lookup never touches a page, so the
// readers stay inside the contract even with a concurrent writer. Any
// entry the cache hands out must be one of the two legitimate versions;
// anything else means a torn assembly was published.
TEST_P(ObjCacheMtStoreTest, CacheLookupsRaceRealWriter) {
  // Two full-object versions per ref, distinguishable at values[1].
  std::vector<Tuple> v1, v2;
  for (const auto& object : db_->objects()) {
    v1.push_back(object.tuple);
    Tuple alt = object.tuple;
    alt.values[1] = Value::Int32(-1000000 - static_cast<int32_t>(object.ref));
    v2.push_back(alt);
  }
  // Warm the cache with v1 assemblies.
  for (const auto& object : db_->objects()) {
    ASSERT_TRUE(store_->Get(object.ref).ok());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  for (uint32_t t = 0; t < kReaderThreads; ++t) {
    pool.emplace_back([&, t] {
      ObjectCache* cache = store_->object_cache();
      Rng rng(0xACE + t);
      uint64_t observed = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t n = rng.Uniform(db_->objects().size());
        ObjCacheEntryRef entry = cache->Lookup(db_->objects()[n].ref);
        if (entry == nullptr) continue;
        const bool is_v1 = entry->object == v1[n];
        const bool is_v2 = entry->object == v2[n];
        ASSERT_TRUE(is_v1 || is_v2)
            << "cache served a tuple that never existed (ref "
            << db_->objects()[n].ref << ")";
        ++observed;
      }
      EXPECT_GT(observed, 0u) << "reader thread never saw a hit";
    });
  }

  Rng rng(0xBEE);
  for (int round = 0; round < 200; ++round) {
    const size_t n = rng.Uniform(db_->objects().size());
    const Tuple& next = (round % 2 == 0) ? v2[n] : v1[n];
    ASSERT_TRUE(store_->Replace(db_->objects()[n].ref, next).ok());
    // Re-populate so readers keep seeing hits for both versions.
    ASSERT_TRUE(store_->Get(db_->objects()[n].ref).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : pool) th.join();

  // Quiesced: the cache must now agree with the store for every object.
  for (size_t n = 0; n < db_->objects().size(); ++n) {
    auto got = store_->Get(db_->objects()[n].ref);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.value() == v1[n] || got.value() == v2[n]);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ObjCacheMtStoreTest,
                         ::testing::Values(VolumeKind::kMem,
                                           VolumeKind::kMmap),
                         [](const ::testing::TestParamInfo<VolumeKind>& info) {
                           return info.param == VolumeKind::kMem ? "mem"
                                                                 : "mmap";
                         });

}  // namespace
}  // namespace starfish
