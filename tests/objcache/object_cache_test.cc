// Unit tests of the raw ObjectCache (LRU, capacity, epochs, page index)
// plus store-level correctness of the cached read paths: every cached
// answer must be byte-equal to what the uncached store returns, across all
// models, projections and write ops.

#include "objcache/object_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "benchmark/generator.h"
#include "core/complex_object_store.h"

namespace starfish {
namespace {

Tuple SmallTuple(int32_t v) {
  return Tuple({Value::Int32(v), Value::Str("payload-" + std::to_string(v))});
}

ObjCacheOptions TinyOptions(size_t capacity = 1 << 20, uint32_t shards = 1) {
  ObjCacheOptions options;
  options.enabled = true;
  options.capacity_bytes = capacity;
  options.shard_count = shards;
  return options;
}

TEST(ObjectCacheTest, MissThenInsertThenHit) {
  ObjectCache cache(TinyOptions());
  uint64_t epoch = ~0ull;
  EXPECT_EQ(cache.Lookup(7, &epoch), nullptr);
  cache.Insert(7, SmallTuple(7), {1, 2, 2, 1}, epoch);
  ObjCacheEntryRef entry = cache.Lookup(7);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->object, SmallTuple(7));
  // The page list was deduped and sorted.
  EXPECT_EQ(entry->pages, (std::vector<PageId>{1, 2}));
  const ObjCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(stats.bytes, cache.TotalBytes());
}

TEST(ObjectCacheTest, CapacityEvictsLruFirst) {
  // Measure one entry's charge (the tuples below all have the same shape),
  // then size a single shard to hold exactly three.
  size_t charge = 0;
  {
    ObjectCache probe(TinyOptions());
    uint64_t epoch = 0;
    probe.Lookup(0, &epoch);
    probe.Insert(0, SmallTuple(0), {}, epoch);
    charge = probe.stats().bytes;
    ASSERT_GT(charge, 0u);
  }
  ObjectCache cache(TinyOptions(3 * charge, 1));
  for (ObjectRef ref = 0; ref < 3; ++ref) {
    uint64_t epoch = 0;
    cache.Lookup(ref, &epoch);
    cache.Insert(ref, SmallTuple(static_cast<int32_t>(ref)), {}, epoch);
  }
  ASSERT_EQ(cache.stats().entries, 3u);
  // Touch 0 so 1 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(0), nullptr);
  uint64_t epoch = 0;
  cache.Lookup(99, &epoch);
  cache.Insert(99, SmallTuple(99), {}, epoch);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_NE(cache.Lookup(0), nullptr) << "recently touched entry evicted";
  EXPECT_EQ(cache.Lookup(1), nullptr) << "LRU entry survived";
  EXPECT_NE(cache.Lookup(99), nullptr);
}

TEST(ObjectCacheTest, OversizeEntryIsNotCached) {
  ObjectCache cache(TinyOptions(64, 1));  // smaller than any entry charge
  uint64_t epoch = 0;
  cache.Lookup(1, &epoch);
  cache.Insert(1, SmallTuple(1), {}, epoch);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ObjectCacheTest, InvalidateRefDropsEntryAndBlocksStaleInsert) {
  ObjectCache cache(TinyOptions());
  uint64_t epoch = 0;
  cache.Lookup(5, &epoch);  // miss: sample the pre-assembly epoch
  // A write races the assembly and invalidates before the insert.
  cache.InvalidateRef(5);
  cache.Insert(5, SmallTuple(5), {}, epoch);
  EXPECT_EQ(cache.Lookup(5), nullptr) << "stale assembly was published";
  EXPECT_EQ(cache.stats().stale_drops, 1u);
  EXPECT_EQ(cache.stats().inserts, 0u);

  // The non-racing sequence publishes fine...
  uint64_t fresh_epoch = 0;
  cache.Lookup(5, &fresh_epoch);
  cache.Insert(5, SmallTuple(5), {}, fresh_epoch);
  ASSERT_NE(cache.Lookup(5), nullptr);
  // ...and a later invalidation drops the resident entry.
  cache.InvalidateRef(5);
  EXPECT_EQ(cache.Lookup(5), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ObjectCacheTest, InvalidatePagesDropsEveryBackedEntry) {
  ObjectCache cache(TinyOptions(1 << 20, 4));
  for (ObjectRef ref = 0; ref < 8; ++ref) {
    uint64_t epoch = 0;
    cache.Lookup(ref, &epoch);
    // Even refs share page 100; odd refs live on their own page.
    std::vector<PageId> pages =
        (ref % 2 == 0) ? std::vector<PageId>{100, static_cast<PageId>(ref)}
                       : std::vector<PageId>{static_cast<PageId>(200 + ref)};
    cache.Insert(ref, SmallTuple(static_cast<int32_t>(ref)), pages, epoch);
  }
  ASSERT_EQ(cache.stats().entries, 8u);
  cache.InvalidatePages({100});
  for (ObjectRef ref = 0; ref < 8; ++ref) {
    if (ref % 2 == 0) {
      EXPECT_EQ(cache.Lookup(ref), nullptr) << "ref " << ref;
    } else {
      EXPECT_NE(cache.Lookup(ref), nullptr) << "ref " << ref;
    }
  }
  EXPECT_EQ(cache.stats().invalidations, 4u);

  // InvalidatePages bumps EVERY shard's epoch: an insert with any
  // pre-invalidation epoch must be refused, whatever its shard.
  uint64_t epoch = 0;
  cache.Lookup(1000, &epoch);
  cache.InvalidatePages({42});
  cache.Insert(1000, SmallTuple(1000), {}, epoch);
  EXPECT_EQ(cache.Lookup(1000), nullptr);
}

TEST(ObjectCacheTest, ClearDropsEverythingAndKeepsGaugesConsistent) {
  ObjectCache cache(TinyOptions(1 << 20, 4));
  for (ObjectRef ref = 0; ref < 16; ++ref) {
    uint64_t epoch = 0;
    cache.Lookup(ref, &epoch);
    cache.Insert(ref, SmallTuple(static_cast<int32_t>(ref)),
                 {static_cast<PageId>(ref)}, epoch);
  }
  ASSERT_EQ(cache.stats().entries, 16u);
  cache.Clear();
  const ObjCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.invalidations, 16u);
  for (ObjectRef ref = 0; ref < 16; ++ref) {
    EXPECT_EQ(cache.Lookup(ref), nullptr);
  }
}

TEST(ObjectCacheTest, PinnedEntrySurvivesInvalidation) {
  // The PageGuard analogy: invalidation unshares, it does not destroy.
  ObjectCache cache(TinyOptions());
  uint64_t epoch = 0;
  cache.Lookup(3, &epoch);
  cache.Insert(3, SmallTuple(3), {}, epoch);
  ObjCacheEntryRef pinned = cache.Lookup(3);
  ASSERT_NE(pinned, nullptr);
  cache.InvalidateRef(3);
  EXPECT_EQ(cache.Lookup(3), nullptr);
  EXPECT_EQ(pinned->object, SmallTuple(3)) << "pinned entry mutated";
}

TEST(ObjectCacheTest, ResetStatsKeepsGauges) {
  ObjectCache cache(TinyOptions());
  uint64_t epoch = 0;
  cache.Lookup(1, &epoch);
  cache.Insert(1, SmallTuple(1), {}, epoch);
  const uint64_t resident = cache.stats().bytes;
  cache.ResetStats();
  const ObjCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
  EXPECT_EQ(stats.bytes, resident) << "reset destroyed the resident gauge";
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ObjectCacheTest, NegativeMissInsertHit) {
  ObjectCache cache(TinyOptions());
  EXPECT_FALSE(cache.LookupNegative(7));
  uint64_t epoch = ~0ull;
  EXPECT_EQ(cache.Lookup(7, &epoch), nullptr);
  cache.InsertNegative(7, epoch);
  EXPECT_TRUE(cache.LookupNegative(7));
  const ObjCacheStats stats = cache.stats();
  EXPECT_EQ(stats.negative_inserts, 1u);
  EXPECT_EQ(stats.negative_hits, 1u);
  EXPECT_EQ(stats.negative_entries, 1u);
}

TEST(ObjectCacheTest, NegativeInsertBlockedByEpochMove) {
  ObjectCache cache(TinyOptions());
  uint64_t epoch = 0;
  cache.Lookup(7, &epoch);
  // A write (any write) runs between the probe and the verdict: the
  // NotFound may already be wrong.
  cache.InvalidateRef(7);
  cache.InsertNegative(7, epoch);
  EXPECT_FALSE(cache.LookupNegative(7));
  EXPECT_EQ(cache.stats().negative_inserts, 0u);
  EXPECT_EQ(cache.stats().stale_drops, 1u);
}

TEST(ObjectCacheTest, NegativeVoidedByAnyWrite) {
  ObjectCache cache(TinyOptions());
  uint64_t epoch = 0;
  cache.Lookup(7, &epoch);
  cache.InsertNegative(7, epoch);
  ASSERT_TRUE(cache.LookupNegative(7));
  // A page-based invalidation (fired by every store write) bumps all
  // epochs, so the verdict dies even though ref 7 was never touched.
  cache.InvalidatePages({55});
  EXPECT_FALSE(cache.LookupNegative(7));
  EXPECT_EQ(cache.stats().negative_entries, 0u) << "stale entry not reaped";
}

TEST(ObjectCacheTest, NegativeErasedByInvalidateRef) {
  ObjectCache cache(TinyOptions());
  uint64_t epoch = 0;
  cache.Lookup(9, &epoch);
  cache.InsertNegative(9, epoch);
  cache.InvalidateRef(9);  // the object was just Put
  EXPECT_FALSE(cache.LookupNegative(9));
  EXPECT_EQ(cache.stats().negative_entries, 0u);
}

TEST(ObjectCacheTest, NegativeTableIsBounded) {
  ObjCacheOptions options = TinyOptions();
  options.negative_capacity = 4;
  ObjectCache cache(options);
  for (ObjectRef ref = 0; ref < 16; ++ref) {
    uint64_t epoch = 0;
    cache.Lookup(ref, &epoch);
    cache.InsertNegative(ref, epoch);
  }
  EXPECT_LE(cache.stats().negative_entries, 4u);
  EXPECT_TRUE(cache.LookupNegative(15)) << "most recent verdict evicted";
  EXPECT_FALSE(cache.LookupNegative(0)) << "oldest verdict survived the bound";
}

TEST(ObjectCacheTest, NegativeCachingDisabledByZeroCapacity) {
  ObjCacheOptions options = TinyOptions();
  options.negative_capacity = 0;
  ObjectCache cache(options);
  uint64_t epoch = 0;
  cache.Lookup(3, &epoch);
  cache.InsertNegative(3, epoch);
  EXPECT_FALSE(cache.LookupNegative(3));
  EXPECT_EQ(cache.stats().negative_inserts, 0u);
}

TEST(ObjectCacheTest, DeepSizeOfGrowsWithContent) {
  const size_t flat = DeepSizeOf(SmallTuple(1));
  Tuple nested({Value::Int32(1),
                Value::Relation({SmallTuple(2), SmallTuple(3)}),
                Value::Str(std::string(256, 'x'))});
  EXPECT_GT(DeepSizeOf(nested), flat);
  EXPECT_GE(DeepSizeOf(nested), 256u);  // the long string is charged
}

// ----------------------------------------------------------------- store --

class ObjCacheStoreTest : public ::testing::TestWithParam<StorageModelKind> {
 protected:
  void SetUp() override {
    bench::GeneratorConfig config;
    config.n_objects = 24;
    config.seed = 43;
    auto db = bench::BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<bench::BenchmarkDatabase>(std::move(db).value());

    cached_ = OpenStore(/*enabled=*/true);
    plain_ = OpenStore(/*enabled=*/false);
  }

  std::unique_ptr<ComplexObjectStore> OpenStore(bool enabled) {
    StoreOptions options;
    options.model = GetParam();
    options.objcache.enabled = enabled;
    options.objcache.capacity_bytes = 8 << 20;
    auto store = ComplexObjectStore::Open(db_->schema(), options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    auto owned = std::move(store).value();
    for (const auto& object : db_->objects()) {
      EXPECT_TRUE(owned->Put(object.ref, object.tuple).ok());
    }
    return owned;
  }

  bool ByRef() const { return GetParam() != StorageModelKind::kNsm; }

  std::unique_ptr<bench::BenchmarkDatabase> db_;
  std::unique_ptr<ComplexObjectStore> cached_;
  std::unique_ptr<ComplexObjectStore> plain_;
};

TEST_P(ObjCacheStoreTest, SecondGetIsAHitAndByteEqual) {
  if (!ByRef()) {
    // Plain NSM has no by-ref access: the tier stays off even when asked.
    EXPECT_EQ(cached_->object_cache(), nullptr);
    return;
  }
  ASSERT_NE(cached_->object_cache(), nullptr);
  for (const auto& object : db_->objects()) {
    auto first = cached_->Get(object.ref);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value(), object.tuple);
  }
  const ObjCacheStats cold = cached_->objcache_stats();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, db_->objects().size());
  EXPECT_EQ(cold.entries, db_->objects().size());
  for (const auto& object : db_->objects()) {
    auto again = cached_->Get(object.ref);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value(), object.tuple);
  }
  const ObjCacheStats warm = cached_->objcache_stats();
  EXPECT_EQ(warm.hits, db_->objects().size());
  EXPECT_GT(warm.HitRatio(), 0.0);
}

TEST_P(ObjCacheStoreTest, HitsCauseNoPageFixes) {
  if (!ByRef()) GTEST_SKIP();
  (void)cached_->Get(3);  // populate
  cached_->ResetStats();
  auto got = cached_->Get(3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(cached_->stats().buffer.fixes, 0u)
      << "a cache hit touched the page pool";
  EXPECT_EQ(cached_->objcache_stats().hits, 1u);
}

TEST_P(ObjCacheStoreTest, ProjectedGetsMatchUncachedStore) {
  if (!ByRef()) GTEST_SKIP();
  const Schema& schema = *db_->schema();
  std::vector<Projection> projections = {Projection::All(schema),
                                         Projection::RootOnly(schema)};
  // Every ancestor-closed single-branch subset.
  for (PathId p = 0; p < schema.path_count(); ++p) {
    std::vector<PathId> paths;
    PathId cur = p;
    for (;;) {
      paths.push_back(cur);
      if (cur == kRootPath) break;
      cur = schema.path(cur).parent;
    }
    auto proj = Projection::OfPaths(schema, paths);
    ASSERT_TRUE(proj.ok());
    projections.push_back(proj.value());
  }
  for (const auto& object : db_->objects()) {
    for (const Projection& proj : projections) {
      auto from_plain = plain_->Get(object.ref, proj);
      // Twice through the cached store: the first call may assemble (miss),
      // the second must serve the projection from the cached entry.
      auto from_miss = cached_->Get(object.ref, proj);
      auto from_hit = cached_->Get(object.ref, proj);
      ASSERT_TRUE(from_plain.ok());
      ASSERT_TRUE(from_miss.ok());
      ASSERT_TRUE(from_hit.ok());
      EXPECT_EQ(from_miss.value(), from_plain.value())
          << "miss path diverged, projection " << proj.ToString();
      EXPECT_EQ(from_hit.value(), from_plain.value())
          << "hit path diverged, projection " << proj.ToString();
    }
  }
}

TEST_P(ObjCacheStoreTest, ChildrenAndRootRecordMatchUncachedStore) {
  if (!ByRef()) GTEST_SKIP();
  for (const auto& object : db_->objects()) {
    (void)cached_->Get(object.ref);  // make the next reads cache hits
    auto cached_children = cached_->Children(object.ref);
    auto plain_children = plain_->Children(object.ref);
    ASSERT_TRUE(cached_children.ok());
    ASSERT_TRUE(plain_children.ok());
    EXPECT_EQ(cached_children.value(), plain_children.value());
    auto cached_root = cached_->RootRecord(object.ref);
    auto plain_root = plain_->RootRecord(object.ref);
    ASSERT_TRUE(cached_root.ok());
    ASSERT_TRUE(plain_root.ok());
    EXPECT_EQ(cached_root.value(), plain_root.value());
  }
}

TEST_P(ObjCacheStoreTest, NavigationMissesDoNotPopulate) {
  if (!ByRef()) GTEST_SKIP();
  (void)cached_->Children(2);
  (void)cached_->RootRecord(2);
  EXPECT_EQ(cached_->objcache_stats().entries, 0u)
      << "a navigation miss assembled a whole object";
}

TEST_P(ObjCacheStoreTest, ReplaceInvalidatesBeforeAck) {
  if (!ByRef()) GTEST_SKIP();
  ASSERT_TRUE(cached_->Get(5).ok());  // cached
  Tuple replacement = db_->objects()[5].tuple;
  replacement.values[1] = Value::Int32(424242);
  ASSERT_TRUE(cached_->Replace(5, replacement).ok());
  EXPECT_GT(cached_->objcache_stats().invalidations, 0u);
  auto after = cached_->Get(5);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), replacement) << "stale assembly served after write";
}

TEST_P(ObjCacheStoreTest, UpdateRootRecordInvalidates) {
  if (!ByRef()) GTEST_SKIP();
  ASSERT_TRUE(cached_->Get(4).ok());
  auto root = cached_->RootRecord(4);
  ASSERT_TRUE(root.ok());
  Tuple updated = root.value();
  updated.values[1] = Value::Int32(999);
  ASSERT_TRUE(cached_->UpdateRootRecord(4, updated).ok());
  auto after = cached_->RootRecord(4);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->values[1].as_int32(), 999);
  auto full = cached_->Get(4);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->values[1].as_int32(), 999);
}

TEST_P(ObjCacheStoreTest, RemoveInvalidates) {
  if (!ByRef()) GTEST_SKIP();
  ASSERT_TRUE(cached_->Get(6).ok());
  ASSERT_TRUE(cached_->Remove(6).ok());
  EXPECT_TRUE(cached_->Get(6).status().IsNotFound())
      << "cache resurrected a removed object";
}

TEST_P(ObjCacheStoreTest, RepeatedMissingGetIsNegativelyCachedAndByteEqual) {
  if (!ByRef()) GTEST_SKIP();
  const ObjectRef absent = 9000;  // far outside the generated refs
  auto from_plain = plain_->Get(absent);
  auto first = cached_->Get(absent);   // model probe, verdict recorded
  auto second = cached_->Get(absent);  // served by the negative table
  ASSERT_FALSE(from_plain.ok());
  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(first.status().IsNotFound());
  EXPECT_TRUE(second.status().IsNotFound());
  // The cache-served answer is indistinguishable from the model's.
  EXPECT_EQ(first.status().ToString(), from_plain.status().ToString());
  EXPECT_EQ(second.status().ToString(), from_plain.status().ToString());
  EXPECT_EQ(cached_->objcache_stats().negative_hits, 1u);
}

TEST_P(ObjCacheStoreTest, NegativeHitCausesNoPageFixes) {
  if (!ByRef()) GTEST_SKIP();
  const ObjectRef absent = 9001;
  ASSERT_TRUE(cached_->Get(absent).status().IsNotFound());  // record verdict
  cached_->ResetStats();
  ASSERT_TRUE(cached_->Get(absent).status().IsNotFound());
  EXPECT_EQ(cached_->stats().buffer.fixes, 0u)
      << "a negative hit touched the page pool";
  EXPECT_EQ(cached_->objcache_stats().negative_hits, 1u);
}

TEST_P(ObjCacheStoreTest, PutAfterNegativeProbeIsVisible) {
  if (!ByRef()) GTEST_SKIP();
  const ObjectRef fresh = 9002;
  // Probe twice so the second answer provably came from the side table.
  ASSERT_TRUE(cached_->Get(fresh).status().IsNotFound());
  ASSERT_TRUE(cached_->Get(fresh).status().IsNotFound());
  Tuple tuple = db_->objects()[0].tuple;
  tuple.values[0] = Value::Int32(9002 + 1);  // fresh unique key
  auto put = cached_->Put(fresh, tuple);
  ASSERT_TRUE(put.ok()) << put.ToString();
  auto after = cached_->Get(fresh);
  ASSERT_TRUE(after.ok()) << "negative verdict outlived the Put";
  EXPECT_EQ(after.value(), tuple);
}

TEST_P(ObjCacheStoreTest, DisabledStoreHasNoCache) {
  EXPECT_EQ(plain_->object_cache(), nullptr);
  const ObjCacheStats stats = plain_->objcache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.entries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ObjCacheStoreTest,
    ::testing::ValuesIn(AllStorageModelKinds()),
    [](const ::testing::TestParamInfo<StorageModelKind>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

// Persistent stores: write-capture (page-based) invalidation and the
// cold-start-on-reopen contract over the mmap backend.
TEST(ObjCachePersistentTest, WalWritePathInvalidatesAndReopenStartsCold) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "starfish_objcache_persist")
          .string();
  std::filesystem::remove_all(dir);

  bench::GeneratorConfig config;
  config.n_objects = 12;
  config.seed = 7;
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());

  StoreOptions options;
  options.model = StorageModelKind::kDasdbsNsm;
  options.backend = VolumeKind::kMmap;
  options.path = dir;
  options.objcache.enabled = true;
  options.wal_sync = WalSyncPolicy::kAlways;
  {
    auto store_or = ComplexObjectStore::Open(db->schema(), options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    auto store = std::move(store_or).value();
    for (const auto& object : db->objects()) {
      ASSERT_TRUE(store->Put(object.ref, object.tuple).ok());
    }
    for (const auto& object : db->objects()) {
      ASSERT_TRUE(store->Get(object.ref).ok());
    }
    ASSERT_EQ(store->objcache_stats().entries, db->objects().size());

    Tuple replacement = db->objects()[0].tuple;
    replacement.values[1] = Value::Int32(31337);
    ASSERT_TRUE(store->Replace(0, replacement).ok());
    // The WAL write capture fed page-based invalidation: at minimum the
    // replaced object's assembly is gone, and the page net may have taken
    // neighbors on shared slotted pages with it.
    EXPECT_GT(store->objcache_stats().invalidations, 0u);
    auto after = store->Get(0);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after.value(), replacement);
    ASSERT_TRUE(store->Flush().ok());
  }

  // Reopen: the cache must start empty (assemblies never persist).
  auto reopened_or = ComplexObjectStore::Open(db->schema(), options);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  ASSERT_NE(reopened->object_cache(), nullptr);
  const ObjCacheStats cold = reopened->objcache_stats();
  EXPECT_EQ(cold.entries, 0u);
  EXPECT_EQ(cold.hits + cold.misses, 0u);
  auto got = reopened->Get(3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), db->objects()[3].tuple);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace starfish
