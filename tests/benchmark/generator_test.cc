#include "benchmark/generator.h"

#include <gtest/gtest.h>

#include "benchmark/station_schema.h"

namespace starfish::bench {
namespace {

TEST(GeneratorTest, DeterministicForSameSeed) {
  GeneratorConfig config;
  config.n_objects = 30;
  config.seed = 5;
  auto a = BenchmarkDatabase::Generate(config);
  auto b = BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->objects().size(), b->objects().size());
  for (size_t i = 0; i < a->objects().size(); ++i) {
    EXPECT_EQ(a->objects()[i].tuple, b->objects()[i].tuple);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config;
  config.n_objects = 10;
  config.seed = 1;
  auto a = BenchmarkDatabase::Generate(config);
  config.seed = 2;
  auto b = BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(a.ok() && b.ok());
  int differing = 0;
  for (size_t i = 0; i < 10; ++i) {
    differing += a->objects()[i].tuple == b->objects()[i].tuple ? 0 : 1;
  }
  EXPECT_GT(differing, 5);
}

TEST(GeneratorTest, KeysAreUniqueAndDense) {
  GeneratorConfig config;
  config.n_objects = 25;
  auto db = BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  for (size_t i = 0; i < db->objects().size(); ++i) {
    EXPECT_EQ(db->objects()[i].ref, i);
    EXPECT_EQ(db->objects()[i].key, static_cast<int64_t>(i) + 1);
    EXPECT_EQ(db->objects()[i].tuple.values[StationAttrs::kKey].as_int32(),
              static_cast<int32_t>(i) + 1);
  }
}

TEST(GeneratorTest, ObjectsConformToSchema) {
  GeneratorConfig config;
  config.n_objects = 20;
  auto db = BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  for (const auto& object : db->objects()) {
    EXPECT_TRUE(ValidateTuple(*db->schema(), object.tuple).ok());
  }
}

TEST(GeneratorTest, DistributionMatchesPaperExpectations) {
  // 1500 objects, defaults: expected 1.6 platforms, 4.10 connections, 7.5
  // sightseeings per station (paper drew 1.59 / 4.04 / 7.64).
  GeneratorConfig config;
  config.n_objects = 1500;
  auto db = BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  EXPECT_NEAR(db->stats().avg_platforms, 1.6, 0.1);
  EXPECT_NEAR(db->stats().avg_connections, config.ExpectedChildren(), 0.25);
  EXPECT_NEAR(db->stats().avg_sightseeings, 7.5, 0.35);
  EXPECT_LE(db->stats().max_platforms, config.fanout);
  EXPECT_LE(db->stats().max_connections, config.fanout * config.fanout *
                                             config.fanout);
}

TEST(GeneratorTest, ExpectedChildrenFormula) {
  GeneratorConfig config;  // fanout 2, p 0.8
  EXPECT_NEAR(config.ExpectedChildren(), 4.096, 1e-9);
  EXPECT_NEAR(config.ExpectedGrandChildren(), 4.096 * 4.096, 1e-9);
  config.fanout = 8;
  config.creation_probability = 0.2;
  // The skewed configuration of §5.5 keeps the same expectation.
  EXPECT_NEAR(config.ExpectedChildren(), 4.096, 1e-9);
}

TEST(GeneratorTest, SkewedConfigHasWiderSpread) {
  GeneratorConfig base;
  base.n_objects = 1000;
  auto normal = BenchmarkDatabase::Generate(base);
  ASSERT_TRUE(normal.ok());

  GeneratorConfig skew = base;
  skew.fanout = 8;
  skew.creation_probability = 0.2;
  auto skewed = BenchmarkDatabase::Generate(skew);
  ASSERT_TRUE(skewed.ok());

  // Similar averages, much larger maxima (paper: max 6 platforms, 34
  // connections in the skewed extension).
  EXPECT_NEAR(skewed->stats().avg_connections,
              normal->stats().avg_connections, 0.6);
  EXPECT_GT(skewed->stats().max_platforms, normal->stats().max_platforms);
  EXPECT_GT(skewed->stats().max_connections,
            normal->stats().max_connections);
}

TEST(GeneratorTest, MaxSightseeingsRespected) {
  GeneratorConfig config;
  config.n_objects = 300;
  config.max_sightseeings = 0;
  auto db = BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  EXPECT_DOUBLE_EQ(db->stats().avg_sightseeings, 0.0);
  config.max_sightseeings = 30;
  auto big = BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(big.ok());
  EXPECT_NEAR(big->stats().avg_sightseeings, 15.0, 1.5);
  EXPECT_GT(big->stats().avg_object_bytes, db->stats().avg_object_bytes);
}

TEST(GeneratorTest, LinksPointAtValidObjects) {
  GeneratorConfig config;
  config.n_objects = 40;
  auto db = BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  for (const auto& object : db->objects()) {
    for (const Tuple& platform :
         object.tuple.values[StationAttrs::kPlatforms].as_relation()) {
      for (const Tuple& conn : platform.values[4].as_relation()) {
        const uint64_t target = conn.values[2].as_link();
        EXPECT_LT(target, config.n_objects);
        // KeyConnection mirrors the target's key.
        EXPECT_EQ(conn.values[1].as_int32(), static_cast<int32_t>(target) + 1);
      }
    }
  }
}

TEST(GeneratorTest, StringAttributesHaveConfiguredLength) {
  GeneratorConfig config;
  config.n_objects = 5;
  config.string_bytes = 64;
  auto db = BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  for (const auto& object : db->objects()) {
    EXPECT_EQ(object.tuple.values[StationAttrs::kName].as_string().size(), 64u);
  }
}

TEST(GeneratorTest, AverageObjectBytesNearPaperScale) {
  // With the default parameters the serialized object payload is close to
  // the paper's data volume (~4 KB per Station).
  GeneratorConfig config;
  config.n_objects = 500;
  auto db = BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  EXPECT_GT(db->stats().avg_object_bytes, 3000);
  EXPECT_LT(db->stats().avg_object_bytes, 5000);
}

TEST(GeneratorTest, RejectsEmptyDatabase) {
  GeneratorConfig config;
  config.n_objects = 0;
  EXPECT_TRUE(BenchmarkDatabase::Generate(config).status().IsInvalidArgument());
}

}  // namespace
}  // namespace starfish::bench
