#include "benchmark/calibration.h"

#include <gtest/gtest.h>

#include "benchmark/station_schema.h"

namespace starfish::bench {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.n_objects = 200;
    config.seed = 91;
    auto db = BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<BenchmarkDatabase>(std::move(db).value());
  }
  std::unique_ptr<BenchmarkDatabase> db_;
};

TEST_F(CalibrationTest, DirectModelParameters) {
  StorageEngine engine;
  ModelConfig mc;
  mc.schema = db_->schema();
  auto model = DirectModel::Create(&engine, mc, DirectModelOptions{});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(db_->LoadInto(model->get(), &engine).ok());
  auto rel = CalibrateDirect(model->get(), *db_);
  ASSERT_TRUE(rel.ok());
  EXPECT_DOUBLE_EQ(rel->tuples_per_object, 1.0);
  EXPECT_DOUBLE_EQ(rel->total_tuples, 200.0);
  EXPECT_TRUE(rel->is_large);  // the average Station spans pages
  EXPECT_GT(rel->header_pages, 0.5);
  EXPECT_GT(rel->data_pages, 1.5);
  EXPECT_GT(rel->p, 2.5);
  EXPECT_LT(rel->p, 4.0);
  // m equals the segment's real page count.
  EXPECT_DOUBLE_EQ(rel->m,
                   static_cast<double>(model->get()->segment()->pages().size()));
  // S_tuple counts occupied bytes (>= payload).
  EXPECT_GE(rel->tuple_bytes, rel->payload_bytes);
}

TEST_F(CalibrationTest, NsmParametersPerPath) {
  StorageEngine engine;
  ModelConfig mc;
  mc.schema = db_->schema();
  auto model = NsmModel::Create(&engine, mc, NsmModelOptions{});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(db_->LoadInto(model->get(), &engine).ok());
  auto rels = CalibrateNsm(model->get(), *db_);
  ASSERT_TRUE(rels.ok());
  ASSERT_EQ(rels->size(), 4u);
  // Station: exactly one tuple per object.
  EXPECT_DOUBLE_EQ((*rels)[0].tuples_per_object, 1.0);
  // Connection: the generated average (~4.1).
  EXPECT_NEAR((*rels)[2].tuples_per_object, 4.1, 0.8);
  // Sightseeing tuples are the biggest flat tuples.
  EXPECT_GT((*rels)[3].payload_bytes, (*rels)[0].payload_bytes);
  for (const auto& rel : rels.value()) {
    EXPECT_FALSE(rel.is_large);
    EXPECT_GE(rel.k, 1.0);
    EXPECT_GT(rel.m, 0.0);
  }
}

TEST_F(CalibrationTest, DasdbsNsmOneTuplePerObjectPerRelation) {
  StorageEngine engine;
  ModelConfig mc;
  mc.schema = db_->schema();
  auto model = DasdbsNsmModel::Create(&engine, mc);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(db_->LoadInto(model->get(), &engine).ok());
  auto rels = CalibrateDasdbsNsm(model->get(), *db_);
  ASSERT_TRUE(rels.ok());
  ASSERT_EQ(rels->size(), 4u);
  for (const auto& rel : rels.value()) {
    EXPECT_DOUBLE_EQ(rel.tuples_per_object, 1.0);
    EXPECT_DOUBLE_EQ(rel.total_tuples, 200.0);
  }
  // The nested sightseeing tuples span pages.
  EXPECT_TRUE((*rels)[3].is_large);
  EXPECT_FALSE((*rels)[2].is_large);
}

TEST_F(CalibrationTest, WorkloadParamsFromDatabase) {
  auto workload = DeriveWorkloadParams(*db_, /*loops=*/40, 2012);
  ASSERT_TRUE(workload.ok());
  EXPECT_DOUBLE_EQ(workload->n_objects, 200.0);
  EXPECT_DOUBLE_EQ(workload->loops, 40.0);
  EXPECT_NEAR(workload->avg_children, db_->stats().avg_connections, 1e-9);
  // Navigation projection bytes: root + platforms + connections, well
  // below a whole object but above the root record.
  EXPECT_GT(workload->nav_bytes, workload->root_bytes);
  EXPECT_LT(workload->nav_bytes, db_->stats().avg_object_bytes);
  EXPECT_NEAR(workload->root_bytes, 120, 15);
}

TEST_F(CalibrationTest, NormalizedLayoutFindsLinkRelation) {
  auto decomp = NsmDecomposition::Derive(db_->schema(), 0);
  ASSERT_TRUE(decomp.ok());
  const cost::NormalizedLayout layout = DeriveNormalizedLayout(decomp.value());
  EXPECT_EQ(layout.root_index, 0u);
  ASSERT_EQ(layout.link_indexes.size(), 1u);
  EXPECT_EQ(layout.link_indexes[0], StationPaths::kConnection);
}

}  // namespace
}  // namespace starfish::bench
