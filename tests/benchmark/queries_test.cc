// The query suite itself: measurements are populated, normalized correctly,
// and reproduce the paper's qualitative relations on a small database.

#include "benchmark/queries.h"

#include <gtest/gtest.h>

#include "benchmark/runner.h"

namespace starfish::bench {
namespace {

class QueriesTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kObjects = 120;

  void SetUp() override {
    GeneratorConfig config;
    config.n_objects = kObjects;
    config.seed = 21;
    auto db = BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<BenchmarkDatabase>(std::move(db).value());
  }

  QuerySuiteResults RunSuite(StorageModelKind kind, uint32_t buffer_frames,
                             uint32_t loops = 60) {
    BufferOptions buffer;
    buffer.frame_count = buffer_frames;
    QueryConfig query;
    query.loops = loops;
    query.q1a_samples = 10;
    query.q2a_samples = 5;
    auto result = BenchmarkRunner::RunOne(kind, *db_, buffer, query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result->queries;
  }

  std::unique_ptr<BenchmarkDatabase> db_;
};

TEST_F(QueriesTest, AllMeasurementsPopulated) {
  const QuerySuiteResults r = RunSuite(StorageModelKind::kDasdbsNsm, 600);
  ASSERT_TRUE(r.q1a.has_value());
  EXPECT_GT(r.q1a->Pages(), 0);
  EXPECT_GT(r.q1b.Pages(), 0);
  EXPECT_GT(r.q1c.Pages(), 0);
  EXPECT_GT(r.q2a.Pages(), 0);
  EXPECT_GT(r.q2b.Pages(), 0);
  EXPECT_GT(r.q3a.Pages(), 0);
  EXPECT_GT(r.q3b.Pages(), 0);
  EXPECT_GT(r.q1c.Fixes(), 0);
  EXPECT_GT(r.q2b.Calls(), 0);
}

TEST_F(QueriesTest, PlainNsmSkipsQuery1a) {
  const QuerySuiteResults r = RunSuite(StorageModelKind::kNsm, 600);
  EXPECT_FALSE(r.q1a.has_value());
}

TEST_F(QueriesTest, ReadQueriesWriteNothing) {
  const QuerySuiteResults r = RunSuite(StorageModelKind::kDsm, 600);
  EXPECT_DOUBLE_EQ(r.q1b.PagesWritten(), 0);
  EXPECT_DOUBLE_EQ(r.q1c.PagesWritten(), 0);
  EXPECT_DOUBLE_EQ(r.q2a.PagesWritten(), 0);
  EXPECT_DOUBLE_EQ(r.q2b.PagesWritten(), 0);
}

TEST_F(QueriesTest, UpdateQueriesCostMoreThanTheirReadTwins) {
  for (StorageModelKind kind :
       {StorageModelKind::kDsm, StorageModelKind::kDasdbsNsm}) {
    const QuerySuiteResults r = RunSuite(kind, 600);
    EXPECT_GT(r.q3a.Pages(), r.q2a.Pages() * 0.99) << ToString(kind);
    EXPECT_GT(r.q3b.PagesWritten(), 0) << ToString(kind);
  }
}

TEST_F(QueriesTest, LoopAmortizationLowersPerLoopCost) {
  const QuerySuiteResults r = RunSuite(StorageModelKind::kDasdbsNsm, 600);
  // 2b amortizes the working set across loops; 2a pays it per loop.
  EXPECT_LT(r.q2b.Pages(), r.q2a.Pages());
}

TEST_F(QueriesTest, SmallBufferHurtsDirectModelMost) {
  // Fig. 6 in miniature: shrinking the buffer inflates DSM's query-2b cost
  // far more than DASDBS-NSM's.
  const double dsm_big = RunSuite(StorageModelKind::kDsm, 2000).q2b.Pages();
  const double dsm_small = RunSuite(StorageModelKind::kDsm, 40).q2b.Pages();
  const double dnsm_big =
      RunSuite(StorageModelKind::kDasdbsNsm, 2000).q2b.Pages();
  const double dnsm_small =
      RunSuite(StorageModelKind::kDasdbsNsm, 40).q2b.Pages();
  EXPECT_GT(dsm_small, dsm_big * 1.5);
  EXPECT_LT(dnsm_small / std::max(dnsm_big, 1e-9),
            dsm_small / std::max(dsm_big, 1e-9));
}

TEST_F(QueriesTest, PaperOrderingOnNavigation) {
  const double dsm = RunSuite(StorageModelKind::kDsm, 600).q2b.Pages();
  const double ddsm = RunSuite(StorageModelKind::kDasdbsDsm, 600).q2b.Pages();
  const double dnsm = RunSuite(StorageModelKind::kDasdbsNsm, 600).q2b.Pages();
  EXPECT_LE(dnsm, ddsm * 1.05);
  EXPECT_LE(ddsm, dsm * 1.05);
}

TEST_F(QueriesTest, NsmFixCountsDwarfEveryoneElse) {
  const double nsm = RunSuite(StorageModelKind::kNsm, 600).q2b.Fixes();
  const double dnsm =
      RunSuite(StorageModelKind::kDasdbsNsm, 600).q2b.Fixes();
  // At full scale the paper saw 370k vs ~7k fixes; at this reduced scale
  // the relations are small, but NSM must still clearly dominate.
  EXPECT_GT(nsm, dnsm * 2.5);
}

TEST_F(QueriesTest, DeterministicAcrossRuns) {
  const QuerySuiteResults a = RunSuite(StorageModelKind::kDasdbsDsm, 600);
  const QuerySuiteResults b = RunSuite(StorageModelKind::kDasdbsDsm, 600);
  EXPECT_DOUBLE_EQ(a.q2b.Pages(), b.q2b.Pages());
  EXPECT_DOUBLE_EQ(a.q3b.Pages(), b.q3b.Pages());
  EXPECT_DOUBLE_EQ(a.q1c.Fixes(), b.q1c.Fixes());
}

TEST_F(QueriesTest, MeasurementNormalization) {
  QueryMeasurement m;
  m.delta.io.pages_read = 30;
  m.delta.io.pages_written = 10;
  m.delta.io.read_calls = 5;
  m.delta.io.write_calls = 1;
  m.delta.buffer.fixes = 100;
  m.normalizer = 10;
  EXPECT_DOUBLE_EQ(m.Pages(), 4.0);
  EXPECT_DOUBLE_EQ(m.PagesRead(), 3.0);
  EXPECT_DOUBLE_EQ(m.PagesWritten(), 1.0);
  EXPECT_DOUBLE_EQ(m.Calls(), 0.6);
  EXPECT_DOUBLE_EQ(m.Fixes(), 10.0);
}

}  // namespace
}  // namespace starfish::bench
