#include "models/normalization.h"

#include <gtest/gtest.h>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"

namespace starfish {
namespace {

using bench::MakeStationSchema;
using bench::StationAttrs;
using bench::StationPaths;

class NormalizationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto decomp = NsmDecomposition::Derive(MakeStationSchema(), 0);
    ASSERT_TRUE(decomp.ok());
    decomp_ = std::make_unique<NsmDecomposition>(std::move(decomp).value());
  }
  std::unique_ptr<NsmDecomposition> decomp_;
};

TEST_F(NormalizationTest, DefaultKeepsOwnKeysOnLeafPaths) {
  // Robust default: every non-root path carries an OwnKey so document
  // order survives structural updates.
  EXPECT_TRUE(decomp_->relation(StationPaths::kConnection).has_own_key);
  EXPECT_TRUE(decomp_->relation(StationPaths::kSightseeing).has_own_key);
  EXPECT_FALSE(decomp_->relation(StationPaths::kStation).has_own_key);
}

TEST_F(NormalizationTest, PaperFigure3KeyAttributes) {
  // The paper's exact layout, with the "superfluous keys omitted" rule.
  DecompositionOptions options;
  options.omit_leaf_own_keys = true;
  auto derived = NsmDecomposition::Derive(MakeStationSchema(), 0, options);
  ASSERT_TRUE(derived.ok());
  decomp_ = std::make_unique<NsmDecomposition>(std::move(derived).value());
  // NSM_Station: no added keys (the root's own key is its Key attribute).
  const DecomposedRelation& station = decomp_->relation(StationPaths::kStation);
  EXPECT_FALSE(station.has_root_key);
  EXPECT_FALSE(station.has_parent_key);
  EXPECT_FALSE(station.has_own_key);
  EXPECT_EQ(station.flat_schema->attributes().size(), 4u);

  // NSM_Platform: RootKey + OwnKey (it has Connection children).
  const DecomposedRelation& platform = decomp_->relation(StationPaths::kPlatform);
  EXPECT_TRUE(platform.has_root_key);
  EXPECT_FALSE(platform.has_parent_key);  // depth 1: equals RootKey
  EXPECT_TRUE(platform.has_own_key);
  EXPECT_EQ(platform.flat_schema->attributes()[0].name, "RootKey");
  EXPECT_EQ(platform.flat_schema->attributes()[1].name, "OwnKey");
  EXPECT_EQ(platform.flat_schema->attributes().size(), 2u + 4u);

  // NSM_Connection: RootKey + ParentKey, no OwnKey (leaf path).
  const DecomposedRelation& conn = decomp_->relation(StationPaths::kConnection);
  EXPECT_TRUE(conn.has_root_key);
  EXPECT_TRUE(conn.has_parent_key);
  EXPECT_FALSE(conn.has_own_key);
  EXPECT_EQ(conn.flat_schema->attributes().size(), 2u + 4u);
  EXPECT_TRUE(conn.has_links);

  // NSM_Sightseeing: RootKey only.
  const DecomposedRelation& sight = decomp_->relation(StationPaths::kSightseeing);
  EXPECT_TRUE(sight.has_root_key);
  EXPECT_FALSE(sight.has_parent_key);
  EXPECT_FALSE(sight.has_own_key);
  EXPECT_EQ(sight.flat_schema->attributes().size(), 1u + 5u);
  EXPECT_FALSE(sight.has_links);
}

TEST_F(NormalizationTest, PaperFigure4NestedSchemas) {
  // DASDBS-NSM_Platform: (RootKey, {(OwnKey, data...)}).
  const DecomposedRelation& platform = decomp_->relation(StationPaths::kPlatform);
  ASSERT_NE(platform.nested_schema, nullptr);
  ASSERT_EQ(platform.nested_schema->attributes().size(), 2u);
  EXPECT_EQ(platform.nested_schema->attributes()[0].name, "RootKey");
  EXPECT_EQ(platform.nested_schema->attributes()[1].type, AttrType::kRelation);

  // DASDBS-NSM_Connection: (RootKey, {(ParentKey, {(data...)})}).
  const DecomposedRelation& conn = decomp_->relation(StationPaths::kConnection);
  ASSERT_NE(conn.nested_schema, nullptr);
  const auto& groups = conn.nested_schema->attributes()[1];
  ASSERT_EQ(groups.type, AttrType::kRelation);
  EXPECT_EQ(groups.relation->attributes()[0].name, "ParentKey");
  EXPECT_EQ(groups.relation->attributes()[1].type, AttrType::kRelation);

  // Root relation stays flat.
  EXPECT_EQ(decomp_->relation(StationPaths::kStation).nested_schema, nullptr);
}

TEST_F(NormalizationTest, DeriveRejectsBadKeyAttribute) {
  auto schema = MakeStationSchema();
  EXPECT_TRUE(NsmDecomposition::Derive(schema, 3).status().IsInvalidArgument());
  EXPECT_TRUE(NsmDecomposition::Derive(schema, 99).status().IsInvalidArgument());
  EXPECT_TRUE(NsmDecomposition::Derive(nullptr, 0).status().IsInvalidArgument());
}

TEST_F(NormalizationTest, ShredProducesDocumentOrderRows) {
  bench::GeneratorConfig config;
  config.n_objects = 3;
  config.seed = 11;
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  const auto& object = db->objects()[0];
  auto parts = decomp_->Shred(object.tuple);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ((*parts)[StationPaths::kStation].size(), 1u);
  const auto& platforms =
      object.tuple.values[StationAttrs::kPlatforms].as_relation();
  EXPECT_EQ((*parts)[StationPaths::kPlatform].size(), platforms.size());
  // Every non-root row carries the object key as RootKey.
  for (PathId p = 1; p < 4; ++p) {
    for (const Tuple& flat : (*parts)[p]) {
      EXPECT_EQ(flat.values[0].as_int32(), object.key);
    }
  }
  // Own keys of platforms are 0, 1, ... in order.
  for (size_t i = 0; i < (*parts)[StationPaths::kPlatform].size(); ++i) {
    EXPECT_EQ((*parts)[StationPaths::kPlatform][i].values[1].as_int32(),
              static_cast<int32_t>(i));
  }
}

TEST_F(NormalizationTest, ShredAssembleRoundTripsGeneratedObjects) {
  bench::GeneratorConfig config;
  config.n_objects = 50;
  config.seed = 23;
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  const Projection all = Projection::All(*db->schema());
  for (const auto& object : db->objects()) {
    auto parts = decomp_->Shred(object.tuple);
    ASSERT_TRUE(parts.ok());
    auto back = decomp_->Assemble(parts.value(), all);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), object.tuple);
  }
}

TEST_F(NormalizationTest, AssembleToleratesShuffledRows) {
  bench::GeneratorConfig config;
  config.n_objects = 10;
  config.seed = 31;
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  // Pick an object with at least two platforms so ordering matters.
  for (const auto& object : db->objects()) {
    auto parts = decomp_->Shred(object.tuple);
    ASSERT_TRUE(parts.ok());
    auto& platforms = (*parts)[StationPaths::kPlatform];
    if (platforms.size() < 2) continue;
    std::reverse(platforms.begin(), platforms.end());  // re-sorted by OwnKey
    auto back = decomp_->Assemble(parts.value(), Projection::All(*db->schema()));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), object.tuple);
    return;
  }
  GTEST_SKIP() << "no object with 2 platforms in sample";
}

TEST_F(NormalizationTest, ProjectedAssembleOmitsPaths) {
  bench::GeneratorConfig config;
  config.n_objects = 5;
  config.seed = 41;
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  const auto& object = db->objects()[1];
  auto parts = decomp_->Shred(object.tuple);
  ASSERT_TRUE(parts.ok());
  auto proj = Projection::OfPaths(*db->schema(),
                                  {StationPaths::kStation,
                                   StationPaths::kSightseeing});
  ASSERT_TRUE(proj.ok());
  // Remove the unselected parts, as a projected read would.
  (*parts)[StationPaths::kPlatform].clear();
  (*parts)[StationPaths::kConnection].clear();
  auto back = decomp_->Assemble(parts.value(), proj.value());
  ASSERT_TRUE(back.ok());
  Tuple expected = object.tuple;
  expected.values[StationAttrs::kPlatforms] = Value::Relation({});
  EXPECT_EQ(back.value(), expected);
}

TEST_F(NormalizationTest, NestUnnestRoundTrip) {
  bench::GeneratorConfig config;
  config.n_objects = 30;
  config.seed = 53;
  auto db = bench::BenchmarkDatabase::Generate(config);
  ASSERT_TRUE(db.ok());
  for (const auto& object : db->objects()) {
    auto parts = decomp_->Shred(object.tuple);
    ASSERT_TRUE(parts.ok());
    for (PathId p = 1; p < 4; ++p) {
      auto nested = decomp_->Nest(p, object.key, (*parts)[p]);
      ASSERT_TRUE(nested.ok());
      // One tuple per relation per object; RootKey not replicated.
      EXPECT_EQ(nested->values[0].as_int32(), object.key);
      auto flats = decomp_->Unnest(p, nested.value());
      ASSERT_TRUE(flats.ok());
      EXPECT_EQ(flats.value(), (*parts)[p]) << "path " << p;
    }
  }
}

TEST_F(NormalizationTest, NestEmptyPathStillOneTuple) {
  auto nested = decomp_->Nest(StationPaths::kSightseeing, 42, {});
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->values[0].as_int32(), 42);
  EXPECT_TRUE(nested->values[1].as_relation().empty());
  auto flats = decomp_->Unnest(StationPaths::kSightseeing, nested.value());
  ASSERT_TRUE(flats.ok());
  EXPECT_TRUE(flats->empty());
}

TEST_F(NormalizationTest, NestRejectsRootPath) {
  EXPECT_TRUE(decomp_->Nest(0, 1, {}).status().IsInvalidArgument());
  Tuple dummy;
  EXPECT_TRUE(decomp_->Unnest(0, dummy).status().IsInvalidArgument());
}

TEST_F(NormalizationTest, DepthThreeSchemaRoundTrips) {
  // L0(key) -> L1 -> L2 -> L3: exercises ParentKey at depth 3.
  auto l3 = SchemaBuilder("L3").AddInt32("v").Build();
  auto l2 = SchemaBuilder("L2").AddInt32("v").AddRelation("r", l3).Build();
  auto l1 = SchemaBuilder("L1").AddInt32("v").AddRelation("r", l2).Build();
  auto l0 = SchemaBuilder("L0").AddInt32("key").AddRelation("r", l1).Build();
  auto decomp = NsmDecomposition::Derive(l0, 0);
  ASSERT_TRUE(decomp.ok());

  // Build an object: 2 L1s, each 2 L2s, each 2 L3s.
  auto mk_l3 = [](int v) { return Tuple{{Value::Int32(v)}}; };
  auto mk_l2 = [&](int v) {
    return Tuple{{Value::Int32(v),
                  Value::Relation({mk_l3(v * 10), mk_l3(v * 10 + 1)})}};
  };
  auto mk_l1 = [&](int v) {
    return Tuple{{Value::Int32(v),
                  Value::Relation({mk_l2(v * 10), mk_l2(v * 10 + 1)})}};
  };
  Tuple object{{Value::Int32(99),
                Value::Relation({mk_l1(1), mk_l1(2)})}};

  auto parts = decomp->Shred(object);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ((*parts)[3].size(), 8u);  // 8 L3 rows
  auto back = decomp->Assemble(parts.value(), Projection::All(*l0));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), object);

  // Nested form at depth 3 groups by the immediate parent (L2) ordinal.
  auto nested = decomp->Nest(3, 99, (*parts)[3]);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->values[1].as_relation().size(), 4u);  // 4 L2 parents
  auto flats = decomp->Unnest(3, nested.value());
  ASSERT_TRUE(flats.ok());
  EXPECT_EQ(flats.value(), (*parts)[3]);
}

}  // namespace
}  // namespace starfish
