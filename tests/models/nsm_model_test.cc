// NSM-specific physical behaviour: value selections scan relations, the
// index variant fetches by address, batched navigation scans once per wave.

#include "models/nsm_model.h"

#include <gtest/gtest.h>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"

namespace starfish {
namespace {

using bench::BenchmarkDatabase;
using bench::GeneratorConfig;
using bench::StationPaths;

class NsmModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.n_objects = 80;
    config.seed = 13;
    auto db = BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<BenchmarkDatabase>(std::move(db).value());
  }

  std::unique_ptr<NsmModel> MakeModel(bool with_index) {
    engine_ = std::make_unique<StorageEngine>();
    ModelConfig mc;
    mc.schema = db_->schema();
    mc.key_attr_index = 0;
    NsmModelOptions options;
    options.with_index = with_index;
    auto model = NsmModel::Create(engine_.get(), mc, options);
    EXPECT_TRUE(model.ok());
    EXPECT_TRUE(db_->LoadInto(model.value().get(), engine_.get()).ok());
    return std::move(model).value();
  }

  uint64_t TotalRelationPages(NsmModel* model) {
    uint64_t total = 0;
    for (PathId p = 0; p < 4; ++p) total += model->segment(p)->pages().size();
    return total;
  }

  std::unique_ptr<BenchmarkDatabase> db_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(NsmModelTest, FourRelationSegments) {
  auto model = MakeModel(false);
  EXPECT_EQ(model->segment(0)->name(), "NSM_Station");
  EXPECT_EQ(model->segment(1)->name(), "NSM_Station.Platform");
  EXPECT_EQ(model->segment(2)->name(), "NSM_Station.Platform.Connection");
  EXPECT_EQ(model->segment(3)->name(), "NSM_Station.Sightseeing");
  for (PathId p = 0; p < 4; ++p) {
    EXPECT_GT(model->segment(p)->pages().size(), 0u) << "path " << p;
  }
}

TEST_F(NsmModelTest, PlainModeHasNoIdentifiers) {
  auto model = MakeModel(false);
  EXPECT_FALSE(model->SupportsGetByRef());
  EXPECT_TRUE(model->GetByRef(0, Projection::All(*db_->schema()))
                  .status().IsNotSupported());
}

TEST_F(NsmModelTest, PlainGetByKeyScansEveryProjectedRelation) {
  auto model = MakeModel(false);
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(model->GetByKey(db_->objects()[7].key,
                              Projection::All(*db_->schema())).ok());
  // The paper's worst case: all four relations are scanned in full.
  EXPECT_EQ(engine_->stats().io.pages_read, TotalRelationPages(model.get()));
}

TEST_F(NsmModelTest, IndexedGetByKeyScansOnlyRootRelation) {
  auto model = MakeModel(true);
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(model->GetByKey(db_->objects()[7].key,
                              Projection::All(*db_->schema())).ok());
  const uint64_t root_pages = model->segment(0)->pages().size();
  // Root scan + a handful of addressed fetches (paper: 121 vs 3,820 pages).
  EXPECT_GE(engine_->stats().io.pages_read, root_pages);
  EXPECT_LT(engine_->stats().io.pages_read, root_pages + 12);
}

TEST_F(NsmModelTest, IndexedGetByRefTouchesFewPages) {
  auto model = MakeModel(true);
  ASSERT_TRUE(model->SupportsGetByRef());
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  auto got = model->GetByRef(5, Projection::All(*db_->schema()));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), db_->objects()[5].tuple);
  // "a page is read from disk then and only then if a tuple it stores is
  // requested" — an object's tuples sit on a handful of pages.
  EXPECT_LE(engine_->stats().io.pages_read, 10u);
}

TEST_F(NsmModelTest, ProjectionSkipsUnselectedRelationScans) {
  auto model = MakeModel(false);
  auto proj = Projection::OfPaths(*db_->schema(),
                                  {StationPaths::kStation,
                                   StationPaths::kSightseeing});
  ASSERT_TRUE(proj.ok());
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(model->GetByKey(db_->objects()[3].key, proj.value()).ok());
  const uint64_t expected = model->segment(0)->pages().size() +
                            model->segment(3)->pages().size();
  EXPECT_EQ(engine_->stats().io.pages_read, expected);
}

TEST_F(NsmModelTest, BatchNavigationScansLinkRelationOncePerWave) {
  auto model = MakeModel(false);
  std::vector<ObjectRef> wave{1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(model->GetChildRefsBatch(wave).ok());
  // One scan of the Connection relation — not one per object.
  const uint64_t conn_pages = model->segment(2)->pages().size();
  EXPECT_EQ(engine_->stats().io.pages_read, conn_pages);
}

TEST_F(NsmModelTest, BatchRootRecordsScansRootRelationOnce) {
  auto model = MakeModel(false);
  std::vector<ObjectRef> wave{0, 9, 18, 27};
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  auto roots = model->GetRootRecordsBatch(wave);
  ASSERT_TRUE(roots.ok());
  EXPECT_EQ(engine_->stats().io.pages_read,
            model->segment(0)->pages().size());
  for (size_t i = 0; i < wave.size(); ++i) {
    EXPECT_EQ((*roots)[i].values[0].as_int32(),
              static_cast<int32_t>(db_->objects()[wave[i]].key));
  }
}

TEST_F(NsmModelTest, IndexedBatchFallsBackToPerObjectFetches) {
  auto model = MakeModel(true);
  std::vector<ObjectRef> wave{1, 2, 3};
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(model->GetChildRefsBatch(wave).ok());
  // Far below a relation scan.
  EXPECT_LT(engine_->stats().io.pages_read,
            model->segment(2)->pages().size());
}

TEST_F(NsmModelTest, UpdateRootRecordDirtiesOneSharedPage) {
  auto model = MakeModel(false);
  auto root = model->GetRootRecord(4);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(engine_->Flush().ok());
  engine_->ResetStats();
  Tuple updated = root.value();
  updated.values[2] = Value::Int32(555);
  ASSERT_TRUE(model->UpdateRootRecord(4, updated).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  // One small shared-page tuple rewritten in place: a single page write.
  EXPECT_EQ(engine_->stats().io.pages_written, 1u);
}

TEST_F(NsmModelTest, DuplicateKeyRejected) {
  auto model = MakeModel(false);
  Tuple copy = db_->objects()[0].tuple;
  EXPECT_TRUE(model->Insert(999, copy).IsAlreadyExists());
}

TEST_F(NsmModelTest, UnknownRefIsNotFound) {
  auto model = MakeModel(false);
  EXPECT_TRUE(model->GetChildRefs(12345).status().IsNotFound());
  EXPECT_TRUE(model->GetRootRecord(12345).status().IsNotFound());
}

class PersistentIndexTest : public NsmModelTest {
 protected:
  std::unique_ptr<NsmModel> MakePersistentModel() {
    engine_ = std::make_unique<StorageEngine>();
    ModelConfig mc;
    mc.schema = db_->schema();
    NsmModelOptions options;
    options.persistent_index = true;  // implies with_index
    auto model = NsmModel::Create(engine_.get(), mc, options);
    EXPECT_TRUE(model.ok());
    EXPECT_TRUE(db_->LoadInto(model.value().get(), engine_.get()).ok());
    return std::move(model).value();
  }
};

TEST_F(PersistentIndexTest, RoundTripsLikeInMemoryIndex) {
  auto model = MakePersistentModel();
  const Projection all = Projection::All(*db_->schema());
  for (size_t i = 0; i < db_->objects().size(); i += 9) {
    auto got = model->GetByRef(db_->objects()[i].ref, all);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), db_->objects()[i].tuple);
  }
}

TEST_F(PersistentIndexTest, ColdProbePaysTreePages) {
  auto metered = MakePersistentModel();
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(metered->GetChildRefs(7).ok());
  const uint64_t metered_pages = engine_->stats().io.pages_read;

  auto free_index = MakeModel(true);
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(free_index->GetChildRefs(7).ok());
  const uint64_t free_pages = engine_->stats().io.pages_read;
  // The honest index costs extra (tree height) pages when cold.
  EXPECT_GT(metered_pages, free_pages);
}

TEST_F(PersistentIndexTest, SurvivesReplaceAndRemove) {
  auto model = MakePersistentModel();
  const auto& object = db_->objects()[12];
  Tuple modified = object.tuple;
  modified.values[bench::StationAttrs::kSightseeings] = Value::Relation({});
  modified.values[bench::StationAttrs::kNoSeeing] = Value::Int32(0);
  ASSERT_TRUE(model->ReplaceObject(object.ref, modified).ok());
  auto got = model->GetByRef(object.ref, Projection::All(*db_->schema()));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), modified);
  ASSERT_TRUE(model->Remove(object.ref).ok());
  EXPECT_FALSE(model->GetByRef(object.ref,
                               Projection::All(*db_->schema())).ok());
  EXPECT_EQ(model->object_count(), db_->objects().size() - 1);
}

}  // namespace
}  // namespace starfish
