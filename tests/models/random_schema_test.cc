// Property test: the storage models and the decomposition machinery are
// schema-generic. Random NF² schemas (random nesting, links anywhere) and
// random objects must round-trip through every storage model.
//
// Reproduce: STARFISH_SEED=<printed seed> overrides every case's seed, so
// any one gtest filter match replays the failing schema exactly.

#include <gtest/gtest.h>

#include "../support/env_seed.h"
#include "models/model_factory.h"
#include "util/random.h"

namespace starfish {
namespace {

/// Builds a random NF² schema: attribute 0 is the Int32 key; up to
/// `max_depth` levels of nesting; links sprinkled anywhere.
std::shared_ptr<const Schema> RandomSchema(Rng* rng, int depth,
                                           int max_depth,
                                           const std::string& name) {
  SchemaBuilder builder(name);
  if (depth == 0) builder.AddInt32("Key");
  const uint64_t n_attrs = 1 + rng->Uniform(4);
  for (uint64_t a = 0; a < n_attrs; ++a) {
    const std::string attr_name = "a" + std::to_string(depth) + "_" +
                                  std::to_string(a);
    switch (rng->Uniform(depth < max_depth ? 4 : 3)) {
      case 0:
        builder.AddInt32(attr_name);
        break;
      case 1:
        builder.AddString(attr_name);
        break;
      case 2:
        builder.AddLink(attr_name);
        break;
      default:
        builder.AddRelation(
            attr_name, RandomSchema(rng, depth + 1, max_depth,
                                    name + "_" + attr_name));
        break;
    }
  }
  return builder.Build();
}

/// Builds a random tuple conforming to `schema`.
Tuple RandomTuple(Rng* rng, const Schema& schema, int32_t key,
                  uint64_t n_objects, bool is_root) {
  Tuple tuple;
  bool first = true;
  for (const Attribute& attr : schema.attributes()) {
    if (first && is_root) {
      tuple.values.push_back(Value::Int32(key));
      first = false;
      continue;
    }
    first = false;
    switch (attr.type) {
      case AttrType::kInt32:
        tuple.values.push_back(
            Value::Int32(static_cast<int32_t>(rng->UniformInt(-1000, 1000))));
        break;
      case AttrType::kString:
        tuple.values.push_back(Value::Str(rng->RandomString(rng->Uniform(150))));
        break;
      case AttrType::kLink:
        tuple.values.push_back(Value::Link(rng->Uniform(n_objects)));
        break;
      case AttrType::kRelation: {
        std::vector<Tuple> subs;
        const uint64_t n = rng->Uniform(4);
        for (uint64_t s = 0; s < n; ++s) {
          subs.push_back(RandomTuple(rng, *attr.relation, 0, n_objects,
                                     /*is_root=*/false));
        }
        tuple.values.push_back(Value::Relation(std::move(subs)));
        break;
      }
    }
  }
  return tuple;
}

/// Ground-truth link collection (document order).
void Links(const Schema& schema, const Tuple& tuple,
           std::vector<ObjectRef>* out) {
  for (size_t i = 0; i < schema.attributes().size(); ++i) {
    const Attribute& attr = schema.attributes()[i];
    if (attr.type == AttrType::kLink) {
      out->push_back(tuple.values[i].as_link());
    } else if (attr.type == AttrType::kRelation) {
      for (const Tuple& sub : tuple.values[i].as_relation()) {
        Links(*attr.relation, sub, out);
      }
    }
  }
}

struct RandomSchemaCase {
  uint64_t seed;
  int max_depth;
};

class RandomSchemaTest : public ::testing::TestWithParam<RandomSchemaCase> {};

TEST_P(RandomSchemaTest, AllModelsRoundTripRandomSchemas) {
  const uint64_t seed = test::TestSeed(GetParam().seed);
  SCOPED_TRACE("STARFISH_SEED=" + std::to_string(seed));
  Rng rng(seed);
  auto schema = RandomSchema(&rng, 0, GetParam().max_depth, "T");
  constexpr uint64_t kObjects = 12;
  std::vector<Tuple> objects;
  for (uint64_t i = 0; i < kObjects; ++i) {
    objects.push_back(RandomTuple(&rng, *schema, static_cast<int32_t>(i) + 1,
                                  kObjects, /*is_root=*/true));
  }

  for (StorageModelKind kind : AllStorageModelKinds()) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " model " + ToString(kind));
    StorageEngine engine;
    ModelConfig mc;
    mc.schema = schema;
    mc.key_attr_index = 0;
    auto model = CreateStorageModel(kind, &engine, mc);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    for (uint64_t i = 0; i < kObjects; ++i) {
      ASSERT_TRUE((*model)->Insert(i, objects[i]).ok());
    }

    const Projection all = Projection::All(*schema);
    for (uint64_t i = 0; i < kObjects; ++i) {
      auto got = (*model)->GetByKey(static_cast<int64_t>(i) + 1, all);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value(), objects[i]) << "object " << i;

      auto children = (*model)->GetChildRefs(i);
      ASSERT_TRUE(children.ok());
      std::vector<ObjectRef> expected;
      Links(*schema, objects[i], &expected);
      EXPECT_EQ(children.value(), expected) << "object " << i;
    }

    // Structural replace of a third of the objects with fresh random data.
    for (uint64_t i = 0; i < kObjects; i += 3) {
      Tuple replacement = RandomTuple(&rng, *schema, static_cast<int32_t>(i) + 1,
                                      kObjects, /*is_root=*/true);
      ASSERT_TRUE((*model)->ReplaceObject(i, replacement).ok());
      auto got = (*model)->GetByKey(static_cast<int64_t>(i) + 1, all);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), replacement);
      objects[i] = std::move(replacement);
    }

    // Remove a couple and verify the scan shrinks accordingly.
    ASSERT_TRUE((*model)->Remove(1).ok());
    ASSERT_TRUE((*model)->Remove(5).ok());
    size_t count = 0;
    ASSERT_TRUE((*model)->ScanAll(all, [&](int64_t key, const Tuple& t) {
      EXPECT_EQ(t, objects[static_cast<size_t>(key - 1)]);
      ++count;
      return Status::OK();
    }).ok());
    EXPECT_EQ(count, kObjects - 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomSchemaTest,
    ::testing::Values(RandomSchemaCase{101, 1}, RandomSchemaCase{102, 2},
                      RandomSchemaCase{103, 2}, RandomSchemaCase{104, 3},
                      RandomSchemaCase{105, 3}, RandomSchemaCase{106, 3},
                      RandomSchemaCase{107, 2}, RandomSchemaCase{108, 1}),
    [](const ::testing::TestParamInfo<RandomSchemaCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_depth" +
             std::to_string(info.param.max_depth);
    });

}  // namespace
}  // namespace starfish
