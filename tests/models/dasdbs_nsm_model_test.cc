// DASDBS-NSM-specific behaviour: one nested tuple per relation per object,
// transformation-table addressing, cheap root updates.

#include "models/dasdbs_nsm_model.h"

#include <gtest/gtest.h>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"

namespace starfish {
namespace {

using bench::BenchmarkDatabase;
using bench::GeneratorConfig;
using bench::StationPaths;

class DasdbsNsmModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.n_objects = 80;
    config.seed = 17;
    auto db = BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<BenchmarkDatabase>(std::move(db).value());

    engine_ = std::make_unique<StorageEngine>();
    ModelConfig mc;
    mc.schema = db_->schema();
    mc.key_attr_index = 0;
    auto model = DasdbsNsmModel::Create(engine_.get(), mc);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).value();
    ASSERT_TRUE(db_->LoadInto(model_.get(), engine_.get()).ok());
  }

  std::unique_ptr<BenchmarkDatabase> db_;
  std::unique_ptr<StorageEngine> engine_;
  std::unique_ptr<DasdbsNsmModel> model_;
};

TEST_F(DasdbsNsmModelTest, TransformationTableHasOneEntryPerObjectPerRelation) {
  for (const auto& object : db_->objects()) {
    auto tids = model_->AddressesOf(object.key);
    ASSERT_TRUE(tids.ok()) << "key " << object.key;
    ASSERT_EQ(tids->size(), 4u);  // "fixed and limited number of addresses"
    for (const Tid& tid : tids.value()) EXPECT_TRUE(tid.valid());
  }
}

TEST_F(DasdbsNsmModelTest, GetByRefFetchesOnePagePerSmallRelationTuple) {
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  auto got = model_->GetByRef(3, Projection::All(*db_->schema()));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), db_->objects()[3].tuple);
  // Station, Platform, Connection tuples: 1 page each; the nested
  // Sightseeing tuple may span header + data pages. Paper: ~5-9 pages.
  EXPECT_GE(engine_->stats().io.pages_read, 3u);
  EXPECT_LE(engine_->stats().io.pages_read, 10u);
}

TEST_F(DasdbsNsmModelTest, NavigationProjectionSkipsSightseeingRelation) {
  auto proj = Projection::OfPaths(*db_->schema(),
                                  {StationPaths::kStation,
                                   StationPaths::kPlatform,
                                   StationPaths::kConnection});
  ASSERT_TRUE(proj.ok());
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(model_->GetByRef(3, proj.value()).ok());
  const uint64_t nav_pages = engine_->stats().io.pages_read;
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(model_->GetByRef(3, Projection::All(*db_->schema())).ok());
  const uint64_t all_pages = engine_->stats().io.pages_read;
  EXPECT_LT(nav_pages, all_pages);
  EXPECT_LE(nav_pages, 3u);  // one page per needed relation
}

TEST_F(DasdbsNsmModelTest, GetChildRefsReadsOnlyLinkRelation) {
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  auto children = model_->GetChildRefs(9);
  ASSERT_TRUE(children.ok());
  // One small nested Connection tuple: a single page.
  EXPECT_LE(engine_->stats().io.pages_read, 2u);
}

TEST_F(DasdbsNsmModelTest, GetByKeyScansRootThenFetchesByAddress) {
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(model_->GetByKey(db_->objects()[11].key,
                               Projection::All(*db_->schema())).ok());
  const uint64_t root_pages = model_->segment(0)->pages().size();
  EXPECT_GE(engine_->stats().io.pages_read, root_pages);
  EXPECT_LE(engine_->stats().io.pages_read, root_pages + 10);
}

TEST_F(DasdbsNsmModelTest, UpdateRootRecordTouchesOneSmallTuple) {
  auto root = model_->GetRootRecord(21);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(engine_->Flush().ok());
  engine_->ResetStats();
  Tuple updated = root.value();
  updated.values[1] = Value::Int32(updated.values[1].as_int32() + 1);
  ASSERT_TRUE(model_->UpdateRootRecord(21, updated).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  EXPECT_EQ(engine_->stats().io.pages_written, 1u);
}

TEST_F(DasdbsNsmModelTest, SightseeingRelationTuplesSpanPages) {
  // Objects with many sightseeings make DASDBS-NSM_Sightseeing tuples span
  // pages (Table 2 of the paper).
  bool found_large = false;
  for (const auto& object : db_->objects()) {
    auto info = model_->RecordInfo(StationPaths::kSightseeing, object.key);
    ASSERT_TRUE(info.ok());
    if (!info->is_small) {
      found_large = true;
      EXPECT_GE(info->header_pages, 1u);
      EXPECT_GE(info->data_pages, 1u);
    }
  }
  EXPECT_TRUE(found_large);
}

TEST_F(DasdbsNsmModelTest, ConnectionRelationTuplesStaySmall) {
  // The nested Connection tuple of an average object is well under a page —
  // the reason DASDBS-NSM navigation costs ~1 page per object.
  size_t small = 0;
  for (const auto& object : db_->objects()) {
    auto info = model_->RecordInfo(StationPaths::kConnection, object.key);
    ASSERT_TRUE(info.ok());
    small += info->is_small ? 1 : 0;
  }
  EXPECT_EQ(small, db_->objects().size());
}

TEST_F(DasdbsNsmModelTest, DuplicateInsertsRejected) {
  EXPECT_TRUE(model_->Insert(0, db_->objects()[0].tuple).IsAlreadyExists());
  EXPECT_TRUE(model_->Insert(999, db_->objects()[0].tuple).IsAlreadyExists());
}

TEST_F(DasdbsNsmModelTest, UnknownRefAndKeyAreNotFound) {
  EXPECT_TRUE(model_->GetByRef(5555, Projection::All(*db_->schema()))
                  .status().IsNotFound());
  EXPECT_TRUE(model_->GetByKey(-1, Projection::All(*db_->schema()))
                  .status().IsNotFound());
  EXPECT_TRUE(model_->GetChildRefs(5555).status().IsNotFound());
}

}  // namespace
}  // namespace starfish
