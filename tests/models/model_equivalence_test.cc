// Cross-model equivalence: all four storage models must return identical
// logical results for every benchmark query — they differ only in physical
// I/O. This is the strongest integration check in the suite.

#include <gtest/gtest.h>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"
#include "models/model_factory.h"
#include "nf2/projection.h"

namespace starfish {
namespace {

using bench::BenchmarkDatabase;
using bench::BenchmarkObject;
using bench::GeneratorConfig;

class ModelEquivalenceTest : public ::testing::TestWithParam<StorageModelKind> {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.n_objects = 60;
    config.seed = 7;
    auto db = BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::make_unique<BenchmarkDatabase>(std::move(db).value());

    engine_ = std::make_unique<StorageEngine>();
    ModelConfig mc;
    mc.schema = db_->schema();
    mc.key_attr_index = 0;
    auto model = CreateStorageModel(GetParam(), engine_.get(), mc);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = std::move(model).value();
    ASSERT_TRUE(db_->LoadInto(model_.get(), engine_.get()).ok());
  }

  std::unique_ptr<BenchmarkDatabase> db_;
  std::unique_ptr<StorageEngine> engine_;
  std::unique_ptr<StorageModel> model_;
};

TEST_P(ModelEquivalenceTest, GetByRefRoundTrips) {
  if (!model_->SupportsGetByRef()) GTEST_SKIP();
  const Projection all = Projection::All(*db_->schema());
  for (const BenchmarkObject& object : db_->objects()) {
    auto got = model_->GetByRef(object.ref, all);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), object.tuple)
        << "object " << object.ref << " mismatch under " << model_->name();
  }
}

TEST_P(ModelEquivalenceTest, GetByKeyRoundTrips) {
  const Projection all = Projection::All(*db_->schema());
  for (size_t i = 0; i < db_->objects().size(); i += 7) {
    const BenchmarkObject& object = db_->objects()[i];
    auto got = model_->GetByKey(object.key, all);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), object.tuple);
  }
}

TEST_P(ModelEquivalenceTest, ScanAllReturnsEveryObjectExactlyOnce) {
  const Projection all = Projection::All(*db_->schema());
  std::map<int64_t, Tuple> seen;
  ASSERT_TRUE(model_->ScanAll(all, [&](int64_t key, const Tuple& tuple) {
    EXPECT_EQ(seen.count(key), 0u) << "duplicate key " << key;
    seen[key] = tuple;
    return Status::OK();
  }).ok());
  ASSERT_EQ(seen.size(), db_->objects().size());
  for (const BenchmarkObject& object : db_->objects()) {
    EXPECT_EQ(seen.at(object.key), object.tuple);
  }
}

TEST_P(ModelEquivalenceTest, ProjectedGetDropsUnselectedPaths) {
  if (!model_->SupportsGetByRef()) GTEST_SKIP();
  auto proj = Projection::OfPaths(
      *db_->schema(), {bench::StationPaths::kStation,
                       bench::StationPaths::kPlatform,
                       bench::StationPaths::kConnection});
  ASSERT_TRUE(proj.ok());
  for (size_t i = 0; i < db_->objects().size(); i += 11) {
    const BenchmarkObject& object = db_->objects()[i];
    auto got = model_->GetByRef(object.ref, proj.value());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Tuple expected = object.tuple;
    expected.values[bench::StationAttrs::kSightseeings] = Value::Relation({});
    EXPECT_EQ(got.value(), expected);
  }
}

TEST_P(ModelEquivalenceTest, ChildRefsMatchTheGeneratedLinks) {
  for (size_t i = 0; i < db_->objects().size(); i += 5) {
    const BenchmarkObject& object = db_->objects()[i];
    auto children = model_->GetChildRefs(object.ref);
    ASSERT_TRUE(children.ok()) << children.status().ToString();
    // Ground truth from the in-memory tuple.
    std::vector<ObjectRef> expected;
    for (const Tuple& platform :
         object.tuple.values[bench::StationAttrs::kPlatforms].as_relation()) {
      for (const Tuple& conn : platform.values[4].as_relation()) {
        expected.push_back(conn.values[2].as_link());
      }
    }
    EXPECT_EQ(children.value(), expected);
  }
}

TEST_P(ModelEquivalenceTest, BatchNavigationAgreesWithSingleCalls) {
  std::vector<ObjectRef> refs{0, 3, 9, 12, 0};
  auto batch = model_->GetChildRefsBatch(refs);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), refs.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    auto single = model_->GetChildRefs(refs[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch.value()[i], single.value());
  }
  auto roots = model_->GetRootRecordsBatch(refs);
  ASSERT_TRUE(roots.ok()) << roots.status().ToString();
  for (size_t i = 0; i < refs.size(); ++i) {
    auto single = model_->GetRootRecord(refs[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(roots.value()[i], single.value());
  }
}

TEST_P(ModelEquivalenceTest, RootRecordHasAtomicsAndEmptyRelations) {
  for (size_t i = 0; i < db_->objects().size(); i += 13) {
    const BenchmarkObject& object = db_->objects()[i];
    auto root = model_->GetRootRecord(object.ref);
    ASSERT_TRUE(root.ok()) << root.status().ToString();
    EXPECT_EQ(root->values[0], object.tuple.values[0]);
    EXPECT_EQ(root->values[3], object.tuple.values[3]);
    EXPECT_TRUE(root->values[bench::StationAttrs::kPlatforms]
                    .as_relation().empty());
  }
}

TEST_P(ModelEquivalenceTest, UpdateRootRecordPersists) {
  const ObjectRef ref = 17;
  auto before = model_->GetRootRecord(ref);
  ASSERT_TRUE(before.ok());
  Tuple updated = before.value();
  updated.values[1] = Value::Int32(updated.values[1].as_int32() + 41);
  ASSERT_TRUE(model_->UpdateRootRecord(ref, updated).ok());
  auto after = model_->GetRootRecord(ref);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->values[1], updated.values[1]);
  // Sub-objects are untouched.
  const Projection all = Projection::All(*db_->schema());
  auto full = model_->GetByKey(db_->objects()[ref].key, all);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->values[bench::StationAttrs::kPlatforms],
            db_->objects()[ref].tuple.values[bench::StationAttrs::kPlatforms]);
}

TEST_P(ModelEquivalenceTest, RemoveMakesObjectUnreachable) {
  const BenchmarkObject& victim = db_->objects()[23];
  ASSERT_TRUE(model_->Remove(victim.ref).ok());
  EXPECT_EQ(model_->object_count(), db_->objects().size() - 1);
  EXPECT_TRUE(model_->GetByKey(victim.key, Projection::All(*db_->schema()))
                  .status().IsNotFound());
  if (model_->SupportsGetByRef()) {
    EXPECT_FALSE(model_->GetByRef(victim.ref,
                                  Projection::All(*db_->schema())).ok());
  }
  EXPECT_FALSE(model_->GetChildRefs(victim.ref).ok());
  // A scan no longer sees it, and everything else is intact.
  size_t count = 0;
  ASSERT_TRUE(model_->ScanAll(Projection::All(*db_->schema()),
                              [&](int64_t key, const Tuple&) {
                                EXPECT_NE(key, victim.key);
                                ++count;
                                return Status::OK();
                              }).ok());
  EXPECT_EQ(count, db_->objects().size() - 1);
  // Removing twice fails.
  EXPECT_TRUE(model_->Remove(victim.ref).IsNotFound());
}

TEST_P(ModelEquivalenceTest, RemoveUnknownRefFails) {
  EXPECT_TRUE(model_->Remove(987654).IsNotFound());
}

TEST_P(ModelEquivalenceTest, ReplaceObjectChangesStructure) {
  const BenchmarkObject& original = db_->objects()[8];
  Tuple modified = original.tuple;
  // Structural change: drop all sightseeings, add a platform with one
  // connection, and rewrite the name.
  modified.values[bench::StationAttrs::kSightseeings] = Value::Relation({});
  auto& platforms =
      modified.values[bench::StationAttrs::kPlatforms].as_relation();
  platforms.push_back(Tuple{{Value::Int32(99), Value::Int32(1),
                             Value::Int32(7), Value::Str("new platform"),
                             Value::Relation({Tuple{{Value::Int32(0),
                                                     Value::Int32(3),
                                                     Value::Link(2),
                                                     Value::Str("at noon")}}})}});
  modified.values[bench::StationAttrs::kNoPlatform] =
      Value::Int32(static_cast<int32_t>(platforms.size()));
  ASSERT_TRUE(model_->ReplaceObject(original.ref, modified).ok());

  auto back = model_->GetByKey(original.key, Projection::All(*db_->schema()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), modified);
  // Navigation sees the new link set.
  auto children = model_->GetChildRefs(original.ref);
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children->back(), 2u);
  // Neighbours untouched.
  auto other = model_->GetByKey(db_->objects()[9].key,
                                Projection::All(*db_->schema()));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value(), db_->objects()[9].tuple);
}

TEST_P(ModelEquivalenceTest, ReplaceObjectGrowingMuchLarger) {
  const BenchmarkObject& original = db_->objects()[31];
  Tuple modified = original.tuple;
  auto& sights =
      modified.values[bench::StationAttrs::kSightseeings].as_relation();
  for (int s = 0; s < 25; ++s) {
    sights.push_back(Tuple{{Value::Int32(100 + s), Value::Str(std::string(100, 'd')),
                            Value::Str(std::string(100, 'l')),
                            Value::Str(std::string(100, 'h')),
                            Value::Str(std::string(100, 'r'))}});
  }
  modified.values[bench::StationAttrs::kNoSeeing] =
      Value::Int32(static_cast<int32_t>(sights.size()));
  ASSERT_TRUE(model_->ReplaceObject(original.ref, modified).ok());
  auto back = model_->GetByKey(original.key, Projection::All(*db_->schema()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), modified);
}

TEST_P(ModelEquivalenceTest, ReplaceObjectRejectsKeyChange) {
  Tuple modified = db_->objects()[4].tuple;
  modified.values[0] = Value::Int32(424242);
  EXPECT_TRUE(model_->ReplaceObject(4, modified).IsInvalidArgument());
}

TEST_P(ModelEquivalenceTest, RemoveThenReinsertRef) {
  const BenchmarkObject& victim = db_->objects()[40];
  ASSERT_TRUE(model_->Remove(victim.ref).ok());
  ASSERT_TRUE(model_->Insert(victim.ref, victim.tuple).ok());
  auto back = model_->GetByKey(victim.key, Projection::All(*db_->schema()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), victim.tuple);
  EXPECT_EQ(model_->object_count(), db_->objects().size());
}

TEST_P(ModelEquivalenceTest, KeysAreImmutable) {
  auto root = model_->GetRootRecord(5);
  ASSERT_TRUE(root.ok());
  Tuple updated = root.value();
  updated.values[0] = Value::Int32(999999);
  EXPECT_FALSE(model_->UpdateRootRecord(5, updated).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelEquivalenceTest,
    ::testing::ValuesIn(AllStorageModelKinds()),
    [](const ::testing::TestParamInfo<StorageModelKind>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace starfish
