// Physical I/O behaviour specific to the direct models: DSM reads whole
// objects, DASDBS-DSM reads only projected pages and pays the page pool on
// updates. (Logical correctness is covered by model_equivalence_test.)

#include "models/direct_model.h"

#include <gtest/gtest.h>

#include <map>

#include "benchmark/generator.h"
#include "benchmark/station_schema.h"

namespace starfish {
namespace {

using bench::BenchmarkDatabase;
using bench::GeneratorConfig;
using bench::StationPaths;

class DirectModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.n_objects = 40;
    config.seed = 3;
    auto db = BenchmarkDatabase::Generate(config);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<BenchmarkDatabase>(std::move(db).value());
  }

  std::unique_ptr<DirectModel> MakeModel(bool dasdbs) {
    engine_ = std::make_unique<StorageEngine>();
    ModelConfig mc;
    mc.schema = db_->schema();
    mc.key_attr_index = 0;
    DirectModelOptions options;
    options.partial_reads = dasdbs;
    options.change_attr_updates = dasdbs;
    auto model = DirectModel::Create(engine_.get(), mc, options);
    EXPECT_TRUE(model.ok());
    EXPECT_TRUE(db_->LoadInto(model.value().get(), engine_.get()).ok());
    return std::move(model).value();
  }

  /// Ref of an object that is stored page-spanning (large).
  ObjectRef LargeObjectRef(DirectModel* model) {
    for (const auto& object : db_->objects()) {
      auto info = model->RecordInfo(object.ref);
      if (info.ok() && !info->is_small) return object.ref;
    }
    ADD_FAILURE() << "no large object in database";
    return 0;
  }

  std::unique_ptr<BenchmarkDatabase> db_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(DirectModelTest, KindsAndSegmentNames) {
  auto dsm = MakeModel(false);
  EXPECT_EQ(dsm->kind(), StorageModelKind::kDsm);
  EXPECT_EQ(dsm->segment()->name(), "DSM_Station");
  auto ddsm = MakeModel(true);
  EXPECT_EQ(ddsm->kind(), StorageModelKind::kDasdbsDsm);
  EXPECT_EQ(ddsm->segment()->name(), "DASDBS-DSM_Station");
}

TEST_F(DirectModelTest, DsmReadsAllPagesEvenForProjection) {
  auto model = MakeModel(false);
  const ObjectRef ref = LargeObjectRef(model.get());
  auto info = model->RecordInfo(ref);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  auto root = model->GetRootRecord(ref);
  ASSERT_TRUE(root.ok());
  // DSM cannot read part of an object: all private pages are fetched.
  EXPECT_EQ(engine_->stats().io.pages_read, info->private_pages());
}

TEST_F(DirectModelTest, DasdbsDsmReadsOnlyHeaderAndNeededData) {
  auto model = MakeModel(true);
  const ObjectRef ref = LargeObjectRef(model.get());
  auto info = model->RecordInfo(ref);
  ASSERT_TRUE(info.ok());
  ASSERT_GT(info->data_pages, 1u);  // otherwise nothing to save
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  auto root = model->GetRootRecord(ref);
  ASSERT_TRUE(root.ok());
  // Header page(s) + the single data page holding the root region.
  EXPECT_EQ(engine_->stats().io.pages_read, info->header_pages + 1);
  EXPECT_LT(engine_->stats().io.pages_read, info->private_pages());
}

TEST_F(DirectModelTest, NavigationProjectionSkipsSightseeingPages) {
  auto dsm = MakeModel(false);
  const ObjectRef ref = LargeObjectRef(dsm.get());
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(dsm->GetChildRefs(ref).ok());
  const uint64_t dsm_pages = engine_->stats().io.pages_read;

  auto ddsm = MakeModel(true);
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(ddsm->GetChildRefs(ref).ok());
  const uint64_t ddsm_pages = engine_->stats().io.pages_read;
  EXPECT_LT(ddsm_pages, dsm_pages);
}

TEST_F(DirectModelTest, DsmUpdateDirtiesWholeObject) {
  auto model = MakeModel(false);
  const ObjectRef ref = LargeObjectRef(model.get());
  auto info = model->RecordInfo(ref);
  ASSERT_TRUE(info.ok());
  auto root = model->GetRootRecord(ref);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(engine_->Flush().ok());
  engine_->ResetStats();
  Tuple updated = root.value();
  updated.values[1] = Value::Int32(123);
  ASSERT_TRUE(model->UpdateRootRecord(ref, updated).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  // Whole-tuple replace: every private page of the object is rewritten.
  EXPECT_GE(engine_->stats().io.pages_written, info->private_pages());
}

TEST_F(DirectModelTest, DasdbsDsmUpdateWritesPagePoolPerOperation) {
  auto model = MakeModel(true);
  const ObjectRef ref = LargeObjectRef(model.get());
  auto root = model->GetRootRecord(ref);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(engine_->Flush().ok());
  engine_->ResetStats();
  Tuple updated = root.value();
  for (int i = 0; i < 4; ++i) {
    updated.values[1] = Value::Int32(1000 + i);
    ASSERT_TRUE(model->UpdateRootRecord(ref, updated).ok());
  }
  // Four change-attribute ops -> at least four immediate pool-page writes
  // (§5.3: "each update operation allocates a page pool, of which all pages
  // are written").
  EXPECT_GE(engine_->stats().io.write_calls, 4u);
  EXPECT_GE(engine_->stats().io.pages_written, 4u);
}

TEST_F(DirectModelTest, DasdbsDsmUpdateDirtiesOnlyRootDataPage) {
  auto model = MakeModel(true);
  const ObjectRef ref = LargeObjectRef(model.get());
  auto info = model->RecordInfo(ref);
  ASSERT_TRUE(info.ok());
  auto root = model->GetRootRecord(ref);
  ASSERT_TRUE(root.ok());
  // Warm-up update so the lazy page-pool allocation is not measured.
  Tuple updated = root.value();
  updated.values[1] = Value::Int32(6);
  ASSERT_TRUE(model->UpdateRootRecord(ref, updated).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  engine_->ResetStats();
  updated.values[1] = Value::Int32(7);
  ASSERT_TRUE(model->UpdateRootRecord(ref, updated).ok());
  ASSERT_TRUE(engine_->Flush().ok());
  // Pool page + the single dirty data page — far less than the whole record.
  EXPECT_LE(engine_->stats().io.pages_written, 2u);
}

TEST_F(DirectModelTest, AddressOfUnknownRefFails) {
  auto model = MakeModel(false);
  EXPECT_TRUE(model->AddressOf(9999).status().IsNotFound());
  EXPECT_TRUE(model->GetByRef(9999, Projection::All(*db_->schema()))
                  .status().IsNotFound());
}

TEST_F(DirectModelTest, DuplicateInsertRejected) {
  auto model = MakeModel(false);
  EXPECT_TRUE(model->Insert(0, db_->objects()[0].tuple)
                  .IsAlreadyExists());
}

TEST_F(DirectModelTest, GetByKeyScansWholeRelation) {
  auto model = MakeModel(false);
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(model->GetByKey(db_->objects()[5].key,
                              Projection::All(*db_->schema())).ok());
  // Value selection reads the entire relation (no early exit).
  EXPECT_EQ(engine_->stats().io.pages_read, model->segment()->pages().size());
}

TEST_F(DirectModelTest, GetByKeyMissingKeyIsNotFound) {
  auto model = MakeModel(false);
  EXPECT_TRUE(model->GetByKey(123456, Projection::All(*db_->schema()))
                  .status().IsNotFound());
}

TEST_F(DirectModelTest, ObjectCount) {
  auto model = MakeModel(false);
  EXPECT_EQ(model->object_count(), db_->objects().size());
}

class ScanPushdownTest : public DirectModelTest {
 protected:
  std::unique_ptr<DirectModel> MakePushdownModel() {
    engine_ = std::make_unique<StorageEngine>();
    ModelConfig mc;
    mc.schema = db_->schema();
    DirectModelOptions options;
    options.partial_reads = true;
    options.change_attr_updates = true;
    options.scan_pushdown = true;
    auto model = DirectModel::Create(engine_.get(), mc, options);
    EXPECT_TRUE(model.ok());
    EXPECT_TRUE(db_->LoadInto(model.value().get(), engine_.get()).ok());
    return std::move(model).value();
  }
};

TEST_F(ScanPushdownTest, GetByKeyReadsFewerPagesSameResult) {
  auto plain = MakeModel(true);
  const Projection all = Projection::All(*db_->schema());
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  auto expected = plain->GetByKey(db_->objects()[9].key, all);
  ASSERT_TRUE(expected.ok());
  const uint64_t plain_pages = engine_->stats().io.pages_read;

  auto pushdown = MakePushdownModel();
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  auto got = pushdown->GetByKey(db_->objects()[9].key, all);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), expected.value());
  EXPECT_LT(engine_->stats().io.pages_read, plain_pages);
}

TEST_F(ScanPushdownTest, GetByKeyMissingKeyStillNotFound) {
  auto pushdown = MakePushdownModel();
  EXPECT_TRUE(pushdown->GetByKey(999999, Projection::All(*db_->schema()))
                  .status().IsNotFound());
}

TEST_F(ScanPushdownTest, ProjectedScanSkipsSightseeingPagesAndAgrees) {
  auto proj = Projection::OfPaths(*db_->schema(),
                                  {bench::StationPaths::kStation,
                                   bench::StationPaths::kPlatform,
                                   bench::StationPaths::kConnection});
  ASSERT_TRUE(proj.ok());

  auto plain = MakeModel(true);
  std::map<int64_t, Tuple> expected;
  ASSERT_TRUE(plain->ScanAll(proj.value(), [&](int64_t key, const Tuple& t) {
    expected[key] = t;
    return Status::OK();
  }).ok());
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  ASSERT_TRUE(plain->ScanAll(proj.value(), [&](int64_t, const Tuple&) {
    return Status::OK();
  }).ok());
  const uint64_t plain_pages = engine_->stats().io.pages_read;

  auto pushdown = MakePushdownModel();
  ASSERT_TRUE(engine_->DropCache().ok());
  engine_->ResetStats();
  std::map<int64_t, Tuple> got;
  ASSERT_TRUE(pushdown->ScanAll(proj.value(), [&](int64_t key, const Tuple& t) {
    got[key] = t;
    return Status::OK();
  }).ok());
  EXPECT_LT(engine_->stats().io.pages_read, plain_pages);
  EXPECT_EQ(got, expected);
}

TEST_F(ScanPushdownTest, FullProjectionScanUnchanged) {
  auto pushdown = MakePushdownModel();
  const Projection all = Projection::All(*db_->schema());
  size_t count = 0;
  ASSERT_TRUE(pushdown->ScanAll(all, [&](int64_t, const Tuple& t) {
    EXPECT_FALSE(t.values.empty());
    ++count;
    return Status::OK();
  }).ok());
  EXPECT_EQ(count, db_->objects().size());
}

TEST_F(ScanPushdownTest, SurvivesStructuralUpdates) {
  auto pushdown = MakePushdownModel();
  // Replace an object so its aux run is reallocated, then pushdown-scan:
  // the page-type catalog must have followed the move.
  Tuple modified = db_->objects()[6].tuple;
  auto& sights =
      modified.values[bench::StationAttrs::kSightseeings].as_relation();
  for (int s = 0; s < 20; ++s) {
    sights.push_back(Tuple{{Value::Int32(500 + s), Value::Str(std::string(100, 'a')),
                            Value::Str(std::string(100, 'b')),
                            Value::Str(std::string(100, 'c')),
                            Value::Str(std::string(100, 'd'))}});
  }
  modified.values[bench::StationAttrs::kNoSeeing] =
      Value::Int32(static_cast<int32_t>(sights.size()));
  ASSERT_TRUE(pushdown->ReplaceObject(6, modified).ok());
  auto got = pushdown->GetByKey(db_->objects()[6].key,
                                Projection::All(*db_->schema()));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), modified);
  size_t count = 0;
  ASSERT_TRUE(pushdown->ScanAll(Projection::RootOnly(*db_->schema()),
                                [&](int64_t, const Tuple&) {
                                  ++count;
                                  return Status::OK();
                                }).ok());
  EXPECT_EQ(count, db_->objects().size());
}

}  // namespace
}  // namespace starfish
